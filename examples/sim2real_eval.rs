//! Sim-to-real robustness sweep (the protocol behind the paper's
//! Table II): train a HERO team in the clean simulator, then evaluate the
//! frozen greedy policy under increasingly severe domain gaps and watch
//! the metrics degrade.
//!
//! Run with: `cargo run --release --example sim2real_eval -- [train_eps]`

use std::sync::Arc;

use hero::prelude::*;
use hero_baselines::sac::SacConfig;
use hero_sim::scenario;

fn main() {
    let train_eps: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().unwrap())
        .unwrap_or(150);
    let env_cfg = EnvConfig::default();

    println!("training HERO in the clean simulator for {train_eps} episodes...");
    let skills = Arc::new(SkillLibrary::untrained(env_cfg, SacConfig::default(), 5));
    let cfg = HeroConfig {
        batch_size: 64,
        warmup: 64,
        ..HeroConfig::default()
    };
    let mut sim = scenario::congestion(env_cfg, 5);
    let mut team = HeroTeam::new(3, env_cfg.high_dim(), skills, cfg, 5);
    let _ = train_team(
        &mut team,
        &mut sim,
        &TrainOptions {
            episodes: train_eps,
            update_every: 4,
            seed: 5,
        },
    );

    let gaps = [
        ("none (clean sim)", SimToRealConfig::identity()),
        ("mild (testbed default)", SimToRealConfig::default()),
        (
            "severe",
            SimToRealConfig {
                obs_noise_std: 0.08,
                action_noise_std: 0.03,
                action_delay: true,
                gain_range: (0.7, 1.1),
                heading_drift: 0.03,
            },
        ),
    ];
    println!("\n{:<24} {:>10} {:>10} {:>11}", "domain gap", "collision", "success", "mean speed");
    for (label, gap) in gaps {
        let mut testbed = SimToRealEnv::new(env_cfg, scenario::congestion_spawns(), gap, 77);
        let stats = evaluate_team(&mut team, &mut testbed, 20, 77);
        println!(
            "{label:<24} {:>10.2} {:>10.2} {:>11.4}",
            stats.collision_rate, stats.success_rate, stats.mean_speed
        );
    }
    println!("\n(the paper's Table II uses the mild gap with 20 episodes per method)");
}

//! Building a custom world with the public API: a wider three-lane loop,
//! five vehicles, two of them scripted — then comparing a do-nothing
//! policy with the scripted option executor on collision counts.
//!
//! Run with: `cargo run --release --example custom_scenario`

use hero::prelude::*;
use hero::sim::options::ScriptedExecutor;
use hero::sim::{Track, VehicleRole, VehicleSpawn};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spawns() -> Vec<VehicleSpawn> {
    vec![
        VehicleSpawn {
            lane: 0,
            random_lane: false,
            s: 0.0,
            s_jitter: 0.4,
            speed: 0.1,
            role: VehicleRole::Learner,
        },
        VehicleSpawn {
            lane: 1,
            random_lane: false,
            s: 10.0,
            s_jitter: 0.4,
            speed: 0.1,
            role: VehicleRole::Learner,
        },
        VehicleSpawn {
            lane: 2,
            random_lane: false,
            s: 5.0,
            s_jitter: 0.4,
            speed: 0.1,
            role: VehicleRole::Learner,
        },
        VehicleSpawn {
            lane: 0,
            random_lane: false,
            s: 2.0,
            s_jitter: 0.0,
            speed: 0.02,
            role: VehicleRole::Scripted { speed: 0.02 },
        },
        VehicleSpawn {
            lane: 1,
            random_lane: false,
            s: 12.0,
            s_jitter: 0.0,
            speed: 0.03,
            role: VehicleRole::Scripted { speed: 0.03 },
        },
    ]
}

fn run(
    policy_name: &str,
    mut pick: impl FnMut(usize, &LaneChangeEnv) -> DrivingOption,
) -> (usize, f32) {
    let cfg = EnvConfig {
        track: Track::new(16.0, 0.4, 3),
        max_steps: 25,
        ..EnvConfig::default()
    };
    let mut env = LaneChangeEnv::new(cfg, spawns(), 21);
    let executor = ScriptedExecutor::new();
    let mut collisions = 0;
    let mut speed_sum = 0.0;
    let mut steps = 0;
    for _ in 0..20 {
        env.reset();
        while !env.is_done() {
            let mut cmds = vec![VehicleCommand::default(); env.num_vehicles()];
            for &v in &env.learner_indices() {
                let option = pick(v, &env);
                cmds[v] = executor.command(option, env.vehicle_state(v), &cfg.track);
            }
            let out = env.step(&cmds);
            speed_sum += out.mean_speed;
            steps += 1;
        }
        if env.learner_indices().iter().any(|&v| env.has_collided(v)) {
            collisions += 1;
        }
    }
    println!(
        "{policy_name:<28} collisions: {collisions:>2}/20   mean speed: {:.4}",
        speed_sum / steps as f32
    );
    (collisions, speed_sum / steps as f32)
}

fn main() {
    println!("custom 3-lane, 5-vehicle world (20 episodes each):\n");
    let mut rng = StdRng::seed_from_u64(1);

    // Policy A: always accelerate blindly.
    let (blind, _) = run("always-accelerate", |_, _| DrivingOption::Accelerate);

    // Policy B: a hand-written reactive rule — slow down when the front
    // lidar cone is blocked, change lane when also slow.
    let (reactive, _) = run("reactive-rule", |v, env| {
        let obs = env.observe(v);
        let front = obs.lidar[0].min(obs.lidar[1]).min(obs.lidar[obs.lidar.len() - 1]);
        if front < 0.25 {
            DrivingOption::LaneChange
        } else if front < 0.5 {
            DrivingOption::SlowDown
        } else {
            DrivingOption::Accelerate
        }
    });

    // Policy C: uniformly random options.
    use rand::Rng;
    let (_random, _) = run("uniform-random", move |_, _| {
        DrivingOption::from_index(rng.gen_range(0..DrivingOption::COUNT))
    });

    println!(
        "\nthe reactive rule avoids {} of the blind policy's collisions — the\n\
         headroom HERO's learned high-level policy exploits (see hero-bench).",
        blind.saturating_sub(reactive)
    );
}

//! Stage-one skill training (the paper's Algorithm 2 / Fig. 8): learn the
//! lane-tracking and lane-change skills with soft actor–critic in two
//! parallel single-vehicle environments, then exercise the trained
//! lane-change skill in a fresh environment.
//!
//! Run with: `cargo run --release --example skill_training -- [episodes]`

use hero::prelude::*;
use hero::sim::skill_env::{ManeuverResult, SkillEnv};
use hero_baselines::sac::SacConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let episodes: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("episodes must be a number"))
        .unwrap_or(300);
    let env_cfg = EnvConfig::default();

    println!("training both skills for {episodes} episodes in parallel environments...");
    let (skills, curves) = SkillLibrary::train(
        env_cfg,
        SkillTrainingConfig {
            vision: false,
            episodes,
            updates_per_episode: 2,
            sac: SacConfig {
                batch_size: 64,
                ..SacConfig::default()
            },
        },
        11,
    );

    for name in ["skill/driving-in-lane", "skill/lane-change"] {
        let head = curves.smoothed(name, 50).expect("series")[..episodes]
            .first()
            .copied()
            .unwrap_or(0.0);
        let tail = curves.tail_mean(name, 50).unwrap_or(0.0);
        println!("{name:<26} first episode ≈ {head:>7.2}   last-50 mean ≈ {tail:>7.2}");
    }
    if let Some(rate) = curves.tail_mean("skill/lane-change-success", 50) {
        println!("lane-change success rate over the last 50 episodes: {rate:.2}");
    }

    // Deploy the trained lane-change skill on a fresh maneuver: the skill
    // env consumes exactly the squashed actions the SAC policy emits.
    println!("\nexecuting one lane change with the trained skill (deterministic):");
    let mut env = SkillEnv::lane_change(env_cfg, 99);
    let mut rng = StdRng::seed_from_u64(99);
    let mut obs = env.reset();
    let mut step = 0;
    while !env.is_done() {
        let a = skills.lane_change_skill().act(&obs, &mut rng, false);
        let (next, reward, _) = env.step([a[0], a[1]]);
        println!("  step {step}: reward {reward:>7.2}");
        obs = next;
        step += 1;
    }
    match env.result() {
        ManeuverResult::Success => println!("maneuver result: SUCCESS"),
        other => println!("maneuver result: {other:?} (try more training episodes)"),
    }
}

//! Quickstart: drive the cooperative lane-change world, train a tiny HERO
//! team for a handful of episodes, and print its learning curve.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! This uses toy budgets so it finishes in seconds; the paper-scale
//! pipeline lives in the `hero-bench` experiment binaries.

use std::sync::Arc;

use hero::prelude::*;
use hero_baselines::sac::SacConfig;

fn main() {
    let env_cfg = EnvConfig::default();

    // A world: four vehicles on the double-lane loop, one plodding to
    // simulate congestion (the paper's Fig. 9 layout).
    let mut env = hero::sim::scenario::congestion(env_cfg, 42);
    println!(
        "world: {} vehicles ({} learners) on a {:.0} m double-lane loop",
        env.num_vehicles(),
        env.learner_indices().len(),
        env_cfg.track.length
    );

    // Stage 1 (abbreviated): normally `SkillLibrary::train` learns the
    // low-level skills with SAC; here we start untrained to stay fast.
    let skills = Arc::new(SkillLibrary::untrained(
        env_cfg,
        SacConfig::default(),
        42,
    ));

    // Stage 2: learn high-level cooperation with opponent modeling.
    let cfg = HeroConfig {
        batch_size: 64,
        warmup: 64,
        ..HeroConfig::default()
    };
    let mut team = HeroTeam::new(3, env_cfg.high_dim(), skills, cfg, 42);
    let curves = train_team(
        &mut team,
        &mut env,
        &TrainOptions {
            episodes: 30,
            update_every: 4,
            seed: 42,
        },
    );

    println!("\nepisode-reward curve (window-10 smoothed, every 5th episode):");
    let smoothed = curves.smoothed("reward", 10).expect("reward series");
    for (i, v) in smoothed.iter().enumerate().step_by(5) {
        println!("  episode {i:>3}: {v:>7.3}");
    }

    let stats = evaluate_team(&mut team, &mut env, 5, 7);
    println!(
        "\ngreedy evaluation over 5 episodes: collision rate {:.2}, merge success {:.2}, mean speed {:.3}",
        stats.collision_rate, stats.success_rate, stats.mean_speed
    );
    println!("(toy budget — see `cargo run -p hero-bench --bin fig7_learning_curves` for the real thing)");
}

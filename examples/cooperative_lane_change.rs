//! The full two-stage HERO pipeline on the paper's Fig. 6 scenario:
//! vehicle 2's lane is blocked by slow traffic and it must merge in
//! coordination with vehicle 1.
//!
//! Run with: `cargo run --release --example cooperative_lane_change -- [skill_eps] [coop_eps]`

use std::sync::Arc;

use hero::prelude::*;
use hero_baselines::sac::SacConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let skill_eps: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(300);
    let coop_eps: usize = args.next().map(|s| s.parse().unwrap()).unwrap_or(150);
    let env_cfg = EnvConfig::default();

    // Stage 1: low-level skills (Algorithm 2).
    println!("stage 1: training low-level skills for {skill_eps} episodes...");
    let (skills, skill_curves) = SkillLibrary::train(
        env_cfg,
        SkillTrainingConfig {
            vision: false,
            episodes: skill_eps,
            updates_per_episode: 2,
            sac: SacConfig {
                batch_size: 64,
                ..SacConfig::default()
            },
        },
        3,
    );
    println!(
        "  driving-in-lane last-50 reward: {:.2}",
        skill_curves.tail_mean("skill/driving-in-lane", 50).unwrap_or(0.0)
    );
    println!(
        "  lane-change     last-50 reward: {:.2}",
        skill_curves.tail_mean("skill/lane-change", 50).unwrap_or(0.0)
    );

    // Stage 2: high-level cooperation with opponent modeling (Algorithm 1).
    println!("\nstage 2: training cooperation for {coop_eps} episodes on the merge scenario...");
    let mut env = hero::sim::scenario::two_vehicle_merge(env_cfg, 3);
    let cfg = HeroConfig {
        batch_size: 64,
        warmup: 64,
        ..HeroConfig::default()
    };
    let mut team = HeroTeam::new(2, env_cfg.high_dim(), Arc::new(skills), cfg, 3);
    let curves = train_team(
        &mut team,
        &mut env,
        &TrainOptions {
            episodes: coop_eps,
            update_every: 4,
            seed: 3,
        },
    );
    let w = (coop_eps / 4).max(1);
    println!(
        "  final window: reward {:.3}, collision rate {:.2}, merge success {:.2}",
        curves.tail_mean("reward", w).unwrap_or(f32::NAN),
        curves.tail_mean("collision", w).unwrap_or(f32::NAN),
        curves.tail_mean("success", w).unwrap_or(f32::NAN),
    );

    // Watch one greedy episode, narrated through each agent's options.
    println!("\none greedy episode, narrated:");
    let mut rng = rand::SeedableRng::seed_from_u64(9);
    let mut obs = env.reset();
    team.begin_episode();
    let mut step = 0;
    while !env.is_done() {
        let cmds = team.decide(&env, &obs, &mut rng, false);
        let options: Vec<String> = team
            .agents()
            .iter()
            .map(|a| {
                a.current_option()
                    .map(|o| o.to_string())
                    .unwrap_or_else(|| "-".into())
            })
            .collect();
        let out = env.step(&cmds);
        team.record(&env, &obs, &out.rewards, &out.observations, out.done);
        println!(
            "  step {step:>2}: v1={:<12} v2={:<12} reward={:>6.2}",
            options[0], options[1], out.rewards[1]
        );
        obs = out.observations;
        step += 1;
    }
    let merged = env.has_merged(1);
    let collided = env.learner_indices().iter().any(|&v| env.has_collided(v));
    println!(
        "\nepisode outcome: merged={merged}, collision={collided} \
         (more episodes in both stages improve this; see hero-bench for paper scale)"
    );
}

//! Vendored minimal stand-in for the `parking_lot` crate.
//!
//! Backed by `std::sync` primitives with `parking_lot`'s ergonomic surface:
//! `lock()`/`read()`/`write()` return guards directly (a poisoned std lock —
//! only possible after a panic while holding it — is unwrapped into the
//! still-consistent inner data, matching parking_lot's no-poisoning model).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning its inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader–writer lock (no poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning its inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<'a, T: ?Sized> RwLockReadGuard<'a, T> {
    /// Projects the guard onto a component of the protected data.
    pub fn map<U: ?Sized, F>(guard: Self, f: F) -> MappedRwLockReadGuard<'a, U>
    where
        F: FnOnce(&T) -> &U,
    {
        // Box the std guard so the borrow target has a stable address, then
        // keep the projection as a raw pointer alongside the owning box.
        let owner: Box<sync::RwLockReadGuard<'a, T>> = Box::new(guard.0);
        let value: *const U = f(&owner);
        MappedRwLockReadGuard {
            _owner: owner as Box<dyn Erased + 'a>,
            value,
        }
    }
}

trait Erased {}
impl<T> Erased for T {}

/// Guard projecting a [`RwLockReadGuard`] onto a sub-borrow
/// (see [`RwLockReadGuard::map`]).
pub struct MappedRwLockReadGuard<'a, T: ?Sized> {
    _owner: Box<dyn Erased + 'a>,
    value: *const T,
}

impl<'a, T: ?Sized> Deref for MappedRwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: `value` points into the heap-boxed guard owned by
        // `_owner`, which lives exactly as long as `self` and keeps the
        // read lock held.
        unsafe { &*self.value }
    }
}

// SAFETY: the projection is a read-only view whose owner guard is Send/Sync
// exactly when the protected data allows shared access from other threads.
unsafe impl<'a, T: ?Sized + Sync> Sync for MappedRwLockReadGuard<'a, T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_map_projection() {
        struct Pair {
            a: i32,
            b: String,
        }
        let l = RwLock::new(Pair {
            a: 7,
            b: "hello".into(),
        });
        let a = RwLockReadGuard::map(l.read(), |p| &p.a);
        assert_eq!(*a, 7);
        drop(a);
        let b = RwLockReadGuard::map(l.read(), |p| p.b.as_str());
        assert_eq!(&*b, "hello");
    }

    #[test]
    fn rwlock_write_then_read() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}

//! Vendored minimal stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`black_box`], [`criterion_group!`],
//! [`criterion_main!`] — with a plain wall-clock runner: a short warm-up
//! followed by timed batches until a target measurement budget is spent,
//! reporting mean ns/iteration (no statistics, no HTML reports).

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup between measurements. The stand-in
/// runner re-runs setup for every iteration regardless, so the variants only
/// document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark registry and runner.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
    results: Vec<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(100),
            measure: Duration::from_millis(400),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Overrides the measurement budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measure = t;
        self
    }

    /// Overrides the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warmup = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let ns = if b.iters > 0 {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        } else {
            f64::NAN
        };
        println!("{name:<40} {:>14.1} ns/iter  ({} iters)", ns, b.iters);
        self.results.push((name.to_string(), ns));
        self
    }

    /// Mean ns/iteration of every benchmark run so far, in run order.
    /// Lets harness-less benches (`harness = false` + hand-rolled `main`)
    /// collect numbers for machine-readable output.
    pub fn results(&self) -> &[(String, f64)] {
        &self.results
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up (untimed).
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measure {
            black_box(routine());
            iters += 1;
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warmup {
            let input = setup();
            black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < self.measure {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            measured += t.elapsed();
            iters += 1;
        }
        self.elapsed += measured;
        self.iters += iters;
    }
}

/// Declares a benchmark group function calling each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].0, "noop");
        assert!(c.results()[0].1.is_finite());
    }
}

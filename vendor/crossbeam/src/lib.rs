//! Vendored minimal stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel::{unbounded, bounded, Sender, Receiver}`
//! with the crossbeam semantics the codebase relies on: both halves are
//! `Clone`, `Send`, and `Sync` (multi-producer *and* multi-consumer),
//! backed by a `Mutex<VecDeque>` + `Condvar` — adequate for progress and
//! rollout channels, not tuned for contended hot paths. Bounded channels
//! block the sender while the queue is full (backpressure), and
//! [`channel::Receiver::recv_timeout`] supports stall detection.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled after a pop frees a slot in a bounded channel.
        space: Condvar,
        /// `None` for unbounded channels; `Some(cap)` bounds the queue.
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// No message available and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// No message available and every sender is gone.
        Disconnected,
    }

    fn shared<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            capacity,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(shared.clone()), Receiver(shared))
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        shared(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages;
    /// [`Sender::send`] blocks while the queue is full. `cap` must be at
    /// least 1 (rendezvous channels are not supported).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap >= 1, "bounded channel capacity must be >= 1");
        shared(Some(cap))
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing when every receiver has been
        /// dropped. On a bounded channel this blocks while the queue is
        /// full until a receiver frees a slot (backpressure).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(cap) = self.0.capacity {
                while q.len() >= cap {
                    if self.0.receivers.load(Ordering::Acquire) == 0 {
                        return Err(SendError(value));
                    }
                    q = self.0.space.wait(q).unwrap_or_else(|p| p.into_inner());
                }
            }
            q.push_back(value);
            drop(q);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked receivers so they can observe disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            match q.pop_front() {
                Some(v) => {
                    drop(q);
                    self.0.space.notify_one();
                    Ok(v)
                }
                None if self.0.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeues a message, blocking until one arrives or every sender is
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.0.space.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.0.ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Dequeues a message, blocking until one arrives, every sender is
        /// dropped, or `timeout` elapses — whichever comes first. Used by
        /// the learner loop to detect stalled actor threads.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.0.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    drop(q);
                    self.0.space.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, res) = self
                    .0
                    .ready
                    .wait_timeout(q, remaining)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.0.senders.load(Ordering::Acquire) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Drains currently queued messages into an iterator snapshot.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.0.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake blocked (bounded) senders so they can observe
                // disconnection instead of waiting for space forever.
                self.0.space.notify_all();
            }
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.try_recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_is_observed() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            // The third send must block until the receiver frees a slot.
            let t = std::thread::spawn(move || {
                tx.send(3).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv().unwrap(), 1);
            t.join().unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn bounded_send_errors_when_receiver_drops() {
            let (tx, rx) = bounded(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(rx);
            assert!(t.join().unwrap().is_err());
        }

        #[test]
        fn recv_timeout_times_out_and_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(7));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_send() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let tx = tx.clone();
                    std::thread::spawn(move || tx.send(w).unwrap())
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            drop(tx);
            let mut got: Vec<i32> = std::iter::from_fn(|| rx.recv().ok()).collect();
            got.sort_unstable();
            assert_eq!(got, vec![0, 1, 2, 3]);
        }
    }
}

/// Structured scoped threads: spawn borrows from the enclosing stack frame
/// and every thread is joined before `scope` returns.
///
/// Implemented directly on `std::thread::scope` (stable since Rust 1.63),
/// so the API follows std rather than crossbeam 0.8: `scope` returns the
/// closure's value (not a `Result`) and `spawn` takes a plain `FnOnce()`
/// closure. Used by `hero-core` for the parallel per-agent update phase.
pub mod thread {
    pub use std::thread::{scope, Scope, ScopedJoinHandle};

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u64, 2, 3, 4];
            let partial: Vec<u64> = super::scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move || c.iter().sum::<u64>()))
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });
            assert_eq!(partial, vec![3, 7]);
        }
    }
}

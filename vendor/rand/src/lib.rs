//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment is fully offline, so this workspace ships the small
//! subset of the `rand 0.8` API the reproduction actually uses:
//!
//! - [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! - [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — *not* the ChaCha
//!   generator real `rand` uses, but deterministic, seedable, and of ample
//!   statistical quality for simulation and tests),
//! - `gen::<T>()` for `f32`/`f64`/`u32`/`u64`/`bool`,
//! - `gen_range` over half-open integer and float ranges.
//!
//! Determinism contract: for a given seed the output sequence is a pure
//! function of the call sequence, on every platform. Nothing here is
//! cryptographically secure.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        (self.gen::<f64>()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that supports uniform sampling.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                // Modulo with 128-bit widening: bias is < 2^-64, immaterial
                // for simulation workloads.
                let draw = ((rng.next_u64() as u128) % span) as $t;
                self.start.wrapping_add(draw)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end { v } else { f32_prev(self.end) }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = self.start + (self.end - self.start) * unit;
        if v < self.end { v } else { f64_prev(self.end) }
    }
}

fn f32_prev(x: f32) -> f32 {
    f32::from_bits(x.to_bits() - 1)
}

fn f64_prev(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

/// Standard distributions (`Standard` only).
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution: uniform `[0, 1)` for floats, uniform over
    /// the whole domain for integers.
    pub struct Standard;

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12), but
    /// fulfils the same contract this codebase relies on: seedable,
    /// deterministic, platform-independent, fast.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Exposes the raw xoshiro256++ state so callers can checkpoint the
        /// stream and later resume it bit-identically via [`StdRng::from_state`].
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured with [`StdRng::state`].
        ///
        /// The all-zero state (a fixed point of xoshiro) is nudged exactly as
        /// in `from_seed`, so every input yields a working generator.
        pub fn from_state(mut s: [u64; 4]) -> Self {
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// A non-deterministically seeded generator (seeded from the system clock
/// and a process-wide counter — this build has no OS entropy dependency).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    rngs::StdRng::seed_from_u64(nanos ^ COUNTER.fetch_add(0x9E37, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..13 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_state_is_nudged() {
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&v), "{v}");
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }

    #[test]
    fn int_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "{mean}");
    }
}

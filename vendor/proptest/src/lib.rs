//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The offline build environment cannot fetch real `proptest`, so this crate
//! implements the subset of its API used by the workspace's property tests:
//!
//! - the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`],
//! - range, tuple, `Just`, `prop_map`, `Union`, and
//!   [`collection::vec`] strategies,
//! - [`test_runner::ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the generated input as-is.
//! - **Deterministic seeding.** Cases derive from a fixed seed (override
//!   with the `PROPTEST_SEED` environment variable) so CI failures
//!   reproduce locally.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Derives a strategy that post-processes generated values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Derives a strategy that regenerates until `keep` accepts a value.
        fn prop_filter<F>(self, whence: &'static str, keep: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                source: self,
                whence,
                keep,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Boxes a strategy (used by [`crate::prop_oneof!`]).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always generates a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        pub(crate) source: S,
        pub(crate) whence: &'static str,
        pub(crate) keep: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.source.generate(rng);
                if (self.keep)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive values: {}", self.whence)
        }
    }

    /// Uniform choice among boxed strategies of one value type
    /// (built by [`crate::prop_oneof!`]).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Creates a union; panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.gen_range(0..self.0.len());
            self.0[idx].generate(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
        (A, B, C, D, E, F, G);
        (A, B, C, D, E, F, G, H);
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact `usize` or a half-open
    /// range.
    #[derive(Clone, Debug)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange(r)
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose length
    /// comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.0.len() == 1 {
                self.size.0.start
            } else {
                rng.gen_range(self.size.0.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case execution.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject,
        /// A `prop_assert!` failed; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    fn base_seed() -> u64 {
        match std::env::var("PROPTEST_SEED") {
            Ok(s) => s.parse().unwrap_or(0xC0FF_EE00_D15E_A5ED),
            Err(_) => 0xC0FF_EE00_D15E_A5ED,
        }
    }

    /// Runs one property: draws inputs from `strategy` until `cfg.cases`
    /// accepted cases pass, panicking on the first falsified case.
    pub fn run<S, F>(cfg: &ProptestConfig, strategy: S, test: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = StdRng::seed_from_u64(base_seed());
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let reject_budget = (cfg.cases as u64).saturating_mul(32).max(1024);
        while passed < cfg.cases {
            let value = strategy.generate(&mut rng);
            let repr = format!("{value:?}");
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    assert!(
                        rejected < reject_budget,
                        "prop_assume! rejected {rejected} cases (budget {reject_budget})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest property falsified after {passed} passing case(s)\n\
                         input: {repr}\ncause: {msg}"
                    )
                }
            }
        }
    }
}

/// The glob-import surface used by property tests
/// (`use proptest::prelude::*;`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Mirrors real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(0.0f32..1.0, 1..8)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
///
/// `#[test]` is inserted automatically (as in real proptest), so bodies must
/// not repeat it — a duplicate would be a compile error. Extra attributes
/// such as `#[ignore]` or `#[should_panic]` still pass through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        $(#[$meta])*
        fn $name() {
            let __pt_cfg = $cfg;
            let __pt_strategy = ( $($strat,)+ );
            $crate::test_runner::run(&__pt_cfg, __pt_strategy, |( $($arg,)+ )| {
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

/// Fallible assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fallible equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pt_a, __pt_b) = (&$a, &$b);
        $crate::prop_assert!(
            *__pt_a == *__pt_b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            __pt_a,
            __pt_b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pt_a, __pt_b) = (&$a, &$b);
        $crate::prop_assert!(*__pt_a == *__pt_b, $($fmt)+);
    }};
}

/// Fallible inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pt_a, __pt_b) = (&$a, &$b);
        $crate::prop_assert!(
            *__pt_a != *__pt_b,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            __pt_a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pt_a, __pt_b) = (&$a, &$b);
        $crate::prop_assert!(*__pt_a != *__pt_b, $($fmt)+);
    }};
}

/// Rejects the current case (re-drawn without counting toward `cases`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![ $( $crate::strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        fn ranges_in_bounds(x in 3usize..9, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        fn vec_lengths_respected(v in prop::collection::vec(0.0f32..1.0, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
        }

        fn exact_vec_length(v in prop::collection::vec(0usize..5, 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        fn map_and_oneof(v in prop_oneof![(-2.0f32..-1.0), (1.0f32..2.0)].prop_map(|x| x * 2.0)) {
            prop_assert!(v.abs() >= 2.0 && v.abs() < 4.0);
        }

        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(8),
            (0usize..4,),
            |(x,)| {
                prop_assert!(x < 2, "x too big: {}", x);
                Ok(())
            },
        );
    }
}

#!/usr/bin/env bash
# Tier-1 gate, telemetry smoke test, the learning-dynamics golden diff,
# the policy-serving lane, and the fast-math kernel lane. Run from
# anywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== tier-1: cargo build --release"
cargo build --release

echo "=== tier-1: cargo test -q"
cargo test -q

echo "=== workspace tests"
cargo test --workspace -q

echo "=== batched-rollout differential equivalence"
# The bit-exactness contract of the vectorized rollout engine: every
# world of a BatchWorld must match a scalar LaneChangeEnv bit-for-bit
# (observations, rewards, RNG streams, termination). Tier-1 already runs
# this suite; rerun it by name so a contract break is unmissable in the
# CI log.
cargo test -q --release -p hero-sim --test batch_equivalence

echo "=== telemetry smoke"
scripts/smoke_telemetry.sh

echo "=== learning-dynamics golden diff"
# Rerun the seeded diagnostics experiment into a FRESH output directory
# (so the skill library retrains instead of loading a checkpoint, which
# would change the telemetry) and gate against the committed baseline.
# Only seed-deterministic statistics are compared; see DESIGN.md.
cargo build --release -q -p hero-bench --bin fig10_opponent_loss \
    -p hero-inspect --bin hero-inspect
DIAG=$(mktemp -d /tmp/hero-diag.XXXXXX)
./target/release/fig10_opponent_loss \
    --episodes 6 --eval-episodes 1 --skill-episodes 2 --batch-size 8 \
    --update-every 1 --seed 7 --out "$DIAG/exp" \
    --telemetry-out "$DIAG/tel" >/dev/null
./target/release/hero-inspect diff \
    tests/golden/diag_baseline.jsonl "$DIAG/tel" --fail-on-regression
./target/release/hero-inspect doctor "$DIAG/tel"

echo "=== actor/learner serial-mode golden diff"
# Serial mode (--batch-worlds 1, the default) must be bit-identical to
# the sequential trainer for any actor count: the same seeded experiment
# on 2 actor threads diffs clean against the sequential golden. Stall
# bookkeeping (actor/) is excluded — it only fires on injected faults.
./target/release/fig10_opponent_loss \
    --episodes 6 --eval-episodes 1 --skill-episodes 2 --batch-size 8 \
    --update-every 1 --seed 7 --actors 2 --out "$DIAG/exp-actors" \
    --telemetry-out "$DIAG/tel-actors" >/dev/null
./target/release/hero-inspect diff \
    tests/golden/diag_baseline.jsonl "$DIAG/tel-actors" \
    --ignore actor/ --ignore live/ --fail-on-regression

echo "=== live metrics exporter smoke"
# Run a longer 2-actor experiment with the runtime exporter attached
# (ephemeral port, discovered via <out>/metrics_addr) and scrape
# GET /metrics mid-run: the exposition must be well-formed Prometheus
# text with the live/ rollout gauges populated. A twin run without the
# exporter must then diff bit-identical (counters AND value statistics)
# — scraping is read-only. 120 episodes (~2s) so the scraper has a
# comfortable mid-run window; the 6-episode golden run is too short.
# Like the kill-and-resume smoke, both compared runs load one shared
# skill bootstrap: a fresh bootstrap trains the two skills on parallel
# threads whose sac.* diagnostic values interleave into shared
# histograms, so fresh-bootstrap value sums are scheduling-sensitive at
# the last ULP and never zero-tol comparable across runs.
LIVE=$(mktemp -d /tmp/hero-live.XXXXXX)
LIVE_FLAGS=(--episodes 120 --eval-episodes 1 --skill-episodes 2 --batch-size 8
            --update-every 1 --seed 7 --actors 2)
./target/release/fig10_opponent_loss \
    --episodes 2 --eval-episodes 1 --skill-episodes 2 --batch-size 8 \
    --update-every 1 --seed 7 --out "$LIVE/shared" \
    --telemetry-out "$LIVE/tel-warm" >/dev/null
./target/release/fig10_opponent_loss "${LIVE_FLAGS[@]}" \
    --out "$LIVE/shared" --telemetry-out "$LIVE/tel" \
    --metrics-addr 127.0.0.1:0 \
    >/dev/null 2>"$LIVE/stderr.log" &
live_pid=$!
for _ in $(seq 1 100); do
    [ -f "$LIVE/shared/metrics_addr" ] && break
    kill -0 "$live_pid" 2>/dev/null || { cat "$LIVE/stderr.log"; exit 1; }
    sleep 0.1
done
ADDR=$(cat "$LIVE/shared/metrics_addr")
python3 - "$ADDR" <<'EOF'
import sys, time, urllib.request

addr = sys.argv[1].strip()
deadline = time.monotonic() + 30
last = ""
while time.monotonic() < deadline:
    try:
        with urllib.request.urlopen(f"http://{addr}/metrics", timeout=2) as r:
            last = r.read().decode()
    except OSError:
        if last:
            break  # run (and exporter) finished; judge the last scrape
        time.sleep(0.05)  # exporter not up yet (or gone before first hit)
        continue
    live = {}
    for ln in last.splitlines():
        if not ln or ln.startswith("#"):
            continue
        name, _, value = ln.rpartition(" ")
        assert name, f"malformed sample line: {ln!r}"
        float(value)  # every sample line ends in a number
        if ln.startswith("hero_gauge") and 'name="live/' in ln:
            live[name] = float(value)
    if live and any(v > 0 for v in live.values()):
        print(f"  scraped {addr}: {len(last.splitlines())} lines, "
              f"{len(live)} live gauges, e.g. {sorted(live)[0]}")
        sys.exit(0)
    time.sleep(0.1)
sys.exit(f"never saw a nonzero live/ gauge at {addr}; last scrape:\n{last}")
EOF
wait "$live_pid"
# Twin run, identical flags, no exporter: zero-tolerance diff proves the
# scraped run's telemetry is untouched by a live scraper.
./target/release/fig10_opponent_loss "${LIVE_FLAGS[@]}" \
    --out "$LIVE/shared" --telemetry-out "$LIVE/tel-plain" >/dev/null
./target/release/hero-inspect diff "$LIVE/tel-plain" "$LIVE/tel" \
    --tol-value 0 --tol-count 0 --tol-counter 0 --abs-floor 0 \
    --ignore actor/ --ignore live/ --fail-on-regression
# hero-top renders a frame from the finished telemetry directory.
./target/release/hero-inspect watch "$LIVE/tel" --frames 1 | grep -q "hero-top" \
    || { echo "hero-inspect watch failed to render from $LIVE/tel"; exit 1; }
rm -rf "$LIVE"

echo "=== training-throughput bench (quick)"
# Quick criterion pass over the kernel and train-step microbenches; the
# emitted JSON must exist and carry every field bench.sh promises.
rm -f BENCH_train_throughput.json
scripts/bench.sh --quick >/dev/null
python3 - <<'EOF'
import json
with open("BENCH_train_throughput.json") as f:
    bench = json.load(f)
required = [
    "matmul_naive_ns", "matmul_tiled_ns", "matmul_gflops",
    "train_step_naive_ns", "train_step_tiled_ns", "train_step_speedup",
    "env_steps_per_s", "grad_updates_per_s",
    "rollout_worlds", "env_steps_per_sec_scalar", "env_steps_per_sec_batched",
    "rollout_batch_speedup",
    # Kernel-tier comparison (bench.sh builds with --features fast-math,
    # so the fast points must be real measurements, not the 0.0 stubs).
    "matmul_mode_dim", "matmul_gflops_strict", "matmul_gflops_fast",
    "matmul_gflops_fast_t1", "matmul_gflops_fast_t2", "matmul_gflops_fast_t4",
    "fast_vs_strict_speedup", "gemm_threads",
]
missing = [k for k in required if k not in bench]
assert not missing, f"BENCH_train_throughput.json missing {missing}"
bad = [k for k in required if not (isinstance(bench[k], (int, float)) and bench[k] > 0)]
assert not bad, f"non-positive bench fields: {bad}"
assert isinstance(bench.get("isa"), str) and bench["isa"], f"bad isa: {bench.get('isa')!r}"
# The packed FMA tier must beat the strict tiled kernel convincingly;
# 1.5x here is the noise-proof CI floor (the committed full-length run
# records >= 2x, the acceptance headline).
assert bench["fast_vs_strict_speedup"] >= 1.5, \
    f"fast tier only {bench['fast_vs_strict_speedup']}x over strict"
print(f"  speedup {bench['train_step_speedup']}x, "
      f"{bench['matmul_gflops']} GFLOP/s, "
      f"{bench['env_steps_per_s']} env_steps/s, "
      f"rollout {bench['rollout_batch_speedup']}x @ "
      f"{int(bench['rollout_worlds'])} worlds")
print(f"  kernel tiers ({bench['isa']}): strict {bench['matmul_gflops_strict']} "
      f"vs fast {bench['matmul_gflops_fast']} GFLOP/s "
      f"({bench['fast_vs_strict_speedup']}x) @ dim {int(bench['matmul_mode_dim'])}")

# bench.sh also appends one history entry per run; the newest line must
# be valid JSONL carrying the commit, an ISO date, the machine's ISA and
# GEMM thread count, and the full bench.
with open("BENCH_history.jsonl") as f:
    lines = [ln for ln in f.read().splitlines() if ln.strip()]
assert lines, "BENCH_history.jsonl is empty"
entry = json.loads(lines[-1])
missing = {"sha", "date", "isa", "threads", "bench"} - set(entry)
assert not missing, f"BENCH_history.jsonl entry missing {missing}"
assert entry["bench"].get("train_step_speedup", 0) > 0, entry
assert entry["threads"] >= 1 and entry["isa"], entry
print(f"  history: {len(lines)} entries, newest {entry['sha']} @ {entry['date']} "
      f"({entry['isa']}, {entry['threads']} thr)")
EOF

echo "=== kill-and-resume smoke"
# A seeded run crashed mid-training (injected kill, exit 137) and resumed
# from its checkpoint must be indistinguishable from an uninterrupted run:
# zero-tolerance telemetry diff (checkpoint/ bookkeeping excluded) and
# byte-identical figure CSVs. Then corrupt the newest checkpoint and prove
# resume falls back to the previous good one.
CRASH=$(mktemp -d /tmp/hero-crash.XXXXXX)
RUN_FLAGS=(--episodes 6 --eval-episodes 1 --skill-episodes 2 --batch-size 8
           --update-every 1 --seed 7 --checkpoint-every 2)
# Reuse one skill bootstrap for every run: the library is trained once,
# checkpointed under --out, and loaded (bit-identically) thereafter.
./target/release/fig10_opponent_loss "${RUN_FLAGS[@]}" \
    --out "$CRASH/shared" --telemetry-out "$CRASH/tel-warm" \
    --checkpoint-dir "$CRASH/ckpt-warm" >/dev/null

# Run A: uninterrupted.
./target/release/fig10_opponent_loss "${RUN_FLAGS[@]}" \
    --out "$CRASH/shared" --telemetry-out "$CRASH/tel-a" \
    --checkpoint-dir "$CRASH/ckpt-a" >/dev/null
cp "$CRASH/shared/fig10_opponent_loss.csv" "$CRASH/fig10_a.csv"

# Run B: killed at episode 3 (expected exit 137), then resumed. The
# killed run needs telemetry installed too — checkpoints embed the live
# registry state so the resumed run's totals cover the whole run.
rc=0
./target/release/fig10_opponent_loss "${RUN_FLAGS[@]}" \
    --out "$CRASH/shared" --telemetry-out "$CRASH/tel-b1" \
    --checkpoint-dir "$CRASH/ckpt-b" \
    --fault-plan kill@ep:3 >/dev/null || rc=$?
test "$rc" -eq 137 || { echo "expected exit 137 from injected kill, got $rc"; exit 1; }
./target/release/fig10_opponent_loss "${RUN_FLAGS[@]}" \
    --out "$CRASH/shared" --telemetry-out "$CRASH/tel-b" \
    --checkpoint-dir "$CRASH/ckpt-b" --resume >/dev/null

# Bit-identical telemetry (counters AND value statistics) and CSVs.
./target/release/hero-inspect diff "$CRASH/tel-a" "$CRASH/tel-b" \
    --tol-value 0 --tol-count 0 --tol-counter 0 --abs-floor 0 \
    --ignore checkpoint/ --ignore live/ --fail-on-regression
cmp "$CRASH/fig10_a.csv" "$CRASH/shared/fig10_opponent_loss.csv"

# Corrupt the newest checkpoint of run B; resume must fall back to the
# previous good one and count the recovery.
newest=$(ls "$CRASH/ckpt-b/HERO"/ckpt-*.hero | sort | tail -n 1)
truncate -s 64 "$newest"
./target/release/fig10_opponent_loss "${RUN_FLAGS[@]}" \
    --out "$CRASH/shared" --telemetry-out "$CRASH/tel-c" \
    --checkpoint-dir "$CRASH/ckpt-b" --resume >/dev/null
grep -q '^checkpoint/fallback,1,' "$CRASH/tel-c/counters.csv" \
    || { echo "expected checkpoint/fallback=1 after corrupting the newest checkpoint"; \
         cat "$CRASH/tel-c/counters.csv"; exit 1; }
rm -rf "$CRASH"

echo "=== chaos soak (actor supervision)"
# The self-healing ladder under a combined fault schedule on a 3-actor
# serial run: actor 1 panics at startup, actor 2 freezes (stall), actor 0
# is slowed on every reply, and checkpoint save 1 hits a full disk (all
# its retries fail, so it degrades to a counted drop — never the final
# save, which must survive for the byte comparison). The supervisor must
# respawn both failed actors and the run must end indistinguishable from
# its fault-free twin: zero-tolerance telemetry diff (only the fault-local
# actor/, supervisor/, checkpoint/ namespaces excluded), byte-identical
# figure CSVs, and a byte-identical final checkpoint.
CHAOS=$(mktemp -d /tmp/hero-chaos.XXXXXX)
CHAOS_PLAN='panic@actor:1,stall@actor:2,slow@actor:0:2,disk-full@save:1'
CHAOS_FLAGS=(--episodes 6 --eval-episodes 1 --skill-episodes 2 --batch-size 8
             --update-every 1 --seed 7 --actors 3 --checkpoint-every 2
             --stall-timeout-ms 2000 --respawn-backoff-ms 0)
# One shared skill bootstrap, as in the other lanes.
./target/release/fig10_opponent_loss "${CHAOS_FLAGS[@]}" \
    --out "$CHAOS/shared" --telemetry-out "$CHAOS/tel-warm" \
    --checkpoint-dir "$CHAOS/ckpt-warm" >/dev/null

# Fault-free twin, then the chaos run (telemetry installed for the diff).
./target/release/fig10_opponent_loss "${CHAOS_FLAGS[@]}" \
    --out "$CHAOS/shared" --telemetry-out "$CHAOS/tel-clean" \
    --checkpoint-dir "$CHAOS/ckpt-clean-tel" >/dev/null
cp "$CHAOS/shared/fig10_opponent_loss.csv" "$CHAOS/fig10_clean.csv"
./target/release/fig10_opponent_loss "${CHAOS_FLAGS[@]}" \
    --out "$CHAOS/shared" --telemetry-out "$CHAOS/tel-chaos" \
    --checkpoint-dir "$CHAOS/ckpt-chaos-tel" \
    --fault-plan "$CHAOS_PLAN" >/dev/null

# The faults must actually have fired and been healed.
grep -q '^actor/panicked,1,' "$CHAOS/tel-chaos/counters.csv" \
    || { echo "expected actor/panicked=1"; cat "$CHAOS/tel-chaos/counters.csv"; exit 1; }
respawned=$(awk -F, '$1 == "actor/respawned" { print $2 }' "$CHAOS/tel-chaos/counters.csv")
test "${respawned:-0}" -ge 2 \
    || { echo "expected actor/respawned >= 2, got ${respawned:-0}"; \
         cat "$CHAOS/tel-chaos/counters.csv"; exit 1; }
grep -q '^checkpoint/dropped,1,' "$CHAOS/tel-chaos/counters.csv" \
    || { echo "expected checkpoint/dropped=1 from disk-full@save:1"; \
         cat "$CHAOS/tel-chaos/counters.csv"; exit 1; }

# Zero-tolerance diff: faults may touch nothing outside their own
# bookkeeping namespaces. CSVs must be byte-identical.
./target/release/hero-inspect diff "$CHAOS/tel-clean" "$CHAOS/tel-chaos" \
    --tol-value 0 --tol-count 0 --tol-counter 0 --abs-floor 0 \
    --ignore actor/ --ignore supervisor/ --ignore checkpoint/ --ignore live/ \
    --fail-on-regression
cmp "$CHAOS/fig10_clean.csv" "$CHAOS/shared/fig10_opponent_loss.csv"
# Doctor surfaces the healed actor faults as warnings; the one critical
# it must raise (hence exit 1) is the disk-full-induced checkpoint drop —
# a dropped snapshot is a real pathology even when injected.
doctor_rc=0
doctor_out=$(./target/release/hero-inspect doctor "$CHAOS/tel-chaos") || doctor_rc=$?
test "$doctor_rc" -eq 1 \
    || { echo "doctor must exit 1 on the dropped checkpoint (got $doctor_rc)"; \
         echo "$doctor_out"; exit 1; }
grep -q 'WARN  actor/respawned' <<<"$doctor_out" \
    || { echo "doctor must flag the respawns"; echo "$doctor_out"; exit 1; }
test "$(grep -c '^CRIT' <<<"$doctor_out")" -eq 1 \
    && grep -q 'CRIT  checkpoint/dropped' <<<"$doctor_out" \
    || { echo "the only critical must be the injected checkpoint drop"; \
         echo "$doctor_out"; exit 1; }

# Byte-identical final checkpoint: rerun both without telemetry (an
# active sink embeds wall-clock histograms in the checkpoint's telemetry
# section, so only sink-free checkpoint files are comparable).
./target/release/fig10_opponent_loss "${CHAOS_FLAGS[@]}" \
    --out "$CHAOS/shared" --checkpoint-dir "$CHAOS/ckpt-clean" >/dev/null
./target/release/fig10_opponent_loss "${CHAOS_FLAGS[@]}" \
    --out "$CHAOS/shared" --checkpoint-dir "$CHAOS/ckpt-chaos" \
    --fault-plan "$CHAOS_PLAN" >/dev/null
newest_clean=$(ls "$CHAOS/ckpt-clean/HERO"/ckpt-*.hero | sort | tail -n 1)
newest_chaos=$(ls "$CHAOS/ckpt-chaos/HERO"/ckpt-*.hero | sort | tail -n 1)
test "$(basename "$newest_clean")" = "$(basename "$newest_chaos")" \
    || { echo "final checkpoint index differs: $newest_clean vs $newest_chaos"; exit 1; }
cmp "$newest_clean" "$newest_chaos" \
    || { echo "chaos-run final checkpoint differs from the fault-free twin"; exit 1; }
rm -rf "$CHAOS"

echo "=== serving lane (hero-serve + hero-load)"
# End-to-end policy serving against a real trainer checkpoint: a short
# seeded run writes a registry, hero-serve loads the newest checkpoint on
# an ephemeral port, a hero-load burst must complete every request, one
# hot-reload must succeed under the same registry, and shutdown must be
# clean. Then the serving benchmark's quick pass validates its JSON
# contract into a scratch dir (no tracked files or history touched).
SERVE=$(mktemp -d /tmp/hero-serve.XXXXXX)
./target/release/fig10_opponent_loss \
    --episodes 2 --eval-episodes 1 --skill-episodes 2 --batch-size 8 \
    --update-every 1 --seed 7 --checkpoint-every 1 \
    --out "$SERVE/exp" --checkpoint-dir "$SERVE/ckpt" >/dev/null
./target/release/hero-serve \
    --checkpoint-dir "$SERVE/ckpt/HERO" --addr 127.0.0.1:0 \
    --out "$SERVE/daemon" >"$SERVE/daemon.log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 100); do
    [ -s "$SERVE/daemon/serve_addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$SERVE/daemon.log"; exit 1; }
    sleep 0.1
done
SERVE_ADDR=$(cat "$SERVE/daemon/serve_addr")
./target/release/hero-load \
    --addr "$SERVE_ADDR" --rate 400 --requests 120 --concurrency 8 \
    >"$SERVE/load.json"
python3 - "$SERVE/load.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    load = json.load(f)
assert load["completed"] > 0, f"serve lane completed no requests: {load}"
assert load["errors"] == 0, f"serve lane saw request errors: {load}"
print(f"  {load['completed']} requests @ {load['rps']} req/s, "
      f"p99 {load['p99_us']}us, mean batch {load['mean_batch']}")
EOF
reload_status=$(curl -s -o "$SERVE/reload.json" -w '%{http_code}' \
    -X POST "http://$SERVE_ADDR/reload")
test "$reload_status" = 200 \
    || { echo "POST /reload returned $reload_status"; cat "$SERVE/reload.json"; exit 1; }
curl -sf -X POST "http://$SERVE_ADDR/shutdown" >/dev/null
wait "$serve_pid"
# Quick benchmark pass: the emitted JSON must carry every field
# bench_serve.sh promises (written to the scratch dir, so the tracked
# BENCH_serve_latency.json and BENCH_history.jsonl stay untouched).
scripts/bench_serve.sh --quick --out "$SERVE" >/dev/null
python3 - "$SERVE/BENCH_serve_latency.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    bench = json.load(f)
required = [
    "requests_per_s", "p50_us", "p95_us", "p99_us",
    "batch_occupancy", "max_batch_rows",
    "single_requests_per_s", "single_p99_us", "batched_vs_single_speedup",
]
missing = [k for k in required if k not in bench]
assert not missing, f"BENCH_serve_latency.json missing {missing}"
bad = [k for k in required if not (isinstance(bench[k], (int, float)) and bench[k] > 0)]
assert not bad, f"non-positive serve bench fields: {bad}"
assert bench.get("bench") == "serve_latency", bench.get("bench")
assert bench.get("kernel_mode") == "fast", bench.get("kernel_mode")
print(f"  {bench['requests_per_s']} req/s batched vs "
      f"{bench['single_requests_per_s']} single "
      f"({round(bench['batched_vs_single_speedup'], 2)}x), "
      f"occupancy {bench['batch_occupancy']} rows/pass")
EOF
rm -rf "$SERVE"

echo "=== fast-math lane"
# The opt-in GEMM tier: packed FMA kernels behind --features fast-math.
# This lane runs LAST because it rebuilds target/release binaries with
# the feature on (the default dispatch is still strict, so the rebuilt
# binaries behave identically unless --kernel-mode fast is passed).
#
# 1. The kernel property suite: fast kernels vs an f64-accumulated
#    reference over ragged shapes, and bit-identical reruns at 1/2/4
#    GEMM threads.
cargo test -q --release -p hero-autograd --features fast-math \
    --test fastmath_kernel_props
# 2. Checkpoint mode hygiene: a checkpoint written under one kernel mode
#    refuses to resume under the other (both directions with the feature).
cargo test -q --release -p hero-core --features fast-math \
    --test kernel_mode_mismatch
# 3. Seeded fast-math smoke, gated against the fast golden with relative
#    tolerance: fast runs are reproducible but only ULP-close to their
#    golden when the host ISA (kernel instantiation) differs, so float
#    statistics get rtol 0.4 while event counts stay exact
#    (--rtol-prefix counter/:0).
cargo build --release -q -p hero-bench --features fast-math \
    --bin fig10_opponent_loss
FAST=$(mktemp -d /tmp/hero-fast.XXXXXX)
./target/release/fig10_opponent_loss \
    --episodes 6 --eval-episodes 1 --skill-episodes 2 --batch-size 8 \
    --update-every 1 --seed 7 --kernel-mode fast --out "$FAST/exp" \
    --telemetry-out "$FAST/tel" >/dev/null
./target/release/hero-inspect diff \
    tests/golden/diag_baseline_fast.jsonl "$FAST/tel" \
    --rtol 0.4 --atol 1e-3 --rtol-prefix counter/:0 --fail-on-regression
# The fast run must identify itself in telemetry.
grep -q '^kernel/fast_math,1,' "$FAST/tel/counters.csv" \
    || { echo "fast run did not record kernel/fast_math"; \
         cat "$FAST/tel/counters.csv"; exit 1; }
rm -rf "$FAST"

echo "=== CI passed"

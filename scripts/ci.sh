#!/usr/bin/env bash
# Tier-1 gate, telemetry smoke test, and the learning-dynamics golden
# diff. Run from anywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== tier-1: cargo build --release"
cargo build --release

echo "=== tier-1: cargo test -q"
cargo test -q

echo "=== workspace tests"
cargo test --workspace -q

echo "=== telemetry smoke"
scripts/smoke_telemetry.sh

echo "=== learning-dynamics golden diff"
# Rerun the seeded diagnostics experiment into a FRESH output directory
# (so the skill library retrains instead of loading a checkpoint, which
# would change the telemetry) and gate against the committed baseline.
# Only seed-deterministic statistics are compared; see DESIGN.md.
cargo build --release -q -p hero-bench --bin fig10_opponent_loss -p hero-inspect
DIAG=$(mktemp -d /tmp/hero-diag.XXXXXX)
./target/release/fig10_opponent_loss \
    --episodes 6 --eval-episodes 1 --skill-episodes 2 --batch-size 8 \
    --update-every 1 --seed 7 --out "$DIAG/exp" \
    --telemetry-out "$DIAG/tel" >/dev/null
./target/release/hero-inspect diff \
    tests/golden/diag_baseline.jsonl "$DIAG/tel" --fail-on-regression
./target/release/hero-inspect doctor "$DIAG/tel"

echo "=== CI passed"

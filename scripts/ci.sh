#!/usr/bin/env bash
# Tier-1 gate plus the telemetry smoke test. Run from anywhere.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "=== tier-1: cargo build --release"
cargo build --release

echo "=== tier-1: cargo test -q"
cargo test -q

echo "=== workspace tests"
cargo test --workspace -q

echo "=== telemetry smoke"
scripts/smoke_telemetry.sh

echo "=== CI passed"

#!/usr/bin/env python3
"""Fill EXPERIMENTS.md placeholders from target/experiments logs."""
import re
import sys
from pathlib import Path

root = Path(__file__).resolve().parents[1]
exp = root / "target" / "experiments"
md_path = root / "EXPERIMENTS.md"
md = md_path.read_text()


def rows_from(log_name, labels):
    path = exp / log_name
    if not path.exists():
        return None
    rows = []
    for line in path.read_text().splitlines():
        m = re.match(
            r"(\S+)\s+collision_rate=([\d.]+)\s+success_rate=([\d.]+)\s+"
            r"mean_speed=([\d.]+)\s+mean_reward=([-\d.]+)",
            line,
        )
        if m and (labels is None or m.group(1) in labels):
            rows.append(m.groups())
    return rows or None


def table(rows, header="| Method | Collision | Success | Mean speed | Mean reward |"):
    out = [header, "|" + "---|" * (header.count("|") - 1)]
    for name, col, suc, spd, rew in rows:
        out.append(f"| {name} | {col} | {suc} | {spd} | {rew} |")
    return "\n".join(out)


# Fig. 7: parse the summary block.
fig7 = exp / "log_fig7.txt"
if fig7.exists():
    rows = []
    for line in fig7.read_text().splitlines():
        m = re.match(r"(HERO|DQN|COMA|MADDPG|MAAC)\s+([-\d.]+|NaN)\s+([-\d.]+|NaN)\s+([-\d.]+|NaN)", line)
        if m:
            rows.append(m.groups())
    if rows:
        t = ["| Method | Final reward | Final collision rate | Final success rate |",
             "|---|---|---|---|"]
        for name, rew, col, suc in rows:
            t.append(f"| {name} | {rew} | {col} | {suc} |")
        md = md.replace("<!-- FIG7_TABLE -->", "\n".join(t))

# Fig. 10: parse first/last loss lines.
fig10 = exp / "log_fig10.txt"
if fig10.exists():
    rows = []
    for line in fig10.read_text().splitlines():
        m = re.match(r"(vehicle\d)\s+first-50 mean loss\s+([\d.]+)\s+last-50 mean loss\s+([\d.]+)", line)
        if m:
            rows.append(m.groups())
    if rows:
        t = ["| Opponent model | First-50 NLL | Last-50 NLL |", "|---|---|---|"]
        for name, first, last in rows:
            t.append(f"| {name} | {first} | {last} |")
        md = md.replace("<!-- FIG10_TABLE -->", "\n".join(t))

# Fig. 11 + Table II share the eval-row format.
r11 = rows_from("log_fig11.txt", {"HERO", "DQN", "COMA", "MADDPG", "MAAC"})
if r11:
    md = md.replace("<!-- FIG11_TABLE -->", table(r11))
r2 = rows_from("log_table2.txt", {"HERO", "DQN", "COMA", "MADDPG", "MAAC"})
if r2:
    md = md.replace("<!-- TABLE2_TABLE -->", table(r2))

# Ablations.
abl_parts = []
for log, title in [
    ("log_abl_opponent.txt", "Opponent model on/off"),
    ("log_abl_termination.txt", "Asynchronous vs synchronous termination"),
    ("log_abl_hierarchy.txt", "Hierarchy vs flat end-to-end SAC"),
]:
    rows = rows_from(log, None)
    if rows:
        abl_parts.append(f"**{title}** (greedy evaluation)\n\n" + table(rows))
if abl_parts:
    md = md.replace("<!-- ABLATION_TABLES -->", "\n\n".join(abl_parts))

md_path.write_text(md)
left = md.count("<!--")
print(f"EXPERIMENTS.md updated; {left} placeholders remaining")
sys.exit(0)

#!/usr/bin/env bash
# Smoke test: every experiment binary must run at a tiny budget with
# --telemetry-out/--trace-out and emit non-empty telemetry artifacts,
# including a Chrome trace and (for the skill-bootstrapping first run)
# per-layer gradient diagnostics.
#
# Usage: scripts/smoke_telemetry.sh [workdir]
# Exits non-zero on the first binary that fails or emits no telemetry.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d /tmp/hero-smoke.XXXXXX)}"
OUT="$WORK/experiments" # shared so the skill checkpoint is trained once
BINS=(
    fig7_learning_curves
    fig8_lowlevel_skills
    fig10_opponent_loss
    fig11_mean_speed
    table1_hyperparams
    table2_realworld
    ablation_opponent_model
    ablation_hierarchy
    ablation_termination
    diag_hero
)

cargo build --release -p hero-bench --bins

first=1
for bin in "${BINS[@]}"; do
    tel="$WORK/telemetry/$bin"
    echo "== smoke: $bin"
    cargo run --release -q -p hero-bench --bin "$bin" -- \
        --episodes 2 --eval-episodes 1 --skill-episodes 2 --batch-size 8 \
        --seed 7 --out "$OUT" --telemetry-out "$tel" \
        --trace-out "$tel/trace.json" >/dev/null
    for artifact in telemetry.jsonl counters.csv spans.csv BENCH_telemetry.json trace.json; do
        if [ ! -s "$tel/$artifact" ]; then
            echo "FAIL: $bin produced empty or missing $tel/$artifact" >&2
            exit 1
        fi
    done
    # Any run that timed spans must have matching begin events in the
    # trace (table1_hyperparams runs no spans — just prints a table).
    if grep -q '"type":"span"' "$tel/telemetry.jsonl" \
        && ! grep -q '"ph":"B"' "$tel/trace.json"; then
        echo "FAIL: $bin trace.json has no begin events" >&2
        exit 1
    fi
    # The first binary trains the shared skill checkpoint, so its run must
    # contain per-layer gradient diagnostics from the SAC optimizers.
    if [ "$first" = 1 ] && ! grep -q '"name":"grad_norm/' "$tel/telemetry.jsonl"; then
        echo "FAIL: $bin emitted no per-layer gradient diagnostics" >&2
        exit 1
    fi
    first=0
    lines=$(wc -l <"$tel/telemetry.jsonl")
    echo "   ok: $lines telemetry records"
done

echo "telemetry smoke test passed for ${#BINS[@]} binaries (artifacts in $WORK)"

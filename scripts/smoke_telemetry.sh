#!/usr/bin/env bash
# Smoke test: every experiment binary must run at a tiny budget with
# --telemetry-out and emit non-empty telemetry artifacts.
#
# Usage: scripts/smoke_telemetry.sh [workdir]
# Exits non-zero on the first binary that fails or emits no telemetry.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK="${1:-$(mktemp -d /tmp/hero-smoke.XXXXXX)}"
OUT="$WORK/experiments" # shared so the skill checkpoint is trained once
BINS=(
    fig7_learning_curves
    fig8_lowlevel_skills
    fig10_opponent_loss
    fig11_mean_speed
    table1_hyperparams
    table2_realworld
    ablation_opponent_model
    ablation_hierarchy
    ablation_termination
    diag_hero
)

cargo build --release -p hero-bench --bins

for bin in "${BINS[@]}"; do
    tel="$WORK/telemetry/$bin"
    echo "== smoke: $bin"
    cargo run --release -q -p hero-bench --bin "$bin" -- \
        --episodes 2 --eval-episodes 1 --skill-episodes 2 \
        --seed 7 --out "$OUT" --telemetry-out "$tel" >/dev/null
    for artifact in telemetry.jsonl counters.csv spans.csv BENCH_telemetry.json; do
        if [ ! -s "$tel/$artifact" ]; then
            echo "FAIL: $bin produced empty or missing $tel/$artifact" >&2
            exit 1
        fi
    done
    lines=$(wc -l <"$tel/telemetry.jsonl")
    echo "   ok: $lines telemetry records"
done

echo "telemetry smoke test passed for ${#BINS[@]} binaries (artifacts in $WORK)"

#!/usr/bin/env bash
# Training-throughput benchmark. Runs the criterion microbenches (naive vs
# register-tiled matmul kernels, strict vs fast-math GEMM tiers with the
# 1/2/4-thread scaling curve, naive vs arena-reusing train step) plus a
# short end-to-end fig7-style training run, and writes the summary JSON to
# BENCH_train_throughput.json at the repo root. Each run also appends one
# line to BENCH_history.jsonl ({"sha","date","isa","threads","bench"}) so
# throughput can be tracked across commits and machines.
#
# Usage: scripts/bench.sh [--quick]
#   --quick   shorter warm-up/measurement windows (what CI runs)
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$(pwd)

# cargo runs the bench binary from the package directory, so the output
# path must be absolute to land at the repo root.
export HERO_BENCH_OUT="$ROOT/BENCH_train_throughput.json"

# Built with fast-math so the kernel-tier comparison measures both GEMM
# tiers; the strict numbers are unaffected (the feature only *adds* the
# opt-in fast path — the default dispatch stays the strict kernel).
cargo bench -p hero-bench --features fast-math --bench train_throughput -- "$@"

echo "--- $HERO_BENCH_OUT"
cat "$HERO_BENCH_OUT"

# Append this run to the throughput history, stamped with the commit and
# an ISO-8601 UTC date, so regressions are traceable across commits.
SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)
python3 - "$SHA" "$DATE" "$HERO_BENCH_OUT" <<'EOF'
import json, sys
sha, date, path = sys.argv[1:4]
with open(path) as f:
    bench = json.load(f)
entry = {
    "sha": sha,
    "date": date,
    # Denormalized from the bench payload: which ISA tier the kernels
    # dispatched to and how many GEMM threads produced the best fast
    # number, so history rows are comparable across machines at a glance.
    "isa": bench.get("isa", "unknown"),
    "threads": int(bench.get("gemm_threads", 1)),
    "bench": bench,
}
with open("BENCH_history.jsonl", "a") as f:
    f.write(json.dumps(entry, sort_keys=True) + "\n")
EOF
echo "--- appended $SHA @ $DATE to BENCH_history.jsonl"

#!/usr/bin/env bash
# Training-throughput benchmark. Runs the criterion microbenches (naive vs
# register-tiled matmul kernels, naive vs arena-reusing train step) plus a
# short end-to-end fig7-style training run, and writes the summary JSON to
# BENCH_train_throughput.json at the repo root.
#
# Usage: scripts/bench.sh [--quick]
#   --quick   shorter warm-up/measurement windows (what CI runs)
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$(pwd)

# cargo runs the bench binary from the package directory, so the output
# path must be absolute to land at the repo root.
export HERO_BENCH_OUT="$ROOT/BENCH_train_throughput.json"

cargo bench -p hero-bench --bench train_throughput -- "$@"

echo "--- $HERO_BENCH_OUT"
cat "$HERO_BENCH_OUT"

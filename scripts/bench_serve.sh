#!/usr/bin/env bash
# Serving-latency benchmark. Starts hero-serve against a synthetic
# compute-heavy policy with micro-batching disabled (--max-batch 1, the
# request-at-a-time baseline) and enabled, drives both with the same
# open-loop hero-load offered rate, and writes the summary JSON
# (requests/s, p50/p95/p99 latency, batch occupancy, and the
# batched-vs-single speedup at equal offered load) to
# BENCH_serve_latency.json at the repo root. Each tracked run appends one
# line to BENCH_history.jsonl ({"sha","date","isa","threads","bench"}) so
# serving latency is a tracked trajectory like training throughput.
#
# The headline passes serve the fast-math GEMM tier (the serving
# configuration this benchmark exists to track): the fast kernels pack
# operand panels per forward call, so a --max-batch 1 daemon re-packs the
# weight matrices for every single request while a batched wave amortizes
# the pack across its rows — micro-batching is worth the most exactly
# where the kernels are fastest. A strict-tier pair is measured alongside
# (skipped under --quick) so both kernel modes stay tracked.
#
# Usage: scripts/bench_serve.sh [--quick] [--out DIR]
#   --quick     fewer requests, fast-tier passes only (what CI runs)
#   --out DIR   write BENCH_serve_latency.json into DIR instead of the
#               repo root (CI validates fields without touching the
#               tracked file or BENCH_history.jsonl)
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT=$(pwd)

QUICK=0
OUT_DIR="$ROOT"
while [ $# -gt 0 ]; do
  case "$1" in
    --quick) QUICK=1; shift ;;
    --out) OUT_DIR="$2"; shift 2 ;;
    *) echo "bench_serve.sh: unknown flag $1" >&2; exit 2 ;;
  esac
done

# A policy big enough that the forward pass dominates HTTP overhead even
# on a small box: batching then amortizes real compute (and, in the fast
# tier, the per-call panel packing), not just request parsing.
SYNTH="256x1024x2"
MAX_BATCH=32
if [ "$QUICK" = 1 ]; then
  RATE=2000; REQUESTS=400; CONCURRENCY=24
else
  RATE=2000; REQUESTS=1200; CONCURRENCY=24
fi

cargo build --release -q -p hero-serve --features fast-math

WORK=$(mktemp -d)
SERVE_PID=""
trap '[ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

# One serving pass: $1 = kernel mode, $2 = max-batch, $3 = result tag.
# Echoes the hero-load summary line and leaves the /stats scrape in
# $WORK/$tag.stats.
run_pass() {
  local mode="$1" max_batch="$2" tag="$3"
  ./target/release/hero-serve \
    --synthetic "$SYNTH" --addr 127.0.0.1:0 --kernel-mode "$mode" \
    --max-batch "$max_batch" --batch-deadline-us 2000 \
    --out "$WORK/$tag" >"$WORK/$tag.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 100); do
    [ -s "$WORK/$tag/serve_addr" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/$tag.log" >&2; exit 1; }
    sleep 0.1
  done
  local addr
  addr=$(cat "$WORK/$tag/serve_addr")
  ./target/release/hero-load \
    --addr "$addr" --rate "$RATE" --requests "$REQUESTS" \
    --concurrency "$CONCURRENCY" >"$WORK/$tag.load" 2>"$WORK/$tag.load.err"
  curl -sf "http://$addr/stats" >"$WORK/$tag.stats"
  curl -sf -X POST "http://$addr/shutdown" >/dev/null
  wait "$SERVE_PID" 2>/dev/null || true
  SERVE_PID=""
  cat "$WORK/$tag.load"
}

echo "--- fast single (max-batch 1, offered ${RATE}/s x ${REQUESTS})"
run_pass fast 1 fast_single
echo "--- fast batched (max-batch ${MAX_BATCH}, offered ${RATE}/s x ${REQUESTS})"
run_pass fast "$MAX_BATCH" fast_batched
if [ "$QUICK" = 0 ]; then
  echo "--- strict single (max-batch 1, offered ${RATE}/s x ${REQUESTS})"
  run_pass strict 1 strict_single
  echo "--- strict batched (max-batch ${MAX_BATCH}, offered ${RATE}/s x ${REQUESTS})"
  run_pass strict "$MAX_BATCH" strict_batched
fi

SHA=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
DATE=$(date -u +%Y-%m-%dT%H:%M:%SZ)
ISA=$(grep -o '"isa": *"[^"]*"' BENCH_train_throughput.json 2>/dev/null \
      | head -1 | sed 's/.*: *"//; s/"//' || true)
OUT_JSON="$OUT_DIR/BENCH_serve_latency.json"

# History only tracks the real benchmark at the repo root; a CI --out run
# validates the pipeline without polluting the commit-to-commit record.
TRACK_HISTORY=0
[ "$OUT_DIR" = "$ROOT" ] && TRACK_HISTORY=1

python3 - "$WORK" "$SHA" "$DATE" "${ISA:-unknown}" "$SYNTH" "$RATE" "$REQUESTS" \
  "$MAX_BATCH" "$OUT_JSON" "$TRACK_HISTORY" <<'EOF'
import json, os, sys
(work, sha, date, isa, synth, rate, requests,
 max_batch, out_path, track) = sys.argv[1:11]

def load(tag):
    with open(f"{work}/{tag}.load") as f:
        summary = json.load(f)
    with open(f"{work}/{tag}.stats") as f:
        stats = json.load(f)
    if summary["completed"] == 0:
        sys.exit(f"bench_serve: {tag} pass completed no requests")
    return summary, stats

single, _ = load("fast_single")
batched, batched_stats = load("fast_batched")

bench = {
    "bench": "serve_latency",
    "isa": isa,
    "kernel_mode": "fast",
    "synthetic": synth,
    "offered_rate": float(rate),
    "requests": int(requests),
    "max_batch": int(max_batch),
    # Headline numbers: the batched fast-tier daemon at the shared
    # offered load (latency includes queueing at that load — open-loop,
    # no coordinated omission).
    "requests_per_s": batched["rps"],
    "p50_us": batched["p50_us"],
    "p95_us": batched["p95_us"],
    "p99_us": batched["p99_us"],
    "batch_occupancy": batched_stats["mean_occupancy"],
    "max_batch_rows": batched_stats["max_batch_rows"],
    # The --max-batch 1 baseline and the speedup over it.
    "single_requests_per_s": single["rps"],
    "single_p99_us": single["p99_us"],
    "batched_vs_single_speedup": batched["rps"] / single["rps"],
}
if os.path.exists(f"{work}/strict_single.load"):
    s_single, _ = load("strict_single")
    s_batched, s_stats = load("strict_batched")
    bench.update({
        "strict_requests_per_s": s_batched["rps"],
        "strict_p99_us": s_batched["p99_us"],
        "strict_batch_occupancy": s_stats["mean_occupancy"],
        "strict_single_requests_per_s": s_single["rps"],
        "strict_batched_vs_single_speedup": s_batched["rps"] / s_single["rps"],
    })
with open(out_path, "w") as f:
    json.dump(bench, f, indent=1, sort_keys=True)
    f.write("\n")
print(f"--- {out_path}")
print(json.dumps(bench, indent=1, sort_keys=True))
if track == "1":
    entry = {"sha": sha, "date": date, "isa": isa, "threads": 1, "bench": bench}
    with open("BENCH_history.jsonl", "a") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"--- appended {sha} @ {date} to BENCH_history.jsonl")
EOF

//! Cross-crate property tests: whatever commands an agent issues, the
//! world and the option machinery must keep their invariants.

use hero::core::{ActiveOption, HeroConfig};
use hero::sim::{
    DrivingOption, EnvConfig, LaneChangeEnv, Track, VehicleCommand, VehicleRole, VehicleSpawn,
    VehicleState,
};
use proptest::prelude::*;

fn spawns() -> Vec<VehicleSpawn> {
    vec![
        VehicleSpawn {
            lane: 0,
            random_lane: false,
            s: 0.0,
            s_jitter: 0.0,
            speed: 0.1,
            role: VehicleRole::Learner,
        },
        VehicleSpawn {
            lane: 1,
            random_lane: false,
            s: 2.0,
            s_jitter: 0.0,
            speed: 0.1,
            role: VehicleRole::Learner,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary command sequences keep every observation normalized and
    /// finite, and episodes always terminate within max_steps.
    fn observations_stay_normalized(cmds in prop::collection::vec(
        (0.0f32..0.3, -0.4f32..0.4), 1..24
    )) {
        let cfg = EnvConfig { max_steps: 18, ..EnvConfig::default() };
        let mut env = LaneChangeEnv::new(cfg, spawns(), 7);
        env.reset();
        let mut steps = 0;
        for (lin, ang) in cmds {
            if env.is_done() { break; }
            let out = env.step(&[
                VehicleCommand::new(lin, ang),
                VehicleCommand::new(lin, -ang),
            ]);
            steps += 1;
            prop_assert!(steps <= cfg.max_steps);
            for obs in &out.observations {
                prop_assert!(obs.lidar.iter().all(|v| (0.0..=1.0).contains(v)));
                prop_assert!(obs.image.iter().all(|v| (0.0..=1.0).contains(v)));
                prop_assert!((0.0..=1.0).contains(&obs.speed_norm));
                prop_assert!(obs.high_vec().iter().all(|v| v.is_finite()));
            }
            for r in &out.rewards {
                prop_assert!(r.is_finite());
            }
        }
    }

    /// Every option's termination condition fires within a bounded number
    /// of ticks regardless of the vehicle state it observes.
    fn option_termination_always_reachable(
        d in 0.0f32..0.8,
        heading in -0.6f32..0.6,
        option_idx in 0usize..4,
    ) {
        let track = Track::double_lane();
        let cfg = HeroConfig::default();
        let state = VehicleState { s: 0.0, d, heading, speed: 0.1 };
        let mut active = ActiveOption::start(
            DrivingOption::from_index(option_idx), &state, &track);
        let budget = cfg.in_lane_option_duration.max(cfg.lane_change_budget);
        let mut fired = false;
        for _ in 0..budget {
            active.tick();
            if active.terminated(&state, &track, &cfg) {
                fired = true;
                break;
            }
        }
        prop_assert!(fired, "termination must fire within {budget} ticks");
    }

    /// Denormalized per-option actions always land inside the paper's
    /// printed bounds, for any squashed input (even out of range).
    fn action_bounds_respected(lin in -3.0f32..3.0, ang in -3.0f32..3.0, idx in 1usize..4) {
        let option = DrivingOption::from_index(idx);
        let bounds = option.action_bounds().unwrap();
        let (l, a) = bounds.denormalize(lin, ang);
        prop_assert!(l >= bounds.linear.0 - 1e-6 && l <= bounds.linear.1 + 1e-6);
        prop_assert!(a >= bounds.angular.0 - 1e-6 && a <= bounds.angular.1 + 1e-6);
    }

    /// Track wrap-around arithmetic: signed deltas are always the shortest
    /// way around and wrapping is idempotent.
    fn track_wrapping(from in -30.0f32..30.0, to in -30.0f32..30.0) {
        let t = Track::double_lane();
        let delta = t.signed_delta(from, to);
        prop_assert!(delta.abs() <= t.length / 2.0 + 1e-4);
        let w = t.wrap(from);
        prop_assert!((0.0..t.length + 1e-6).contains(&w));
        prop_assert!((t.wrap(w) - w).abs() < 1e-5);
        // Following the delta from `from` reaches `to` (mod length).
        let reached = t.wrap(from + delta);
        prop_assert!((reached - t.wrap(to)).abs() < 1e-3
            || (reached - t.wrap(to)).abs() > t.length - 1e-3);
    }
}

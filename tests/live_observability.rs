//! The live observability plane, end to end: scraping a run's metrics
//! exporter every few milliseconds perturbs nothing deterministic, a
//! faulted run leaves a flight recorder behind with the stall story in
//! order, and `hero-inspect watch` renders from both a live exporter URL
//! and a finished telemetry directory.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hero::prelude::*;
use hero_baselines::sac::SacConfig;
use hero_core::rollout::{train_team_actor_learner, RolloutOptions};
use hero_core::trainer::CheckpointConfig;
use hero_faultplan::FaultPlan;
use hero_rl::telemetry;
use hero_rl::telemetry::exporter::{http_get, serve};
use hero_sim::scenario;

/// Same tiny HERO fixture the crash-safety tests use: fresh team + env
/// per call, so every run starts from identical state.
fn fixture(seed: u64) -> (hero_sim::env::LaneChangeEnv, hero_core::HeroTeam) {
    let cfg = EnvConfig {
        max_steps: 6,
        ..EnvConfig::default()
    };
    let skills = Arc::new(hero_core::skills::SkillLibrary::untrained(
        cfg,
        SacConfig {
            hidden: 8,
            ..SacConfig::default()
        },
        seed,
    ));
    let hero_cfg = HeroConfig {
        hidden: 8,
        batch_size: 8,
        warmup: 8,
        ..HeroConfig::default()
    };
    let env = scenario::congestion(cfg, seed);
    let team = hero_core::HeroTeam::new(3, cfg.high_dim(), skills, hero_cfg, seed);
    (env, team)
}

fn opts(episodes: usize, seed: u64) -> hero_core::trainer::TrainOptions {
    hero_core::trainer::TrainOptions {
        episodes,
        update_every: 2,
        seed,
    }
}

fn rollout_2actors() -> RolloutOptions {
    RolloutOptions {
        actors: 2,
        batch_worlds: 1,
        ..RolloutOptions::default()
    }
}

/// Deterministic telemetry: counter totals plus the order-independent
/// fields of every value histogram. Gauges and live histograms live in
/// separate snapshot maps and deliberately never enter this fingerprint —
/// they describe wall-clock process state.
type Fingerprint = (
    std::collections::BTreeMap<String, u64>,
    std::collections::BTreeMap<String, (u64, f64, f64, f64)>,
);

fn fingerprint(snap: &telemetry::Snapshot) -> Fingerprint {
    let counters = snap
        .counter_totals()
        .into_iter()
        .filter(|(name, _)| !name.starts_with("checkpoint/"))
        .collect();
    let values = snap
        .values
        .iter()
        .map(|(name, v)| (name.clone(), (v.count, v.mean, v.min, v.max)))
        .collect();
    (counters, values)
}

fn series(rec: &hero_rl::metrics::Recorder) -> Vec<(String, Vec<f32>)> {
    rec.names()
        .iter()
        .map(|&n| (n.to_string(), rec.series(n).unwrap().to_vec()))
        .collect()
}

/// Spawns a thread that scrapes `GET /metrics` in a tight loop until
/// `done` flips, asserting every response parses as Prometheus text.
/// Returns a handle yielding the number of successful scrapes.
fn spawn_scraper(
    addr: std::net::SocketAddr,
    done: Arc<AtomicBool>,
) -> std::thread::JoinHandle<usize> {
    std::thread::spawn(move || {
        let mut scrapes = 0usize;
        loop {
            let body = http_get(&format!("http://{addr}/metrics")).expect("scrape /metrics");
            hero_rl::telemetry::emit::parse_prometheus(&body)
                .unwrap_or_else(|(line, e)| panic!("malformed scrape at line {line}: {e}"));
            scrapes += 1;
            if done.load(Ordering::Relaxed) {
                return scrapes;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    })
}

/// The tentpole guarantee: a seeded 2-actor run scraped continuously over
/// HTTP produces bit-identical metric series and telemetry fingerprints
/// to the same run left unscraped — the serving path is read-only.
#[test]
fn scraped_run_is_bit_identical_to_unscraped() {
    let seed = 47;
    let episodes = 6;

    // Unscraped reference run.
    let (series_a, telem_a) = {
        let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = fixture(seed);
        let out = train_team_actor_learner(
            &mut team,
            &mut env,
            &opts(episodes, seed),
            &CheckpointConfig::default(),
            &rollout_2actors(),
        );
        let out = out.expect("fault-free run cannot lose its fleet");
        assert!(out.completed);
        (series(&out.recorder), fingerprint(&sink.snapshot()))
    };

    // Identical run, scraped as fast as the client can go (well under
    // the 100 ms cadence the exporter is specified for).
    let (series_b, telem_b, scrapes) = {
        let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let exporter = serve(Arc::clone(sink.registry()), "127.0.0.1:0").expect("bind");
        let done = Arc::new(AtomicBool::new(false));
        let scraper = spawn_scraper(exporter.local_addr(), Arc::clone(&done));
        let (mut env, mut team) = fixture(seed);
        let out = train_team_actor_learner(
            &mut team,
            &mut env,
            &opts(episodes, seed),
            &CheckpointConfig::default(),
            &rollout_2actors(),
        );
        done.store(true, Ordering::Relaxed);
        let scrapes = scraper.join().expect("scraper panicked");
        let out = out.expect("fault-free run cannot lose its fleet");
        assert!(out.completed);
        (series(&out.recorder), fingerprint(&sink.snapshot()), scrapes)
    };

    assert!(scrapes >= 1, "the run must actually have been scraped");
    assert_eq!(series_a, series_b, "metric series must be bit-identical under scraping");
    assert_eq!(telem_a.0, telem_b.0, "counter totals must be bit-identical under scraping");
    assert_eq!(telem_a.1, telem_b.1, "value statistics must be bit-identical under scraping");
}

/// Checkpoint bytes are equally untouchable: with telemetry disabled (the
/// configuration under which checkpoint files are comparable at all — an
/// active sink embeds wall-clock span histograms in the telemetry
/// section), a run sharing its process with a busy exporter writes
/// byte-identical checkpoints to an undisturbed run.
#[test]
fn checkpoint_bytes_survive_a_busy_exporter_in_process() {
    let base = std::env::temp_dir().join(format!("hero_live_ckpt_{}", std::process::id()));
    let dir_quiet = base.join("quiet");
    let dir_scraped = base.join("scraped");
    let seed = 47;
    let episodes = 6;
    let ckpt = |dir: &std::path::Path| CheckpointConfig {
        every: 2,
        dir: Some(dir.to_path_buf()),
        ..CheckpointConfig::default()
    };

    let (mut env, mut team) = fixture(seed);
    let out = train_team_actor_learner(
        &mut team,
        &mut env,
        &opts(episodes, seed),
        &ckpt(&dir_quiet),
        &rollout_2actors(),
    );
    assert!(out.expect("fault-free run cannot lose its fleet").completed);

    // Same run with an exporter being hammered in-process for its whole
    // duration (served from a detached registry: no sink is installed,
    // exactly as in the quiet run).
    {
        let registry = Arc::new(telemetry::Registry::new(telemetry::TelemetryConfig::default()));
        let exporter = serve(registry, "127.0.0.1:0").expect("bind");
        let done = Arc::new(AtomicBool::new(false));
        let scraper = spawn_scraper(exporter.local_addr(), Arc::clone(&done));
        let (mut env, mut team) = fixture(seed);
        let out = train_team_actor_learner(
            &mut team,
            &mut env,
            &opts(episodes, seed),
            &ckpt(&dir_scraped),
            &rollout_2actors(),
        );
        done.store(true, Ordering::Relaxed);
        assert!(scraper.join().expect("scraper panicked") >= 1);
        assert!(out.expect("fault-free run cannot lose its fleet").completed);
    }

    let newest = |dir: &std::path::Path| {
        let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
            .expect("checkpoint dir")
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "hero"))
            .collect();
        files.sort();
        std::fs::read(files.last().expect("a checkpoint file")).expect("read checkpoint")
    };
    assert_eq!(
        newest(&dir_quiet),
        newest(&dir_scraped),
        "checkpoint bytes must be identical with and without the exporter"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// A `stall@actor:0` faulted run must leave `flight_recorder.jsonl`
/// behind, with the stall detected on actor 0 strictly before the
/// re-dispatch that saved the run.
#[test]
fn stalled_run_dumps_flight_recorder_with_ordered_stall_story() {
    let dir = std::env::temp_dir().join(format!("hero_live_flight_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let _sink = telemetry::scoped(telemetry::TelemetryConfig {
            run_label: "stall-drill".into(),
            out_dir: Some(dir.clone()),
            ..telemetry::TelemetryConfig::default()
        });
        let (mut env, mut team) = fixture(53);
        let out = train_team_actor_learner(
            &mut team,
            &mut env,
            &opts(4, 53),
            &CheckpointConfig {
                fault_plan: FaultPlan::parse("stall@actor:0").unwrap(),
                ..CheckpointConfig::default()
            },
            &RolloutOptions {
                actors: 2,
                batch_worlds: 1,
                stall_timeout: Duration::from_millis(500),
                ..RolloutOptions::default()
            },
        );
        let out = out.expect("one live actor keeps the fleet alive");
        assert!(out.completed, "the live actor must absorb the stalled actor's work");
        // Guard drops here: the faulted run flushes its flight recorder.
    }

    let path = dir.join("flight_recorder.jsonl");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("faulted run must leave {}: {e}", path.display()));
    let records = hero_rl::telemetry::emit::parse_jsonl(&text)
        .unwrap_or_else(|(line, e)| panic!("malformed flight record at line {line}: {e}"));
    let event = |rec: &std::collections::BTreeMap<String, telemetry::emit::JsonValue>| {
        rec.get("event").and_then(telemetry::emit::JsonValue::as_str).map(str::to_owned)
    };
    let field = |rec: &std::collections::BTreeMap<String, telemetry::emit::JsonValue>,
                 key: &str| rec.get(key).and_then(telemetry::emit::JsonValue::as_f64);

    let stall = records
        .iter()
        .position(|r| event(r).as_deref() == Some("stall_detected") && field(r, "actor") == Some(0.0))
        .expect("a stall_detected event for actor 0");
    let redispatch = records
        .iter()
        .position(|r| event(r).as_deref() == Some("redispatched"))
        .expect("a redispatched event after the stall");
    assert!(
        stall < redispatch,
        "stall must be detected (record {stall}) before the re-dispatch (record {redispatch})"
    );
    // Sequence ids are strictly increasing in the dump.
    let seqs: Vec<f64> = records.iter().filter_map(|r| field(r, "seq")).collect();
    assert_eq!(seqs.len(), records.len(), "every record carries a seq");
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "seqs must increase: {seqs:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Scraping `/metrics` mid-run returns well-formed Prometheus text with
/// the live rollout gauges populated — the same check `ci.sh` smokes.
#[test]
fn metrics_endpoint_reports_live_rollout_state_during_training() {
    let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
    let exporter = serve(Arc::clone(sink.registry()), "127.0.0.1:0").expect("bind");
    let addr = exporter.local_addr();

    let (mut env, mut team) = fixture(59);
    let out = train_team_actor_learner(
        &mut team,
        &mut env,
        &opts(4, 59),
        &CheckpointConfig::default(),
        &RolloutOptions {
            actors: 2,
            batch_worlds: 2,
            ..RolloutOptions::default()
        },
    );
    assert!(out.expect("fault-free run cannot lose its fleet").completed);

    // The gauges persist in the registry after the run, so this scrape
    // sees exactly what a mid-run scrape would (minus races).
    let body = http_get(&format!("http://{addr}/metrics")).expect("scrape");
    let samples = telemetry::emit::parse_prometheus(&body).expect("well-formed");
    let gauge = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == "hero_gauge" && s.labels.get("name").map(String::as_str) == Some(name))
            .map(|s| s.value)
    };
    assert_eq!(gauge("live/actors_total"), Some(2.0), "{body}");
    assert!(samples.iter().any(|s| s.name == "hero_up" && s.value == 1.0));
    assert!(
        samples.iter().any(|s| {
            s.name == "hero_counter_total"
                && s.labels.get("name").map(String::as_str) == Some("env_steps")
                && s.value > 0.0
        }),
        "env_steps must be visible over HTTP"
    );
    assert!(
        samples.iter().any(|s| s.name == "hero_live"
            && s.labels.get("name").is_some_and(|n| n.starts_with("live/wave_us"))),
        "wave latency summary must be exported"
    );
}

/// `hero-inspect watch` ("hero-top") renders the same run from a live
/// exporter URL and from the finished telemetry directory.
#[test]
fn hero_top_renders_from_live_url_and_finished_dir() {
    let dir = std::env::temp_dir().join(format!("hero_live_watch_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let live_frame = {
        let sink = telemetry::scoped(telemetry::TelemetryConfig {
            run_label: "watch-me".into(),
            out_dir: Some(dir.clone()),
            ..telemetry::TelemetryConfig::default()
        });
        let exporter = serve(Arc::clone(sink.registry()), "127.0.0.1:0").expect("bind");
        let (mut env, mut team) = fixture(61);
        let out = train_team_actor_learner(
            &mut team,
            &mut env,
            &opts(4, 61),
            &CheckpointConfig::default(),
            &rollout_2actors(),
        );
        assert!(out.expect("fault-free run cannot lose its fleet").completed);
        // Live path: scrape /snapshot (the bare-address default) and
        // render, exactly as `hero-inspect watch HOST:PORT` does.
        let body = http_get(&exporter.local_addr().to_string()).expect("scrape snapshot");
        let run = hero_inspect::parse_run(&body).expect("parse live snapshot");
        hero_inspect::render_top(&run)
        // Guard drops here, flushing telemetry.jsonl for the dir path.
    };
    for needle in ["hero-top", "watch-me", "busy", "actor0", "actor1"] {
        assert!(live_frame.contains(needle), "missing {needle:?} in live frame:\n{live_frame}");
    }

    let run = hero_inspect::load_run(&dir).expect("load finished run");
    let dir_frame = hero_inspect::render_top(&run);
    for needle in ["hero-top", "watch-me", "busy", "wave dispatch->complete"] {
        assert!(dir_frame.contains(needle), "missing {needle:?} in dir frame:\n{dir_frame}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

//! The reproduction's default hyper-parameters must equal the paper's
//! Table I, and the case-study constants must match Sec. IV.

use hero::core::HeroConfig;
use hero::sim::skill_env::{LANE_CHANGE_FAIL_PENALTY, LANE_CHANGE_SUCCESS_REWARD};
use hero::sim::{DrivingOption, EnvConfig};

#[test]
fn table_one_defaults() {
    let c = HeroConfig::default();
    assert_eq!(c.training_episodes, 14_000, "Training episode");
    assert_eq!(c.episode_length, 30, "Episode length");
    assert_eq!(c.buffer_capacity, 100_000, "Buffer capacity");
    assert_eq!(c.batch_size, 1024, "Batch size");
    assert_eq!(c.lr, 0.01, "Learning rate");
    assert_eq!(c.gamma, 0.95, "Discount factor");
    assert_eq!(c.hidden, 32, "Hidden dimension");
    assert_eq!(c.tau, 0.01, "Target network update rate");
}

#[test]
fn option_space_matches_section_four() {
    // A_h = [keep lane, slow down, accelerate, lane change]
    assert_eq!(DrivingOption::COUNT, 4);
    let names: Vec<String> = DrivingOption::ALL.iter().map(|o| o.to_string()).collect();
    assert_eq!(names, vec!["keep-lane", "slow-down", "accelerate", "lane-change"]);
}

#[test]
fn action_bounds_match_section_four() {
    let slow = DrivingOption::SlowDown.action_bounds().unwrap();
    assert_eq!(slow.linear, (0.04, 0.08), "slow down linear 0.04:0.08");
    assert_eq!(slow.angular, (-0.1, 0.1), "slow down angular -0.1:0.1");
    let acc = DrivingOption::Accelerate.action_bounds().unwrap();
    assert_eq!(acc.linear, (0.08, 0.14), "accelerate linear 0.08:0.14");
    assert_eq!(acc.angular, (-0.1, 0.1), "accelerate angular -0.1:0.1");
    let lc = DrivingOption::LaneChange.action_bounds().unwrap();
    assert_eq!(lc.linear, (0.1, 0.2), "lane change linear 0.1:0.2");
    assert_eq!(lc.angular, (0.12, 0.25), "lane change angular 0.12:0.25");
}

#[test]
fn rewards_match_section_four() {
    assert_eq!(LANE_CHANGE_SUCCESS_REWARD, 20.0);
    assert_eq!(LANE_CHANGE_FAIL_PENALTY, -20.0);
    let env = EnvConfig::default();
    assert_eq!(env.collision_penalty, -20.0, "collision penalty (Sec. V-D)");
    assert_eq!(env.max_steps, 18, "evaluation episode length (Sec. V-B)");
    assert_eq!(env.track.num_lanes, 2, "double-lane track");
}

#[test]
fn high_and_low_state_layout() {
    // s_h = [lidar, speed, laneID]; s_l = [image, speed, laneID].
    let env = EnvConfig::default();
    assert_eq!(env.high_dim(), env.lidar.beams + 2);
    assert_eq!(env.low_dim(), env.camera.image_len() + 2);
}

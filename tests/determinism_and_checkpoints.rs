//! Reproducibility guarantees: identical seeds give identical learning
//! curves, and checkpoints restore byte-identical policies.

use hero::prelude::*;
use hero_autograd::serialize::{load_params, save_params};
use hero_baselines::dqn::{DqnAgent, DqnConfig};
use hero_baselines::sac::SacConfig;
use hero_bench::{build_method, train_policy, Method, MethodParams};
use hero_sim::scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dqn_training_is_deterministic_under_seed() {
    let cfg = EnvConfig {
        max_steps: 6,
        ..EnvConfig::default()
    };
    let run = || {
        let mut env = scenario::two_vehicle_merge(cfg, 17);
        let mut policy = build_method(
            Method::Dqn,
            MethodParams {
                n_agents: 2,
                obs_dim: cfg.high_dim(),
                batch_size: 8,
                seed: 17,
            },
            None,
        );
        let rec = train_policy(&mut policy, &mut env, 4, 2, 17);
        rec.series("reward").unwrap().to_vec()
    };
    assert_eq!(run(), run());
}

#[test]
fn hero_training_is_deterministic_under_seed() {
    let cfg = EnvConfig {
        max_steps: 6,
        ..EnvConfig::default()
    };
    let run = || {
        let skills = std::sync::Arc::new(SkillLibrary::untrained(
            cfg,
            SacConfig {
                hidden: 8,
                ..SacConfig::default()
            },
            23,
        ));
        let hero_cfg = HeroConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..HeroConfig::default()
        };
        let mut env = scenario::congestion(cfg, 23);
        let mut policy = build_method(
            Method::Hero,
            MethodParams {
                n_agents: 3,
                obs_dim: cfg.high_dim(),
                batch_size: 8,
                seed: 23,
            },
            Some((skills, hero_cfg)),
        );
        let rec = train_policy(&mut policy, &mut env, 3, 2, 23);
        rec.series("reward").unwrap().to_vec()
    };
    assert_eq!(run(), run());
}

/// Two trainer runs with the same seed must produce bit-identical
/// episode-metric series AND identical telemetry counter totals (env
/// steps, episodes, sampled transitions, gradient updates). Uses a
/// thread-scoped telemetry sink so concurrently running tests cannot
/// contaminate each other's registries.
#[test]
fn hero_training_metrics_and_telemetry_are_deterministic() {
    use hero_rl::telemetry;

    let cfg = EnvConfig {
        max_steps: 6,
        ..EnvConfig::default()
    };
    let run = || {
        let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let skills = std::sync::Arc::new(SkillLibrary::untrained(
            cfg,
            SacConfig {
                hidden: 8,
                ..SacConfig::default()
            },
            23,
        ));
        let hero_cfg = HeroConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..HeroConfig::default()
        };
        let mut env = scenario::congestion(cfg, 23);
        let mut policy = build_method(
            Method::Hero,
            MethodParams {
                n_agents: 3,
                obs_dim: cfg.high_dim(),
                batch_size: 8,
                seed: 23,
            },
            Some((skills, hero_cfg)),
        );
        let rec = train_policy(&mut policy, &mut env, 3, 2, 23);
        let series: Vec<(String, Vec<f32>)> = rec
            .names()
            .iter()
            .map(|&n| (n.to_string(), rec.series(n).unwrap().to_vec()))
            .collect();
        (series, sink.snapshot().counter_totals())
    };
    let (series_a, counters_a) = run();
    let (series_b, counters_b) = run();
    assert_eq!(series_a, series_b, "episode-metric series must be bit-identical");
    assert_eq!(counters_a, counters_b, "telemetry counter totals must match");
    // The run must actually have been observed: 3 episodes of at most 6
    // steps each (collisions may end an episode early).
    assert_eq!(counters_a["episodes"], 3);
    assert!((3..=18).contains(&counters_a["env_steps"]), "{counters_a:?}");
    assert!(counters_a.contains_key("lidar_scans"));
}

/// Builds the same tiny HERO training setup every time it is called, so a
/// killed-and-resumed process (modelled here as a fresh team + env fed
/// from the checkpoint) starts from exactly the state a real restart
/// would reconstruct.
fn hero_crash_fixture(seed: u64) -> (hero_sim::env::LaneChangeEnv, hero_core::HeroTeam) {
    let cfg = EnvConfig {
        max_steps: 6,
        ..EnvConfig::default()
    };
    let skills = std::sync::Arc::new(SkillLibrary::untrained(
        cfg,
        SacConfig {
            hidden: 8,
            ..SacConfig::default()
        },
        seed,
    ));
    let hero_cfg = HeroConfig {
        hidden: 8,
        batch_size: 8,
        warmup: 8,
        ..HeroConfig::default()
    };
    let env = scenario::congestion(cfg, seed);
    let team = hero_core::HeroTeam::new(3, cfg.high_dim(), skills, hero_cfg, seed);
    (env, team)
}

fn crash_opts(episodes: usize, seed: u64) -> hero_core::trainer::TrainOptions {
    hero_core::trainer::TrainOptions {
        episodes,
        update_every: 2,
        seed,
    }
}

/// Deterministic non-`checkpoint/` telemetry: counter totals plus the
/// order-independent fields of every value histogram.
type TelemetryFingerprint = (
    std::collections::BTreeMap<String, u64>,
    std::collections::BTreeMap<String, (u64, f64, f64, f64)>,
);

fn telemetry_fingerprint(snap: &hero_rl::telemetry::Snapshot) -> TelemetryFingerprint {
    let counters = snap
        .counter_totals()
        .into_iter()
        .filter(|(name, _)| !name.starts_with("checkpoint/"))
        .collect();
    let values = snap
        .values
        .iter()
        .map(|(name, v)| (name.clone(), (v.count, v.mean, v.min, v.max)))
        .collect();
    (counters, values)
}

/// [`telemetry_fingerprint`], additionally ignoring the fault-local
/// supervision counters (`actor/*`, `supervisor/*`) — the only telemetry
/// a fault is allowed to touch.
fn supervision_free_fingerprint(snap: &hero_rl::telemetry::Snapshot) -> TelemetryFingerprint {
    let (counters, values) = telemetry_fingerprint(snap);
    let counters = counters
        .into_iter()
        .filter(|(name, _)| !name.starts_with("actor/") && !name.starts_with("supervisor/"))
        .collect();
    (counters, values)
}

fn recorder_series(rec: &hero_rl::metrics::Recorder) -> Vec<(String, Vec<f32>)> {
    rec.names()
        .iter()
        .map(|&n| (n.to_string(), rec.series(n).unwrap().to_vec()))
        .collect()
}

/// The tentpole guarantee: a seeded HERO run killed mid-training and
/// resumed from its checkpoint produces bit-identical metric series AND
/// bit-identical telemetry (counters and value statistics, modulo the
/// `checkpoint/*` bookkeeping) to the same run left uninterrupted.
#[test]
fn hero_kill_and_resume_is_bit_identical() {
    use hero_core::trainer::{train_team_checkpointed, CheckpointConfig};
    use hero_faultplan::{FaultPlan, KillMode};
    use hero_rl::telemetry;

    let base = std::env::temp_dir().join(format!("hero_resume_it_{}", std::process::id()));
    let dir_a = base.join("uninterrupted");
    let dir_b = base.join("crashed");
    let seed = 23;
    let episodes = 6;

    // Run A: uninterrupted, checkpointing every 2 episodes.
    let (series_a, telem_a) = {
        let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = train_team_checkpointed(
            &mut team,
            &mut env,
            &crash_opts(episodes, seed),
            &CheckpointConfig {
                every: 2,
                dir: Some(dir_a.clone()),
                ..CheckpointConfig::default()
            },
        )
        .expect("run must not abort");
        assert!(out.completed);
        assert_eq!(out.episodes_run, episodes);
        (recorder_series(&out.recorder), telemetry_fingerprint(&sink.snapshot()))
    };

    // Run B1: identical setup, killed at the start of episode 3 — after
    // the episode-1 checkpoint, so episode 2's work is lost and must be
    // redone identically on resume.
    {
        let _sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = train_team_checkpointed(
            &mut team,
            &mut env,
            &crash_opts(episodes, seed),
            &CheckpointConfig {
                every: 2,
                dir: Some(dir_b.clone()),
                fault_plan: FaultPlan::parse("kill@ep:3").unwrap(),
                kill_mode: KillMode::Return,
                ..CheckpointConfig::default()
            },
        )
        .expect("run must not abort");
        assert!(!out.completed, "the injected kill must stop the run");
        assert_eq!(out.episodes_run, 3);
    }

    // Run B2: fresh process state, resumed from the crashed run's
    // newest checkpoint.
    let (series_b, telem_b, loaded) = {
        let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = train_team_checkpointed(
            &mut team,
            &mut env,
            &crash_opts(episodes, seed),
            &CheckpointConfig {
                every: 2,
                dir: Some(dir_b.clone()),
                resume: true,
                ..CheckpointConfig::default()
            },
        )
        .expect("run must not abort");
        assert!(out.completed);
        assert!(out.episodes_run < episodes, "resume must skip completed episodes");
        let snap = sink.snapshot();
        let loaded = snap.counter_totals().get("checkpoint/loaded").copied();
        (recorder_series(&out.recorder), telemetry_fingerprint(&snap), loaded)
    };

    assert_eq!(loaded, Some(1), "the resume must come from a checkpoint");
    assert_eq!(series_a, series_b, "metric series must be bit-identical");
    assert_eq!(telem_a.0, telem_b.0, "counter totals must be bit-identical");
    assert_eq!(telem_a.1, telem_b.1, "value statistics must be bit-identical");
    std::fs::remove_dir_all(&base).ok();
}

/// When the newest checkpoint file is corrupted, resume must fall back to
/// the previous good one (counting the skip) instead of failing or
/// silently restarting from scratch.
#[test]
fn hero_resume_falls_back_past_corrupt_newest_checkpoint() {
    use hero_core::trainer::{train_team_checkpointed, CheckpointConfig};
    use hero_faultplan::{corrupt_file, CorruptMode};
    use hero_rl::telemetry;

    let dir = std::env::temp_dir().join(format!("hero_fallback_it_{}", std::process::id()));
    let seed = 29;

    {
        let _sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = train_team_checkpointed(
            &mut team,
            &mut env,
            &crash_opts(4, seed),
            &CheckpointConfig {
                every: 1,
                dir: Some(dir.clone()),
                ..CheckpointConfig::default()
            },
        )
        .expect("run must not abort");
        assert!(out.completed);
    }

    // Corrupt the newest checkpoint file on disk.
    let newest = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|e| e == "hero"))
        .max()
        .expect("checkpoints were written");
    corrupt_file(&newest, CorruptMode::Truncate).unwrap();

    let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
    let (mut env, mut team) = hero_crash_fixture(seed);
    let out = train_team_checkpointed(
        &mut team,
        &mut env,
        &crash_opts(6, seed),
        &CheckpointConfig {
            every: 2,
            dir: Some(dir.clone()),
            resume: true,
            ..CheckpointConfig::default()
        },
    )
    .expect("run must not abort");
    assert!(out.completed);
    let counters = sink.snapshot().counter_totals();
    assert_eq!(counters.get("checkpoint/loaded"), Some(&1), "{counters:?}");
    assert_eq!(counters.get("checkpoint/fallback"), Some(&1), "{counters:?}");
    assert!(
        counters.get("checkpoint/corrupt_skipped").copied().unwrap_or(0) >= 1,
        "{counters:?}"
    );
    // Resumed from episode 3 (the surviving checkpoint), finished all 6.
    assert_eq!(out.recorder.series("reward").unwrap().len(), 6);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dqn_checkpoint_restores_identical_greedy_policy() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut trained = DqnAgent::new(
        6,
        4,
        DqnConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..DqnConfig::default()
        },
        &mut rng,
    );
    // Make the weights non-trivial with a few updates.
    for i in 0..32 {
        trained.observe(hero_rl::transition::DiscreteTransition {
            obs: vec![(i % 5) as f32 / 5.0; 6],
            action: i % 4,
            reward: (i % 3) as f32,
            next_obs: vec![((i + 1) % 5) as f32 / 5.0; 6],
            done: i % 7 == 0,
        });
    }
    for _ in 0..10 {
        trained.update(&mut rng);
    }
    let path = std::env::temp_dir().join(format!("hero_dqn_ckpt_{}.bin", std::process::id()));
    save_params(&path, &trained.parameters()).unwrap();

    let restored = DqnAgent::new(
        6,
        4,
        DqnConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..DqnConfig::default()
        },
        &mut rng,
    );
    load_params(&path, &restored.parameters()).unwrap();
    for i in 0..20 {
        let obs = vec![i as f32 / 20.0; 6];
        assert_eq!(trained.q_values(&obs), restored.q_values(&obs));
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn skill_checkpoint_restores_identical_commands() {
    let cfg = EnvConfig::default();
    let lib = SkillLibrary::untrained(cfg, SacConfig::default(), 41);
    let path = std::env::temp_dir().join(format!("hero_skills_it_{}.bin", std::process::id()));
    lib.save(&path).unwrap();
    let mut other = SkillLibrary::untrained(cfg, SacConfig::default(), 999);
    other.load(&path).unwrap();

    let obs = Observation {
        lidar: vec![1.0; cfg.lidar.beams],
        image: vec![0.0; cfg.camera.image_len()],
        speed_norm: 0.5,
        lane_norm: 0.0,
        lane_id: 0,
        speed: 0.1,
    };
    let state = hero::sim::VehicleState {
        s: 0.0,
        d: 0.2,
        heading: 0.0,
        speed: 0.1,
    };
    let mut rng_a = StdRng::seed_from_u64(0);
    let mut rng_b = StdRng::seed_from_u64(0);
    for option in [DrivingOption::SlowDown, DrivingOption::Accelerate, DrivingOption::LaneChange] {
        let a = lib.command(option, &obs, &state, 0.6, &mut rng_a, false);
        let b = other.command(option, &obs, &state, 0.6, &mut rng_b, false);
        assert_eq!(a, b, "{option}");
    }
    std::fs::remove_file(path).ok();
}

/// Reads the bytes of the newest checkpoint file (`ckpt-<i>.hero` with
/// the largest `i`) in `dir`.
fn newest_checkpoint_bytes(dir: &std::path::Path) -> Vec<u8> {
    let mut files: Vec<(usize, std::path::PathBuf)> = std::fs::read_dir(dir)
        .expect("checkpoint dir must exist")
        .filter_map(|e| {
            let path = e.ok()?.path();
            let name = path.file_name()?.to_str()?.to_string();
            let index = name.strip_prefix("ckpt-")?.strip_suffix(".hero")?.parse().ok()?;
            Some((index, path))
        })
        .collect();
    files.sort();
    let (_, newest) = files.last().expect("at least one checkpoint file");
    std::fs::read(newest).expect("read checkpoint file")
}

/// Serial-mode actor/learner training (`batch_worlds == 1`) is the
/// sequential trainer with environment stepping moved onto actor
/// threads: for any actor count it must reproduce the sequential run
/// bit-for-bit — metric series, telemetry totals, and checkpoint bytes.
#[test]
fn hero_actor_learner_serial_matches_sequential_trainer() {
    use hero_core::rollout::{train_team_actor_learner, RolloutOptions};
    use hero_core::trainer::{train_team_checkpointed, CheckpointConfig};
    use hero_rl::telemetry;

    let base = std::env::temp_dir().join(format!("hero_al_serial_{}", std::process::id()));
    let dir_seq = base.join("sequential");
    let dir_al = base.join("actor_learner");
    let seed = 29;
    let episodes = 6;
    let ckpt = |dir: &std::path::Path| CheckpointConfig {
        every: 2,
        dir: Some(dir.to_path_buf()),
        ..CheckpointConfig::default()
    };
    let rollout = RolloutOptions {
        actors: 2,
        batch_worlds: 1,
        ..RolloutOptions::default()
    };

    // Pass 1 (scoped telemetry sinks): metric series and telemetry
    // totals. The sinks record wall-clock histograms into the
    // checkpointed telemetry state, so the files written here are not
    // expected to be comparable — only the in-memory results are.
    let (series_seq, telem_seq) = {
        let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = train_team_checkpointed(
            &mut team,
            &mut env,
            &crash_opts(episodes, seed),
            &ckpt(&dir_seq),
        )
        .expect("run must not abort");
        assert!(out.completed);
        (recorder_series(&out.recorder), telemetry_fingerprint(&sink.snapshot()))
    };
    let (series_al, telem_al) = {
        let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = train_team_actor_learner(
            &mut team,
            &mut env,
            &crash_opts(episodes, seed),
            &ckpt(&dir_al),
            &rollout,
        )
        .expect("run must not abort");
        assert!(out.completed);
        assert_eq!(out.episodes_run, episodes);
        (recorder_series(&out.recorder), telemetry_fingerprint(&sink.snapshot()))
    };
    assert_eq!(series_seq, series_al, "metric series must match the sequential trainer");
    assert_eq!(telem_seq.0, telem_al.0, "counter totals must match the sequential trainer");
    assert_eq!(telem_seq.1, telem_al.1, "value statistics must match the sequential trainer");

    // Pass 2 (no sink): with telemetry disabled the exported state embeds
    // no wall-clock data, so the final checkpoint files themselves must
    // be byte-identical.
    std::fs::remove_dir_all(&base).ok();
    let (mut env, mut team) = hero_crash_fixture(seed);
    let out = train_team_checkpointed(
        &mut team,
        &mut env,
        &crash_opts(episodes, seed),
        &ckpt(&dir_seq),
    )
    .expect("run must not abort");
    assert!(out.completed);
    let (mut env, mut team) = hero_crash_fixture(seed);
    let out = train_team_actor_learner(
        &mut team,
        &mut env,
        &crash_opts(episodes, seed),
        &ckpt(&dir_al),
        &rollout,
    )
    .expect("run must not abort");
    assert!(out.completed);
    assert_eq!(
        newest_checkpoint_bytes(&dir_seq),
        newest_checkpoint_bytes(&dir_al),
        "serial-mode checkpoints must be byte-identical to sequential ones"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// Batched rollout (`batch_worlds > 1`) interleaves episodes across
/// worlds, so it is compared against itself: a batched run killed
/// mid-training and resumed from its checkpoint must reproduce the
/// uninterrupted batched run bit-for-bit. This exercises the per-worker
/// RNG streams stored in the checkpoint's `workers` section.
#[test]
fn hero_actor_learner_batched_kill_and_resume_is_bit_identical() {
    use hero_core::rollout::{train_team_actor_learner, RolloutOptions};
    use hero_core::trainer::CheckpointConfig;
    use hero_faultplan::{FaultPlan, KillMode};
    use hero_rl::telemetry;

    let base = std::env::temp_dir().join(format!("hero_al_batched_{}", std::process::id()));
    let dir_a = base.join("uninterrupted");
    let dir_b = base.join("crashed");
    let seed = 31;
    let episodes = 6;
    let rollout = RolloutOptions {
        actors: 2,
        batch_worlds: 2,
        ..RolloutOptions::default()
    };

    // Run A: uninterrupted batched training.
    let (series_a, telem_a) = {
        let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = train_team_actor_learner(
            &mut team,
            &mut env,
            &crash_opts(episodes, seed),
            &CheckpointConfig {
                every: 2,
                dir: Some(dir_a.clone()),
                ..CheckpointConfig::default()
            },
            &rollout,
        )
        .expect("run must not abort");
        assert!(out.completed);
        (recorder_series(&out.recorder), telemetry_fingerprint(&sink.snapshot()))
    };

    // Run B1: identical setup, killed at the start of episode 3.
    {
        let _sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = train_team_actor_learner(
            &mut team,
            &mut env,
            &crash_opts(episodes, seed),
            &CheckpointConfig {
                every: 2,
                dir: Some(dir_b.clone()),
                fault_plan: FaultPlan::parse("kill@ep:3").unwrap(),
                kill_mode: KillMode::Return,
                ..CheckpointConfig::default()
            },
            &rollout,
        )
        .expect("run must not abort");
        assert!(!out.completed, "the injected kill must stop the run");
    }

    // Run B2: fresh process state, resumed from the crashed run's newest
    // checkpoint.
    let (series_b, telem_b, loaded) = {
        let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = train_team_actor_learner(
            &mut team,
            &mut env,
            &crash_opts(episodes, seed),
            &CheckpointConfig {
                every: 2,
                dir: Some(dir_b.clone()),
                resume: true,
                ..CheckpointConfig::default()
            },
            &rollout,
        )
        .expect("run must not abort");
        assert!(out.completed);
        assert!(out.episodes_run < episodes, "resume must skip completed episodes");
        let snap = sink.snapshot();
        let loaded = snap.counter_totals().get("checkpoint/loaded").copied();
        (recorder_series(&out.recorder), telemetry_fingerprint(&snap), loaded)
    };

    assert_eq!(loaded, Some(1), "the resume must come from a checkpoint");
    assert_eq!(series_a, series_b, "metric series must be bit-identical");
    assert_eq!(telem_a.0, telem_b.0, "counter totals must be bit-identical");
    assert_eq!(telem_a.1, telem_b.1, "value statistics must be bit-identical");
    std::fs::remove_dir_all(&base).ok();
}

/// An actor frozen by a `stall@actor:N` fault must be detected by the
/// learner's stall timeout and its work re-dispatched to a live actor;
/// in serial mode the surviving run stays bit-identical to the
/// sequential trainer.
#[test]
fn hero_actor_learner_survives_stalled_actor_bit_identically() {
    use hero_core::rollout::{train_team_actor_learner, RolloutOptions};
    use hero_core::trainer::{train_team_checkpointed, CheckpointConfig};
    use hero_faultplan::FaultPlan;
    use hero_rl::telemetry;
    use std::time::Duration;

    let seed = 37;
    let episodes = 4;

    let series_seq = {
        let _sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = train_team_checkpointed(
            &mut team,
            &mut env,
            &crash_opts(episodes, seed),
            &CheckpointConfig::default(),
        )
        .expect("run must not abort");
        assert!(out.completed);
        recorder_series(&out.recorder)
    };

    let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
    let (mut env, mut team) = hero_crash_fixture(seed);
    let out = train_team_actor_learner(
        &mut team,
        &mut env,
        &crash_opts(episodes, seed),
        &CheckpointConfig {
            fault_plan: FaultPlan::parse("stall@actor:1").unwrap(),
            ..CheckpointConfig::default()
        },
        &RolloutOptions {
            actors: 2,
            batch_worlds: 1,
            stall_timeout: Duration::from_millis(500),
            ..RolloutOptions::default()
        },
    )
    .expect("run must not abort");
    assert!(out.completed, "the live actor must absorb the stalled actor's work");
    assert_eq!(out.episodes_run, episodes);
    let stalled = sink.snapshot().counter_totals().get("actor/stalled").copied();
    assert!(
        stalled.is_some_and(|n| n >= 1),
        "the stall must be detected and counted (got {stalled:?})"
    );
    assert_eq!(
        series_seq,
        recorder_series(&out.recorder),
        "the surviving run must stay bit-identical to the sequential trainer"
    );
}

/// When every actor is stalled and the respawn budget is zero, the
/// supervisor must escalate to a typed [`TrainError::FleetLost`] abort
/// instead of deadlocking or returning a silent partial run. With no
/// checkpoint store configured there is nothing to emergency-save.
#[test]
fn hero_actor_learner_aborts_typed_when_all_actors_stall() {
    use hero_core::rollout::{train_team_actor_learner, RolloutOptions};
    use hero_core::trainer::{CheckpointConfig, TrainError};
    use hero_faultplan::FaultPlan;
    use hero_rl::telemetry;
    use std::time::Duration;

    let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
    let (mut env, mut team) = hero_crash_fixture(43);
    let err = train_team_actor_learner(
        &mut team,
        &mut env,
        &crash_opts(3, 43),
        &CheckpointConfig {
            fault_plan: FaultPlan::parse("stall@actor:0").unwrap(),
            ..CheckpointConfig::default()
        },
        &RolloutOptions {
            actors: 1,
            batch_worlds: 1,
            stall_timeout: Duration::from_millis(150),
            max_respawns: 0,
            ..RolloutOptions::default()
        },
    )
    .expect_err("an all-stalled fleet with no respawn budget must abort");
    match err {
        TrainError::FleetLost { episodes_run, emergency_checkpoint_saved } => {
            assert_eq!(episodes_run, 0);
            assert!(!emergency_checkpoint_saved, "no store configured, nothing to save");
        }
        other => panic!("expected FleetLost, got {other}"),
    }
    let counters = sink.snapshot().counter_totals();
    assert_eq!(counters.get("supervisor/degraded"), Some(&1), "{counters:?}");
    assert_eq!(counters.get("supervisor/fleet_lost"), Some(&1), "{counters:?}");
}

/// With the default respawn budget a stalled lone actor is harvested and
/// respawned (faults are injected into generation 0 only), so the run
/// self-heals and completes instead of aborting.
#[test]
fn hero_actor_learner_respawns_stalled_lone_actor_and_completes() {
    use hero_core::rollout::{train_team_actor_learner, RolloutOptions};
    use hero_core::trainer::CheckpointConfig;
    use hero_faultplan::FaultPlan;
    use hero_rl::telemetry;
    use std::time::Duration;

    let seed = 43;
    let episodes = 3;

    let series_seq = {
        let _sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = hero_core::trainer::train_team_checkpointed(
            &mut team,
            &mut env,
            &crash_opts(episodes, seed),
            &CheckpointConfig::default(),
        )
        .expect("run must not abort");
        assert!(out.completed);
        recorder_series(&out.recorder)
    };

    let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
    let (mut env, mut team) = hero_crash_fixture(seed);
    let out = train_team_actor_learner(
        &mut team,
        &mut env,
        &crash_opts(episodes, seed),
        &CheckpointConfig {
            fault_plan: FaultPlan::parse("stall@actor:0").unwrap(),
            ..CheckpointConfig::default()
        },
        &RolloutOptions {
            actors: 1,
            batch_worlds: 1,
            stall_timeout: Duration::from_millis(150),
            respawn_backoff_ms: 0,
            ..RolloutOptions::default()
        },
    )
    .expect("the supervisor must respawn the stalled actor");
    assert!(out.completed, "a respawned fleet must finish the run");
    assert_eq!(out.episodes_run, episodes);
    let counters = sink.snapshot().counter_totals();
    assert!(
        counters.get("actor/respawned").is_some_and(|&n| n >= 1),
        "the respawn must be counted: {counters:?}"
    );
    assert_eq!(
        series_seq,
        recorder_series(&out.recorder),
        "the self-healed run must stay bit-identical to the sequential trainer"
    );
}

/// The chaos acceptance drill: `panic@actor:1` plus `stall@actor:2` on a
/// 3-actor serial run. The supervisor harvests both failures, respawns
/// both actors, and the run completes all episodes with metric series,
/// non-supervision telemetry, and final checkpoint bytes identical to
/// the same-seed fault-free twin.
#[test]
fn hero_supervised_chaos_run_is_bit_identical_to_fault_free_twin() {
    use hero_core::rollout::{train_team_actor_learner, RolloutOptions};
    use hero_core::trainer::CheckpointConfig;
    use hero_faultplan::FaultPlan;
    use hero_rl::telemetry;
    use std::time::Duration;

    let base = std::env::temp_dir().join(format!("hero_chaos_it_{}", std::process::id()));
    let dir_clean = base.join("clean");
    let dir_chaos = base.join("chaos");
    std::fs::remove_dir_all(&base).ok();
    let seed = 47;
    let episodes = 6;
    let ckpt = |dir: &std::path::Path, plan: &str| CheckpointConfig {
        every: 2,
        dir: Some(dir.to_path_buf()),
        fault_plan: FaultPlan::parse(plan).unwrap(),
        ..CheckpointConfig::default()
    };
    let rollout = RolloutOptions {
        actors: 3,
        batch_worlds: 1,
        stall_timeout: Duration::from_millis(300),
        respawn_backoff_ms: 0,
        ..RolloutOptions::default()
    };

    // Faults touch only the supervision counters, so pass 1 compares
    // everything else under scoped sinks.
    let run = |dir: &std::path::Path, plan: &str, sink: bool| {
        let sink = sink.then(|| telemetry::scoped(telemetry::TelemetryConfig::default()));
        let (mut env, mut team) = hero_crash_fixture(seed);
        let out = train_team_actor_learner(
            &mut team,
            &mut env,
            &crash_opts(episodes, seed),
            &ckpt(dir, plan),
            &rollout,
        )
        .expect("the supervisor must keep the chaos run alive");
        assert!(out.completed, "every episode must finish despite the faults");
        assert_eq!(out.episodes_run, episodes);
        let fingerprint = sink.map(|s| {
            let snap = s.snapshot();
            let respawned = snap.counter_totals().get("actor/respawned").copied();
            (supervision_free_fingerprint(&snap), respawned)
        });
        (recorder_series(&out.recorder), fingerprint)
    };

    // Pass 1: metric series + telemetry fingerprints (scoped sinks).
    let (series_clean, fp_clean) = run(&dir_clean, "", true);
    let (series_chaos, fp_chaos) = run(&dir_chaos, "panic@actor:1,stall@actor:2", true);
    let (fp_clean, _) = fp_clean.unwrap();
    let (fp_chaos, respawned) = fp_chaos.unwrap();
    assert!(
        respawned.is_some_and(|n| n >= 2),
        "both faulted actors must be respawned (got {respawned:?})"
    );
    assert_eq!(series_clean, series_chaos, "metric series must be bit-identical");
    assert_eq!(fp_clean.0, fp_chaos.0, "counter totals must match modulo supervision");
    assert_eq!(fp_clean.1, fp_chaos.1, "value statistics must be bit-identical");

    // Pass 2 (no sink): the final checkpoint files must be byte-identical.
    std::fs::remove_dir_all(&base).ok();
    let _ = run(&dir_clean, "", false);
    let _ = run(&dir_chaos, "panic@actor:1,stall@actor:2", false);
    assert_eq!(
        newest_checkpoint_bytes(&dir_clean),
        newest_checkpoint_bytes(&dir_chaos),
        "chaos-run checkpoints must be byte-identical to the fault-free twin"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// Exhausting the respawn budget with a checkpoint store configured
/// writes a boundary-clean emergency checkpoint before the typed abort,
/// and a plain `--resume` run picks up from it and finishes.
#[test]
fn hero_fleet_lost_emergency_checkpoint_resumes_cleanly() {
    use hero_core::rollout::{train_team_actor_learner, RolloutOptions};
    use hero_core::trainer::{CheckpointConfig, TrainError};
    use hero_faultplan::FaultPlan;
    use hero_rl::telemetry;
    use std::time::Duration;

    let dir = std::env::temp_dir().join(format!("hero_fleetlost_it_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let seed = 53;
    let episodes = 4;

    let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
    let (mut env, mut team) = hero_crash_fixture(seed);
    let err = train_team_actor_learner(
        &mut team,
        &mut env,
        &crash_opts(episodes, seed),
        &CheckpointConfig {
            every: 1,
            dir: Some(dir.clone()),
            fault_plan: FaultPlan::parse("stall@actor:0").unwrap(),
            ..CheckpointConfig::default()
        },
        &RolloutOptions {
            actors: 1,
            batch_worlds: 1,
            stall_timeout: Duration::from_millis(150),
            max_respawns: 0,
            ..RolloutOptions::default()
        },
    )
    .expect_err("a zero-respawn budget must abort the all-stalled run");
    match err {
        TrainError::FleetLost { emergency_checkpoint_saved, .. } => {
            assert!(emergency_checkpoint_saved, "a store is configured, so it must save");
        }
        other => panic!("expected FleetLost, got {other}"),
    }
    let counters = sink.snapshot().counter_totals();
    assert_eq!(counters.get("supervisor/emergency_saved"), Some(&1), "{counters:?}");
    drop(sink);

    // The emergency checkpoint is loadable: a resume run (healthy fleet)
    // finishes the remaining episodes.
    let _sink = telemetry::scoped(telemetry::TelemetryConfig::default());
    let (mut env, mut team) = hero_crash_fixture(seed);
    let out = train_team_actor_learner(
        &mut team,
        &mut env,
        &crash_opts(episodes, seed),
        &CheckpointConfig {
            every: 1,
            dir: Some(dir.clone()),
            resume: true,
            ..CheckpointConfig::default()
        },
        &RolloutOptions {
            actors: 1,
            batch_worlds: 1,
            ..RolloutOptions::default()
        },
    )
    .expect("a healthy resume must not abort");
    assert!(out.completed, "the resumed run must finish the remaining episodes");
    std::fs::remove_dir_all(&dir).ok();
}

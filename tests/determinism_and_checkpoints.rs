//! Reproducibility guarantees: identical seeds give identical learning
//! curves, and checkpoints restore byte-identical policies.

use hero::prelude::*;
use hero_autograd::serialize::{load_params, save_params};
use hero_baselines::dqn::{DqnAgent, DqnConfig};
use hero_baselines::sac::SacConfig;
use hero_bench::{build_method, train_policy, Method, MethodParams};
use hero_sim::scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn dqn_training_is_deterministic_under_seed() {
    let cfg = EnvConfig {
        max_steps: 6,
        ..EnvConfig::default()
    };
    let run = || {
        let mut env = scenario::two_vehicle_merge(cfg, 17);
        let mut policy = build_method(
            Method::Dqn,
            MethodParams {
                n_agents: 2,
                obs_dim: cfg.high_dim(),
                batch_size: 8,
                seed: 17,
            },
            None,
        );
        let rec = train_policy(&mut policy, &mut env, 4, 2, 17);
        rec.series("reward").unwrap().to_vec()
    };
    assert_eq!(run(), run());
}

#[test]
fn hero_training_is_deterministic_under_seed() {
    let cfg = EnvConfig {
        max_steps: 6,
        ..EnvConfig::default()
    };
    let run = || {
        let skills = std::sync::Arc::new(SkillLibrary::untrained(
            cfg,
            SacConfig {
                hidden: 8,
                ..SacConfig::default()
            },
            23,
        ));
        let hero_cfg = HeroConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..HeroConfig::default()
        };
        let mut env = scenario::congestion(cfg, 23);
        let mut policy = build_method(
            Method::Hero,
            MethodParams {
                n_agents: 3,
                obs_dim: cfg.high_dim(),
                batch_size: 8,
                seed: 23,
            },
            Some((skills, hero_cfg)),
        );
        let rec = train_policy(&mut policy, &mut env, 3, 2, 23);
        rec.series("reward").unwrap().to_vec()
    };
    assert_eq!(run(), run());
}

/// Two trainer runs with the same seed must produce bit-identical
/// episode-metric series AND identical telemetry counter totals (env
/// steps, episodes, sampled transitions, gradient updates). Uses a
/// thread-scoped telemetry sink so concurrently running tests cannot
/// contaminate each other's registries.
#[test]
fn hero_training_metrics_and_telemetry_are_deterministic() {
    use hero_rl::telemetry;

    let cfg = EnvConfig {
        max_steps: 6,
        ..EnvConfig::default()
    };
    let run = || {
        let sink = telemetry::scoped(telemetry::TelemetryConfig::default());
        let skills = std::sync::Arc::new(SkillLibrary::untrained(
            cfg,
            SacConfig {
                hidden: 8,
                ..SacConfig::default()
            },
            23,
        ));
        let hero_cfg = HeroConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..HeroConfig::default()
        };
        let mut env = scenario::congestion(cfg, 23);
        let mut policy = build_method(
            Method::Hero,
            MethodParams {
                n_agents: 3,
                obs_dim: cfg.high_dim(),
                batch_size: 8,
                seed: 23,
            },
            Some((skills, hero_cfg)),
        );
        let rec = train_policy(&mut policy, &mut env, 3, 2, 23);
        let series: Vec<(String, Vec<f32>)> = rec
            .names()
            .iter()
            .map(|&n| (n.to_string(), rec.series(n).unwrap().to_vec()))
            .collect();
        (series, sink.snapshot().counter_totals())
    };
    let (series_a, counters_a) = run();
    let (series_b, counters_b) = run();
    assert_eq!(series_a, series_b, "episode-metric series must be bit-identical");
    assert_eq!(counters_a, counters_b, "telemetry counter totals must match");
    // The run must actually have been observed: 3 episodes of at most 6
    // steps each (collisions may end an episode early).
    assert_eq!(counters_a["episodes"], 3);
    assert!((3..=18).contains(&counters_a["env_steps"]), "{counters_a:?}");
    assert!(counters_a.contains_key("lidar_scans"));
}

#[test]
fn dqn_checkpoint_restores_identical_greedy_policy() {
    let mut rng = StdRng::seed_from_u64(31);
    let mut trained = DqnAgent::new(
        6,
        4,
        DqnConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..DqnConfig::default()
        },
        &mut rng,
    );
    // Make the weights non-trivial with a few updates.
    for i in 0..32 {
        trained.observe(hero_rl::transition::DiscreteTransition {
            obs: vec![(i % 5) as f32 / 5.0; 6],
            action: i % 4,
            reward: (i % 3) as f32,
            next_obs: vec![((i + 1) % 5) as f32 / 5.0; 6],
            done: i % 7 == 0,
        });
    }
    for _ in 0..10 {
        trained.update(&mut rng);
    }
    let path = std::env::temp_dir().join(format!("hero_dqn_ckpt_{}.bin", std::process::id()));
    save_params(&path, &trained.parameters()).unwrap();

    let restored = DqnAgent::new(
        6,
        4,
        DqnConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..DqnConfig::default()
        },
        &mut rng,
    );
    load_params(&path, &restored.parameters()).unwrap();
    for i in 0..20 {
        let obs = vec![i as f32 / 20.0; 6];
        assert_eq!(trained.q_values(&obs), restored.q_values(&obs));
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn skill_checkpoint_restores_identical_commands() {
    let cfg = EnvConfig::default();
    let lib = SkillLibrary::untrained(cfg, SacConfig::default(), 41);
    let path = std::env::temp_dir().join(format!("hero_skills_it_{}.bin", std::process::id()));
    lib.save(&path).unwrap();
    let mut other = SkillLibrary::untrained(cfg, SacConfig::default(), 999);
    other.load(&path).unwrap();

    let obs = Observation {
        lidar: vec![1.0; cfg.lidar.beams],
        image: vec![0.0; cfg.camera.image_len()],
        speed_norm: 0.5,
        lane_norm: 0.0,
        lane_id: 0,
        speed: 0.1,
    };
    let state = hero::sim::VehicleState {
        s: 0.0,
        d: 0.2,
        heading: 0.0,
        speed: 0.1,
    };
    let mut rng_a = StdRng::seed_from_u64(0);
    let mut rng_b = StdRng::seed_from_u64(0);
    for option in [DrivingOption::SlowDown, DrivingOption::Accelerate, DrivingOption::LaneChange] {
        let a = lib.command(option, &obs, &state, 0.6, &mut rng_a, false);
        let b = other.command(option, &obs, &state, 0.6, &mut rng_b, false);
        assert_eq!(a, b, "{option}");
    }
    std::fs::remove_file(path).ok();
}

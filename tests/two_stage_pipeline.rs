//! End-to-end smoke test of the full HERO pipeline: skill training →
//! cooperative training → greedy evaluation → sim-to-real deployment, at
//! toy budgets.

use std::sync::Arc;

use hero::prelude::*;
use hero_baselines::sac::SacConfig;
use hero_sim::scenario;

fn tiny_sac() -> SacConfig {
    SacConfig {
        hidden: 8,
        batch_size: 16,
        warmup: 16,
        ..SacConfig::default()
    }
}

fn tiny_hero() -> HeroConfig {
    HeroConfig {
        hidden: 8,
        batch_size: 16,
        warmup: 16,
        ..HeroConfig::default()
    }
}

#[test]
fn full_pipeline_runs_and_produces_finite_metrics() {
    let env_cfg = EnvConfig {
        max_steps: 8,
        ..EnvConfig::default()
    };

    // Stage 1.
    let (skills, skill_rec) = SkillLibrary::train(
        env_cfg,
        SkillTrainingConfig {
            vision: false,
            episodes: 5,
            updates_per_episode: 1,
            sac: tiny_sac(),
        },
        1,
    );
    let in_lane = skill_rec.series("skill/driving-in-lane").unwrap();
    assert_eq!(in_lane.len(), 5);
    assert!(in_lane.iter().all(|v| v.is_finite()));

    // Stage 2.
    let mut env = scenario::congestion(env_cfg, 2);
    let mut team = HeroTeam::new(3, env_cfg.high_dim(), Arc::new(skills), tiny_hero(), 2);
    let rec = train_team(
        &mut team,
        &mut env,
        &TrainOptions {
            episodes: 6,
            update_every: 2,
            seed: 2,
        },
    );
    assert_eq!(rec.series("reward").unwrap().len(), 6);
    assert!(rec.series("reward").unwrap().iter().all(|v| v.is_finite()));
    assert!(
        team.agents().iter().any(|a| a.buffer_len() > 0),
        "option segments must have been stored"
    );

    // Greedy evaluation in simulation.
    let stats = evaluate_team(&mut team, &mut env, 3, 3);
    assert!((0.0..=1.0).contains(&stats.collision_rate));
    assert!((0.0..=1.0).contains(&stats.success_rate));
    assert!(stats.mean_speed.is_finite());

    // Deployment behind the domain gap.
    let mut testbed = SimToRealEnv::new(
        env_cfg,
        scenario::congestion_spawns(),
        SimToRealConfig::default(),
        4,
    );
    let real = evaluate_team(&mut team, &mut testbed, 3, 4);
    assert!((0.0..=1.0).contains(&real.collision_rate));
    assert!(real.mean_speed.is_finite());
}

#[test]
fn opponent_models_receive_data_during_cooperation() {
    let env_cfg = EnvConfig {
        max_steps: 8,
        ..EnvConfig::default()
    };
    let skills = Arc::new(SkillLibrary::untrained(env_cfg, tiny_sac(), 0));
    let mut env = scenario::two_vehicle_merge(env_cfg, 5);
    let mut team = HeroTeam::new(2, env_cfg.high_dim(), skills, tiny_hero(), 5);
    let _ = train_team(
        &mut team,
        &mut env,
        &TrainOptions {
            episodes: 4,
            update_every: 1,
            seed: 5,
        },
    );
    for agent in team.agents() {
        assert!(
            agent.opponent_model().buffer_len() > 0,
            "every step must feed the opponent model"
        );
        assert_eq!(agent.opponent_model().num_opponents(), 1);
    }
}

#[test]
fn disabled_opponent_model_predicts_uniform() {
    let env_cfg = EnvConfig::default();
    let skills = Arc::new(SkillLibrary::untrained(env_cfg, tiny_sac(), 0));
    let cfg = HeroConfig {
        use_opponent_model: false,
        ..tiny_hero()
    };
    let team = HeroTeam::new(2, env_cfg.high_dim(), skills, cfg, 6);
    let probs = team.agents()[0]
        .opponent_model()
        .predict_probs(&vec![0.3; env_cfg.high_dim()]);
    for p in probs {
        for v in p {
            assert!((v - 0.25).abs() < 1e-6, "uniform over 4 options, got {v}");
        }
    }
}

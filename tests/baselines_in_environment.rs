//! Every comparison method must train and evaluate through the shared
//! harness in the actual lane-change environment (not just unit bandits).

use std::sync::Arc;

use hero::prelude::*;
use hero_baselines::sac::SacConfig;
use hero_bench::{build_method, train_policy, Method, MethodParams};
use hero_sim::scenario;

fn env_cfg() -> EnvConfig {
    EnvConfig {
        max_steps: 6,
        ..EnvConfig::default()
    }
}

#[test]
fn all_methods_train_in_the_merge_scenario() {
    let cfg = env_cfg();
    let skills = Arc::new(SkillLibrary::untrained(
        cfg,
        SacConfig {
            hidden: 8,
            ..SacConfig::default()
        },
        0,
    ));
    let hero_cfg = HeroConfig {
        hidden: 8,
        batch_size: 8,
        warmup: 8,
        ..HeroConfig::default()
    };
    for method in Method::ALL {
        let mut env = scenario::two_vehicle_merge(cfg, 11);
        let mut policy = build_method(
            method,
            MethodParams {
                n_agents: 2,
                obs_dim: cfg.high_dim(),
                batch_size: 8,
                seed: 11,
            },
            Some((skills.clone(), hero_cfg)),
        );
        let rec = train_policy(&mut policy, &mut env, 3, 2, 11);
        let rewards = rec.series("reward").unwrap();
        assert_eq!(rewards.len(), 3, "{}", method.name());
        assert!(
            rewards.iter().all(|v| v.is_finite()),
            "{} produced non-finite rewards: {rewards:?}",
            method.name()
        );
        let stats = policy.evaluate(&mut env, 2, 12);
        assert!(
            (0.0..=1.0).contains(&stats.collision_rate),
            "{}",
            method.name()
        );
        assert!(stats.mean_speed >= 0.0, "{}", method.name());
    }
}

#[test]
fn evaluation_works_on_the_testbed_proxy_for_all_methods() {
    let cfg = env_cfg();
    let skills = Arc::new(SkillLibrary::untrained(
        cfg,
        SacConfig {
            hidden: 8,
            ..SacConfig::default()
        },
        0,
    ));
    let hero_cfg = HeroConfig {
        hidden: 8,
        batch_size: 8,
        warmup: 8,
        ..HeroConfig::default()
    };
    for method in Method::ALL {
        let mut policy = build_method(
            method,
            MethodParams {
                n_agents: 3,
                obs_dim: cfg.high_dim(),
                batch_size: 8,
                seed: 13,
            },
            Some((skills.clone(), hero_cfg)),
        );
        let mut testbed = SimToRealEnv::new(
            cfg,
            scenario::congestion_spawns(),
            SimToRealConfig::default(),
            13,
        );
        let stats = policy.evaluate(&mut testbed, 2, 13);
        assert!(
            stats.mean_reward.is_finite(),
            "{} on the testbed proxy",
            method.name()
        );
    }
}

//! The sim-to-real wrapper with an identity gap must be observationally
//! equivalent to the plain simulator — the Table II protocol is then
//! guaranteed to measure only the *gap*, not wrapper artifacts.

use std::sync::Arc;

use hero::prelude::*;
use hero_baselines::sac::SacConfig;
use hero_sim::scenario;

fn team(env_cfg: EnvConfig, seed: u64) -> HeroTeam {
    let skills = Arc::new(SkillLibrary::untrained(
        env_cfg,
        SacConfig {
            hidden: 8,
            ..SacConfig::default()
        },
        seed,
    ));
    HeroTeam::new(
        3,
        env_cfg.high_dim(),
        skills,
        HeroConfig {
            hidden: 8,
            batch_size: 8,
            warmup: 8,
            ..HeroConfig::default()
        },
        seed,
    )
}

#[test]
fn identity_gap_evaluation_matches_plain_world() {
    let env_cfg = EnvConfig {
        max_steps: 8,
        ..EnvConfig::default()
    };
    let mut plain = scenario::congestion(env_cfg, 31);
    let mut wrapped = SimToRealEnv::new(
        env_cfg,
        scenario::congestion_spawns(),
        SimToRealConfig::identity(),
        31,
    );
    let mut team_a = team(env_cfg, 5);
    let mut team_b = team(env_cfg, 5);
    let a = evaluate_team(&mut team_a, &mut plain, 4, 9);
    let b = evaluate_team(&mut team_b, &mut wrapped, 4, 9);
    assert_eq!(a, b, "identity wrapper must not change evaluation results");
}

#[test]
fn default_gap_changes_outcomes() {
    let env_cfg = EnvConfig {
        max_steps: 8,
        ..EnvConfig::default()
    };
    let mut plain = scenario::congestion(env_cfg, 33);
    let mut wrapped = SimToRealEnv::new(
        env_cfg,
        scenario::congestion_spawns(),
        SimToRealConfig::default(),
        33,
    );
    let mut team_a = team(env_cfg, 6);
    let mut team_b = team(env_cfg, 6);
    let a = evaluate_team(&mut team_a, &mut plain, 6, 9);
    let b = evaluate_team(&mut team_b, &mut wrapped, 6, 9);
    assert_ne!(
        a.mean_reward, b.mean_reward,
        "a real domain gap must perturb the rollouts"
    );
}

#[test]
fn generic_code_can_run_on_both_worlds() {
    // Compile-time check that the CooperativeWorld trait is object-safe
    // enough for generic harness code.
    fn episode_length<W: CooperativeWorld>(env: &mut W) -> usize {
        env.reset();
        let mut steps = 0;
        while !env.is_done() {
            let cmds = vec![VehicleCommand::coast(0.05); env.num_vehicles()];
            env.step(&cmds);
            steps += 1;
        }
        steps
    }
    let env_cfg = EnvConfig {
        max_steps: 5,
        ..EnvConfig::default()
    };
    let mut plain = scenario::two_vehicle_merge(env_cfg, 1);
    let mut wrapped = SimToRealEnv::new(
        env_cfg,
        scenario::two_vehicle_merge_spawns(),
        SimToRealConfig::default(),
        1,
    );
    assert!(episode_length(&mut plain) <= 5);
    assert!(episode_length(&mut wrapped) <= 5);
}

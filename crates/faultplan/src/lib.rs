//! # hero-faultplan
//!
//! Deterministic fault injection for crash-safety testing.
//!
//! A [`FaultPlan`] is parsed from a compact spec string (the CLI's
//! `--fault-plan`) and consulted by the training loop and checkpoint
//! writer at well-defined points. Every fault is keyed to a deterministic
//! index (episode number, save number, update number), so a faulted run is
//! exactly reproducible.
//!
//! ## Spec grammar
//!
//! Comma-separated directives:
//!
//! | directive | effect |
//! |---|---|
//! | `kill@ep:N` | kill the training loop at the start of episode `N` |
//! | `io-err@save:N` | the `N`-th checkpoint save fails once with an IO error |
//! | `io-err@save:N:persistent` | ...fails on every retry too |
//! | `truncate@save:N` | the `N`-th checkpoint file is truncated after writing |
//! | `bitflip@save:N` | one bit of the `N`-th checkpoint file is flipped |
//! | `nan-grad@update:N` | the `N`-th gradient update is poisoned with NaN |
//! | `stall@actor:N` | rollout actor thread `N` freezes at startup |
//! | `panic@actor:N` | rollout actor thread `N` panics at startup |
//! | `slow@actor:N:MS` | rollout actor thread `N` sleeps `MS` ms before each reply |
//! | `disk-full@save:N` | the `N`-th checkpoint save fails on every attempt |
//!
//! Actor faults (`stall`, `panic`, `slow`) apply to the *first
//! incarnation* of the named actor thread only: a supervisor that
//! respawns the actor gets a healthy replacement, so a bounded restart
//! budget always converges. `disk-full` is persistent across retries
//! (unlike plain `io-err@save:N`), modelling a full disk rather than a
//! transient write hiccup.
//!
//! All indices are 0-based. Example:
//! `--fault-plan kill@ep:3,bitflip@save:1`.
//!
//! ## Post-mortem interplay
//!
//! Faults that interrupt or degrade a run (`kill@ep`, `stall@actor`, and
//! any incomplete engine exit) mark the telemetry registry *faulted*,
//! which makes the final flush dump the rollout flight recorder — the
//! last 4096 structured events (waves, checkpoints, stalls,
//! re-dispatches, injected kills) — to `flight_recorder.jsonl` in the
//! telemetry directory. Recovery drills assert on that file to prove the
//! injected story happened in order (e.g. `stall_detected` strictly
//! before the `redispatched` event that saved the run); see
//! `tests/live_observability.rs` and DESIGN.md § Live observability.

#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

/// How a `kill@ep:N` directive terminates the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillMode {
    /// Terminate the process with exit code 137 (as a SIGKILL would).
    /// Used by the experiment binaries so CI can assert on the code.
    Exit,
    /// Return early from the training loop, in-process. Used by tests.
    Return,
}

/// How a checkpoint file is corrupted after a successful write.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorruptMode {
    /// Truncate the file to half its length.
    Truncate,
    /// Flip one bit in the middle of the file.
    BitFlip,
}

/// The accepted directive grammar, quoted in every [`ParseError`] so a
/// typo'd `--fault-plan` names its own fix.
pub const GRAMMAR: &str = "kill@ep:N, io-err@save:N[:persistent], truncate@save:N, \
     bitflip@save:N, disk-full@save:N, nan-grad@update:N, stall@actor:N, \
     panic@actor:N, slow@actor:N:MS";

/// Error parsing a fault-plan spec string. The message names the
/// offending token and lists the valid grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(String);

impl ParseError {
    fn at(token: &str, reason: &str) -> Self {
        Self(format!("`{token}` {reason}"))
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fault plan: {}; valid directives: {GRAMMAR}", self.0)
    }
}

impl Error for ParseError {}

/// A deterministic schedule of faults to inject into a training run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    kill_at_episode: Option<usize>,
    io_err_saves: Vec<(usize, bool)>,
    disk_full_saves: Vec<usize>,
    corrupt_saves: Vec<(usize, CorruptMode)>,
    nan_grad_updates: Vec<usize>,
    stall_actors: Vec<usize>,
    panic_actors: Vec<usize>,
    slow_actors: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Parses a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on unknown directives, bad anchors, or
    /// unparsable indices.
    pub fn parse(spec: &str) -> Result<Self, ParseError> {
        let mut plan = Self::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (fault, anchor) = part
                .split_once('@')
                .ok_or_else(|| ParseError::at(part, "is missing `@` between fault and anchor"))?;
            let mut fields = anchor.split(':');
            let site = fields
                .next()
                .ok_or_else(|| ParseError::at(part, "is missing an anchor site"))?;
            let index: usize = fields
                .next()
                .ok_or_else(|| ParseError::at(part, "is missing an index"))?
                .parse()
                .map_err(|_| ParseError::at(part, "has a non-numeric index"))?;
            let modifier = fields.next();
            if fields.next().is_some() {
                return Err(ParseError::at(part, "has too many `:`-separated fields"));
            }
            match (fault, site, modifier) {
                ("kill", "ep", None) => {
                    if plan.kill_at_episode.is_some() {
                        return Err(ParseError::at(part, "duplicates an earlier kill directive"));
                    }
                    plan.kill_at_episode = Some(index);
                }
                ("io-err", "save", None) => plan.io_err_saves.push((index, false)),
                ("io-err", "save", Some("persistent")) => plan.io_err_saves.push((index, true)),
                ("disk-full", "save", None) => plan.disk_full_saves.push(index),
                ("truncate", "save", None) => {
                    plan.corrupt_saves.push((index, CorruptMode::Truncate));
                }
                ("bitflip", "save", None) => {
                    plan.corrupt_saves.push((index, CorruptMode::BitFlip));
                }
                ("nan-grad", "update", None) => plan.nan_grad_updates.push(index),
                ("stall", "actor", None) => plan.stall_actors.push(index),
                ("panic", "actor", None) => plan.panic_actors.push(index),
                ("slow", "actor", Some(ms)) => {
                    let ms: u64 = ms.parse().map_err(|_| {
                        ParseError::at(part, "has a non-numeric millisecond delay")
                    })?;
                    plan.slow_actors.push((index, ms));
                }
                ("slow", "actor", None) => {
                    return Err(ParseError::at(part, "is missing its millisecond delay"));
                }
                _ => return Err(ParseError::at(part, "is not a known fault@site form")),
            }
        }
        Ok(plan)
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        *self == Self::default()
    }

    /// Whether the run should die at the start of episode `episode`.
    pub fn should_kill(&self, episode: usize) -> bool {
        self.kill_at_episode == Some(episode)
    }

    /// The episode a kill is scheduled for, if any.
    pub fn kill_episode(&self) -> Option<usize> {
        self.kill_at_episode
    }

    /// Whether checkpoint save number `save_index` should fail with an IO
    /// error on attempt `attempt` (0-based; non-persistent faults only fail
    /// attempt 0, so a retry succeeds). A `disk-full@save:N` directive
    /// fails every attempt, like `io-err@save:N:persistent`.
    pub fn io_error_at(&self, save_index: usize, attempt: usize) -> bool {
        self.disk_full_at(save_index)
            || self
                .io_err_saves
                .iter()
                .any(|&(idx, persistent)| idx == save_index && (persistent || attempt == 0))
    }

    /// Whether checkpoint save number `save_index` hits a full disk
    /// (fails on every attempt, so the save is dropped after retries).
    pub fn disk_full_at(&self, save_index: usize) -> bool {
        self.disk_full_saves.contains(&save_index)
    }

    /// How checkpoint save number `save_index` should be corrupted after a
    /// successful write, if at all.
    pub fn corrupt_after_save(&self, save_index: usize) -> Option<CorruptMode> {
        self.corrupt_saves
            .iter()
            .find(|&&(idx, _)| idx == save_index)
            .map(|&(_, mode)| mode)
    }

    /// Whether gradient update number `update_index` should be poisoned
    /// with non-finite values (to exercise the NaN watchdog).
    pub fn nan_grad_at(&self, update_index: usize) -> bool {
        self.nan_grad_updates.contains(&update_index)
    }

    /// Whether rollout actor thread `actor_index` should freeze at startup
    /// (to exercise the learner's stall detection and re-dispatch path).
    /// Applies to the actor's first incarnation only; respawns are healthy.
    pub fn stall_actor(&self, actor_index: usize) -> bool {
        self.stall_actors.contains(&actor_index)
    }

    /// Whether rollout actor thread `actor_index` should panic at startup
    /// (to exercise the supervisor's panic harvest and respawn path).
    /// Applies to the actor's first incarnation only; respawns are healthy.
    pub fn panic_actor(&self, actor_index: usize) -> bool {
        self.panic_actors.contains(&actor_index)
    }

    /// The artificial per-reply delay for rollout actor thread
    /// `actor_index`, if a `slow@actor:N:MS` directive names it.
    /// Applies to the actor's first incarnation only; respawns are healthy.
    pub fn slow_actor_ms(&self, actor_index: usize) -> Option<u64> {
        self.slow_actors
            .iter()
            .find(|&&(idx, _)| idx == actor_index)
            .map(|&(_, ms)| ms)
    }
}

/// Applies a [`CorruptMode`] to the file at `path`.
///
/// Truncation halves the file; a bit flip toggles the lowest bit of the
/// middle byte. Both are deterministic.
///
/// # Errors
///
/// Returns any underlying IO error.
pub fn corrupt_file(path: &std::path::Path, mode: CorruptMode) -> std::io::Result<()> {
    let bytes = std::fs::read(path)?;
    let corrupted = match mode {
        CorruptMode::Truncate => bytes[..bytes.len() / 2].to_vec(),
        CorruptMode::BitFlip => {
            let mut b = bytes;
            if !b.is_empty() {
                let mid = b.len() / 2;
                b[mid] ^= 1;
            }
            b
        }
    };
    std::fs::write(path, corrupted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_is_empty_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert!(!plan.should_kill(0));
        assert!(!plan.io_error_at(0, 0));
        assert!(plan.corrupt_after_save(0).is_none());
        assert!(!plan.nan_grad_at(0));
    }

    #[test]
    fn full_grammar_parses() {
        let plan = FaultPlan::parse(
            "kill@ep:3, io-err@save:1, io-err@save:2:persistent, \
             truncate@save:4, bitflip@save:5, nan-grad@update:7, stall@actor:1, \
             panic@actor:2, slow@actor:3:40, disk-full@save:6",
        )
        .unwrap();
        assert!(plan.should_kill(3));
        assert!(!plan.should_kill(2));
        assert_eq!(plan.kill_episode(), Some(3));
        // Non-persistent IO error: fails first attempt only.
        assert!(plan.io_error_at(1, 0));
        assert!(!plan.io_error_at(1, 1));
        // Persistent: fails every attempt.
        assert!(plan.io_error_at(2, 0));
        assert!(plan.io_error_at(2, 5));
        assert!(!plan.io_error_at(3, 0));
        assert_eq!(plan.corrupt_after_save(4), Some(CorruptMode::Truncate));
        assert_eq!(plan.corrupt_after_save(5), Some(CorruptMode::BitFlip));
        assert!(plan.corrupt_after_save(6).is_none());
        assert!(plan.nan_grad_at(7));
        assert!(!plan.nan_grad_at(6));
        assert!(plan.stall_actor(1));
        assert!(!plan.stall_actor(0));
        assert!(plan.panic_actor(2));
        assert!(!plan.panic_actor(1));
        assert_eq!(plan.slow_actor_ms(3), Some(40));
        assert_eq!(plan.slow_actor_ms(2), None);
        // disk-full: persistent save failure on every attempt.
        assert!(plan.disk_full_at(6));
        assert!(plan.io_error_at(6, 0));
        assert!(plan.io_error_at(6, 9));
        assert!(!plan.disk_full_at(1));
    }

    #[test]
    fn bad_specs_are_rejected() {
        for bad in [
            "kill",                 // no @
            "kill@ep",              // no index
            "kill@ep:x",            // non-numeric
            "kill@step:3",          // unknown site
            "explode@ep:3",         // unknown fault
            "kill@ep:1,kill@ep:2",  // duplicate kill
            "io-err@save:1:always", // unknown modifier
            "kill@ep:1:2:3",        // too many fields
            "slow@actor:1",         // slow needs a delay
            "slow@actor:1:fast",    // non-numeric delay
            "panic@actor:1:twice",  // panic takes no modifier
            "disk-full@save:1:x",   // disk-full takes no modifier
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn parse_errors_name_the_token_and_list_the_grammar() {
        let err = FaultPlan::parse("kill@ep:3,explode@ep:4").unwrap_err().to_string();
        assert!(err.contains("`explode@ep:4`"), "offending token missing: {err}");
        assert!(!err.contains("kill@ep:3,"), "error should name only the bad token: {err}");
        assert!(err.contains(GRAMMAR), "grammar listing missing: {err}");

        let err = FaultPlan::parse("slow@actor:1").unwrap_err().to_string();
        assert!(err.contains("`slow@actor:1`") && err.contains("millisecond"), "{err}");
    }

    #[test]
    fn corrupt_file_modes() {
        let dir = std::env::temp_dir().join(format!("faultplan-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("blob");

        std::fs::write(&path, [0u8; 64]).unwrap();
        corrupt_file(&path, CorruptMode::Truncate).unwrap();
        assert_eq!(std::fs::read(&path).unwrap().len(), 32);

        std::fs::write(&path, [0u8; 64]).unwrap();
        corrupt_file(&path, CorruptMode::BitFlip).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 64);
        assert_eq!(bytes.iter().filter(|&&b| b != 0).count(), 1);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    use proptest::prelude::*;

    proptest! {
        /// Arbitrary junk — including embedded `@`, `:` and `,`, and
        /// near-miss fragments of real directive words — must parse to
        /// Ok or a ParseError, never panic. Errors carry the grammar
        /// listing so the user can self-serve the fix.
        fn random_specs_never_panic(ids in prop::collection::vec(0usize..20, 0..64)) {
            const ALPHABET: [char; 20] = [
                'k', 'i', 'l', 'e', 'p', 's', 'a', 'v', 'o', 'w', 'n', 'r',
                '@', ':', ',', '-', ' ', '0', '1', '9',
            ];
            let spec: String = ids.into_iter().map(|i| ALPHABET[i]).collect();
            if let Err(e) = FaultPlan::parse(&spec) {
                prop_assert!(e.to_string().contains(GRAMMAR), "grammar missing for `{spec}`");
            }
        }

        /// Well-formed single actor directives always parse and land on
        /// the right accessor.
        fn valid_actor_directives_parse(which in 0usize..3, idx in 0usize..64, ms in 1u64..500) {
            let (spec, hit) = match which {
                0 => (format!("stall@actor:{idx}"), "stall"),
                1 => (format!("panic@actor:{idx}"), "panic"),
                _ => (format!("slow@actor:{idx}:{ms}"), "slow"),
            };
            let plan = FaultPlan::parse(&spec);
            prop_assert!(plan.is_ok(), "`{spec}` failed: {:?}", plan.err());
            let plan = plan.unwrap();
            match hit {
                "stall" => prop_assert!(plan.stall_actor(idx)),
                "panic" => prop_assert!(plan.panic_actor(idx)),
                _ => prop_assert_eq!(plan.slow_actor_ms(idx), Some(ms)),
            }
        }
    }
}

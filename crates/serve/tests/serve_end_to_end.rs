//! End-to-end serving correctness: requests through the full HTTP +
//! micro-batching stack must answer with exactly the logits the policy
//! computes locally — bitwise, in the default strict kernel mode —
//! and concurrent requests must each get their *own* row back.

use std::sync::Arc;
use std::time::Duration;

use hero_autograd::TensorPool;
use hero_serve::{start, BatchOptions, ServeConfig, ServePolicy};
use hero_telemetry::emit::{parse_json_object, JsonValue};
use hero_telemetry::http::http_request;

const OBS: usize = 6;
const HIDDEN: usize = 8;
const AGENTS: usize = 2;
const SEED: u64 = 42;

fn synthetic_server(max_batch: usize) -> hero_serve::HeroServer {
    start(ServeConfig {
        synthetic: Some((OBS, HIDDEN, AGENTS)),
        synthetic_seed: SEED,
        batch: BatchOptions {
            max_batch,
            deadline: Duration::from_micros(500),
        },
        ..ServeConfig::default()
    })
    .expect("synthetic server starts")
}

/// The same policy the server built, constructed locally: synthetic
/// construction is deterministic in (dims, seed).
fn local_policy() -> ServePolicy {
    ServePolicy::synthetic(OBS, HIDDEN, AGENTS, SEED)
}

fn obs_row(salt: u64) -> Vec<f32> {
    (0..OBS)
        .map(|i| ((salt * 31 + i as u64 * 7) % 200) as f32 / 100.0 - 1.0)
        .collect()
}

fn act(addr: std::net::SocketAddr, agent: usize, obs: &[f32]) -> (u16, String) {
    let obs_str: Vec<String> = obs.iter().map(f32::to_string).collect();
    let body = format!("{{\"agent\":{agent},\"obs\":\"{}\"}}", obs_str.join(" "));
    http_request("POST", &format!("http://{addr}/act"), &body).expect("request reaches server")
}

fn parse_logits(body: &str) -> Vec<f32> {
    let fields = parse_json_object(body.trim()).expect("response is a JSON object");
    fields
        .get("logits")
        .and_then(JsonValue::as_str)
        .expect("response has a logits string")
        .split(' ')
        .map(|t| t.parse::<f32>().expect("logit parses back"))
        .collect()
}

#[test]
fn served_logits_match_local_inference_bitwise() {
    let server = synthetic_server(8);
    let addr = server.local_addr();
    let local = local_policy();
    let mut pool = TensorPool::new();

    for agent in 0..AGENTS {
        for salt in 0..4 {
            let obs = obs_row(salt + agent as u64 * 100);
            let (status, body) = act(addr, agent, &obs);
            assert_eq!(status, 200, "unexpected response: {body}");
            let served = parse_logits(&body);
            let expect = local.infer(agent, &[obs.as_slice()], &mut pool);
            assert_eq!(served.len(), expect[0].len());
            for (s, e) in served.iter().zip(&expect[0]) {
                // f32 Display is shortest-roundtrip, so the wire format
                // preserves bits exactly.
                assert_eq!(s.to_bits(), e.to_bits(), "served {s} != local {e}");
            }
        }
    }
}

#[test]
fn request_at_a_time_baseline_matches_batched_answers() {
    let batched = synthetic_server(8);
    let single = synthetic_server(1);
    let obs = obs_row(7);
    let (s1, b1) = act(batched.local_addr(), 0, &obs);
    let (s2, b2) = act(single.local_addr(), 0, &obs);
    assert_eq!((s1, s2), (200, 200));
    let (l1, l2) = (parse_logits(&b1), parse_logits(&b2));
    assert_eq!(
        l1.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        l2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "max-batch 1 and batched dispatch must agree bitwise in strict mode"
    );
}

#[test]
fn concurrent_requests_each_get_their_own_row_back() {
    let server = Arc::new(synthetic_server(32));
    let addr = server.local_addr();

    const N: usize = 24;
    let handles: Vec<_> = (0..N)
        .map(|i| {
            std::thread::spawn(move || {
                let agent = i % AGENTS;
                let obs = obs_row(i as u64);
                let (status, body) = act(addr, agent, &obs);
                (i, agent, obs, status, body)
            })
        })
        .collect();

    let local = local_policy();
    let mut pool = TensorPool::new();
    for h in handles {
        let (i, agent, obs, status, body) = h.join().expect("client thread");
        assert_eq!(status, 200, "request {i}: {body}");
        let served = parse_logits(&body);
        let expect = local.infer(agent, &[obs.as_slice()], &mut pool);
        let served_bits: Vec<u32> = served.iter().map(|v| v.to_bits()).collect();
        let expect_bits: Vec<u32> = expect[0].iter().map(|v| v.to_bits()).collect();
        assert_eq!(served_bits, expect_bits, "request {i} got someone else's row");
    }
    assert_eq!(
        server.stats().completed.load(std::sync::atomic::Ordering::Relaxed),
        N as u64
    );
}

#[test]
fn option_is_the_argmax_of_the_logits() {
    let server = synthetic_server(4);
    let (status, body) = act(server.local_addr(), 0, &obs_row(3));
    assert_eq!(status, 200);
    let logits = parse_logits(&body);
    let fields = parse_json_object(body.trim()).unwrap();
    let option = fields.get("option").and_then(JsonValue::as_f64).unwrap() as usize;
    let best = logits
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    assert_eq!(option, best);
}

#[test]
fn malformed_requests_are_rejected_without_crashing_the_batch() {
    let server = synthetic_server(8);
    let addr = server.local_addr();

    let cases = [
        ("not json at all", "malformed body"),
        ("{\"obs\":\"1 2 3\"}", "wrong observation width"),
        ("{\"agent\":99,\"obs\":\"0 0 0 0 0 0\"}", "unknown agent"),
        ("{\"agent\":0,\"obs\":\"a b c d e f\"}", "non-numeric obs"),
        ("{\"agent\":0}", "missing obs"),
    ];
    for (body, what) in cases {
        let (status, resp) =
            http_request("POST", &format!("http://{addr}/act"), body).expect("request sent");
        assert_eq!(status, 400, "{what}: got {status} {resp}");
    }

    // The server still answers a good request afterwards.
    let (status, _) = act(addr, 0, &obs_row(1));
    assert_eq!(status, 200);
}

#[test]
fn info_and_stats_describe_the_policy_and_traffic() {
    let server = synthetic_server(8);
    let addr = server.local_addr();
    let _ = act(addr, 0, &obs_row(1));

    let (status, body) =
        http_request("GET", &format!("http://{addr}/info"), "").expect("GET /info");
    assert_eq!(status, 200);
    let info = parse_json_object(body.trim()).unwrap();
    assert_eq!(info.get("obs_dim").and_then(JsonValue::as_f64), Some(OBS as f64));
    assert_eq!(info.get("agents").and_then(JsonValue::as_f64), Some(AGENTS as f64));
    assert_eq!(info.get("checkpoint").and_then(JsonValue::as_f64), Some(0.0));
    assert_eq!(
        info.get("kernel_mode").and_then(|v| v.as_str().map(str::to_string)),
        Some(hero_autograd::kernel_mode().to_string())
    );

    let (status, body) =
        http_request("GET", &format!("http://{addr}/stats"), "").expect("GET /stats");
    assert_eq!(status, 200);
    let stats = parse_json_object(body.trim()).unwrap();
    assert_eq!(stats.get("completed").and_then(JsonValue::as_f64), Some(1.0));
    assert!(stats.get("mean_occupancy").and_then(JsonValue::as_f64).unwrap() >= 1.0);
}

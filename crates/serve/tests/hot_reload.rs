//! Hot-reload robustness: `POST /reload` must atomically swap to the
//! newest valid checkpoint, fall back past corrupt files, refuse
//! kernel-mode-mismatched checkpoints with the typed error while the old
//! policy keeps serving, and never drop or corrupt an in-flight request.

use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use hero_autograd::serialize::save_sections;
use hero_autograd::{KernelMode, TensorPool};
use hero_core::{HeroAgent, HeroConfig};
use hero_rl::snapshot::Codec;
use hero_serve::{start, BatchOptions, ServeConfig, ServePolicy};
use hero_telemetry::emit::{parse_json_object, JsonValue};
use hero_telemetry::http::http_request;
use rand::rngs::StdRng;
use rand::SeedableRng;

const OBS: usize = 5;
const HIDDEN: usize = 8;
const AGENTS: usize = 2;

/// Builds the flat section list a trainer checkpoint carries for the
/// parts the serving daemon reads: `kernel_mode`, `team/last_options`,
/// and per-agent parameter tables.
fn checkpoint_sections(seed: u64, mode: KernelMode) -> Vec<(String, Vec<u8>)> {
    let cfg = HeroConfig {
        hidden: HIDDEN,
        ..HeroConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sections = vec![("kernel_mode".to_string(), vec![mode.to_byte()])];
    let mut last = Vec::new();
    vec![0usize; AGENTS].encode(&mut last);
    sections.push(("team/last_options".to_string(), last));
    for k in 0..AGENTS {
        let agent = HeroAgent::new(OBS, AGENTS - 1, cfg.clone(), &mut rng);
        sections.extend(
            agent
                .save_state()
                .into_iter()
                .map(|(name, bytes)| (format!("agent{k}/{name}"), bytes)),
        );
    }
    sections
}

fn write_checkpoint(dir: &Path, index: u64, seed: u64, mode: KernelMode) {
    let path = dir.join(format!("ckpt-{index:08}.hero"));
    save_sections(&path, &checkpoint_sections(seed, mode)).expect("checkpoint written");
}

fn temp_registry(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "hero-serve-reload-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("registry dir");
    dir
}

fn serve_registry(dir: &Path) -> hero_serve::HeroServer {
    start(ServeConfig {
        checkpoint_dir: Some(dir.to_path_buf()),
        batch: BatchOptions {
            max_batch: 8,
            deadline: Duration::from_micros(500),
        },
        ..ServeConfig::default()
    })
    .expect("server starts from registry")
}

fn obs_row(salt: u64) -> Vec<f32> {
    (0..OBS)
        .map(|i| ((salt * 13 + i as u64 * 5) % 200) as f32 / 100.0 - 1.0)
        .collect()
}

fn act(addr: std::net::SocketAddr, obs: &[f32]) -> (u16, String) {
    let obs_str: Vec<String> = obs.iter().map(f32::to_string).collect();
    let body = format!("{{\"agent\":0,\"obs\":\"{}\"}}", obs_str.join(" "));
    http_request("POST", &format!("http://{addr}/act"), &body).expect("request reaches server")
}

fn served_checkpoint(body: &str) -> u64 {
    parse_json_object(body.trim())
        .unwrap()
        .get("checkpoint")
        .and_then(JsonValue::as_f64)
        .expect("response carries its checkpoint index") as u64
}

#[test]
fn reload_swaps_to_the_newest_checkpoint() {
    let dir = temp_registry("swap");
    write_checkpoint(&dir, 0, 100, KernelMode::Strict);
    let server = serve_registry(&dir);
    let addr = server.local_addr();
    assert_eq!(server.checkpoint(), 0);

    let obs = obs_row(1);
    let (_, body) = act(addr, &obs);
    let before = parse_json_object(body.trim()).unwrap();
    assert_eq!(served_checkpoint(&body), 0);

    write_checkpoint(&dir, 1, 200, KernelMode::Strict);
    let (status, reload_body) =
        http_request("POST", &format!("http://{addr}/reload"), "").expect("POST /reload");
    assert_eq!(status, 200, "{reload_body}");
    assert_eq!(server.checkpoint(), 1);

    // Same observation, new policy: the answer must now match checkpoint
    // 1's weights (and differ from checkpoint 0's — different seeds).
    let (_, body) = act(addr, &obs);
    assert_eq!(served_checkpoint(&body), 1);
    let after = parse_json_object(body.trim()).unwrap();
    assert_ne!(
        before.get("logits").and_then(JsonValue::as_str),
        after.get("logits").and_then(JsonValue::as_str),
        "reload did not change the served weights"
    );

    let local = {
        let sections = checkpoint_sections(200, KernelMode::Strict);
        ServePolicy::from_sections(1, &sections).expect("local policy loads")
    };
    let mut pool = TensorPool::new();
    let expect = local.infer(0, &[obs.as_slice()], &mut pool);
    let served: Vec<u32> = after
        .get("logits")
        .and_then(JsonValue::as_str)
        .unwrap()
        .split(' ')
        .map(|t| t.parse::<f32>().unwrap().to_bits())
        .collect();
    let expect_bits: Vec<u32> = expect[0].iter().map(|v| v.to_bits()).collect();
    assert_eq!(served, expect_bits);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_newest_checkpoint_falls_back_to_an_older_valid_one() {
    let dir = temp_registry("corrupt");
    write_checkpoint(&dir, 0, 100, KernelMode::Strict);
    let server = serve_registry(&dir);
    let addr = server.local_addr();

    // A newer file full of garbage: the registry scan must skip it and
    // reload the newest *valid* checkpoint.
    std::fs::write(dir.join("ckpt-00000001.hero"), b"not a checkpoint at all")
        .expect("garbage written");
    let (status, body) =
        http_request("POST", &format!("http://{addr}/reload"), "").expect("POST /reload");
    assert_eq!(status, 200, "{body}");
    let fields = parse_json_object(body.trim()).unwrap();
    assert!(
        fields.get("corrupt_skipped").and_then(JsonValue::as_f64).unwrap() >= 1.0,
        "reload did not report the skipped corrupt file: {body}"
    );
    assert_eq!(server.checkpoint(), 0);

    let (status, _) = act(addr, &obs_row(2));
    assert_eq!(status, 200, "server stopped serving after a corrupt reload");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kernel_mode_mismatch_is_refused_and_the_old_policy_keeps_serving() {
    let dir = temp_registry("mode");
    write_checkpoint(&dir, 0, 100, KernelMode::Strict);
    let server = serve_registry(&dir);
    let addr = server.local_addr();

    // This build serves strict kernels; a fast-math checkpoint must be
    // refused with the typed mismatch error, not served cross-mode.
    write_checkpoint(&dir, 1, 200, KernelMode::Fast);
    let (status, body) =
        http_request("POST", &format!("http://{addr}/reload"), "").expect("POST /reload");
    assert_eq!(status, 409, "cross-mode checkpoint was accepted: {body}");
    assert!(
        body.contains("kernel"),
        "409 body does not name the kernel-mode mismatch: {body}"
    );
    assert_eq!(server.checkpoint(), 0, "policy slot changed on a refused reload");
    assert_eq!(
        server.stats().reload_rejected.load(Ordering::Relaxed),
        1
    );

    let (status, body) = act(addr, &obs_row(3));
    assert_eq!(status, 200, "old policy stopped serving: {body}");
    assert_eq!(served_checkpoint(&body), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reload_under_load_drops_no_requests() {
    let dir = temp_registry("underload");
    write_checkpoint(&dir, 0, 100, KernelMode::Strict);
    let server = serve_registry(&dir);
    let addr = server.local_addr();
    write_checkpoint(&dir, 1, 200, KernelMode::Strict);

    let stop = Arc::new(AtomicBool::new(false));
    const CLIENTS: usize = 4;
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut sent = 0u64;
                let mut ok = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (status, body) = act(addr, &obs_row(c as u64));
                    sent += 1;
                    if status == 200 {
                        // Every answer names the checkpoint that served
                        // it — always one of the two valid versions,
                        // never a torn state.
                        let ckpt = served_checkpoint(&body);
                        assert!(ckpt <= 1, "impossible checkpoint {ckpt}");
                        ok += 1;
                    }
                }
                (sent, ok)
            })
        })
        .collect();

    // Hammer reloads while the clients run.
    let mut reloads = 0;
    for _ in 0..10 {
        let (status, body) =
            http_request("POST", &format!("http://{addr}/reload"), "").expect("POST /reload");
        assert_eq!(status, 200, "{body}");
        reloads += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);

    let mut sent = 0;
    let mut ok = 0;
    for c in clients {
        let (s, o) = c.join().expect("client thread");
        sent += s;
        ok += o;
    }
    assert!(sent > 0, "clients never got a request off");
    assert_eq!(ok, sent, "{} of {sent} requests dropped during reload", sent - ok);
    assert_eq!(server.stats().reloads.load(Ordering::Relaxed), reloads);
    assert_eq!(server.stats().errors.load(Ordering::Relaxed), 0);

    let _ = std::fs::remove_dir_all(&dir);
}

//! `hero-serve`: serve the newest checkpoint in a registry (or a
//! synthetic policy) as a micro-batching observation→action HTTP
//! endpoint. See DESIGN.md "Serving" and `hero-serve --help`.

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use hero_autograd::KernelMode;
use hero_serve::{start, BatchOptions, ServeConfig};
use hero_telemetry::registry::TelemetryConfig;

const USAGE: &str = "\
hero-serve: micro-batching HERO policy-serving daemon

usage: hero-serve [flags]

  --checkpoint-dir DIR     serve the newest valid v2 checkpoint in DIR
  --synthetic OxHxA        serve a random policy (obs x hidden x agents)
                           instead of a checkpoint, e.g. 128x256x2
  --addr HOST:PORT         bind address (default 127.0.0.1:9600; port 0
                           binds an ephemeral port)
  --max-batch N            rows coalesced per forward pass (default 32;
                           1 = request-at-a-time baseline)
  --batch-deadline-us N    longest a batch waits for more rows (default
                           2000)
  --kernel-mode MODE       strict (default) or fast (needs a
                           --features fast-math build)
  --gemm-threads N         matmul worker threads in fast mode (default 1)
  --out DIR                write serve_addr discovery file and telemetry
                           outputs into DIR
  --seed N                 synthetic policy weight seed (default 0)

One of --checkpoint-dir / --synthetic is required.
";

struct Args {
    addr: String,
    checkpoint_dir: Option<PathBuf>,
    synthetic: Option<(usize, usize, usize)>,
    max_batch: usize,
    batch_deadline_us: u64,
    kernel_mode: KernelMode,
    gemm_threads: usize,
    out: Option<PathBuf>,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: "127.0.0.1:9600".into(),
        checkpoint_dir: None,
        synthetic: None,
        max_batch: 32,
        batch_deadline_us: 2000,
        kernel_mode: KernelMode::Strict,
        gemm_threads: 1,
        out: None,
        seed: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => out.addr = value,
            "--checkpoint-dir" => out.checkpoint_dir = Some(PathBuf::from(value)),
            "--synthetic" => {
                let dims: Vec<usize> = value
                    .split('x')
                    .map(|t| t.parse().map_err(|_| format!("--synthetic {value}: bad dim {t:?}")))
                    .collect::<Result<_, _>>()?;
                match dims.as_slice() {
                    [o, h, a] if *o > 0 && *h > 0 && *a > 0 => {
                        out.synthetic = Some((*o, *h, *a));
                    }
                    _ => return Err(format!("--synthetic {value}: expected OBSxHIDDENxAGENTS")),
                }
            }
            "--max-batch" => {
                out.max_batch = value
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--max-batch {value}: expected an integer >= 1"))?;
            }
            "--batch-deadline-us" => {
                out.batch_deadline_us = value
                    .parse()
                    .map_err(|_| format!("--batch-deadline-us {value}: expected microseconds"))?;
            }
            "--kernel-mode" => {
                out.kernel_mode = value
                    .parse()
                    .map_err(|e| format!("--kernel-mode {value}: {e}"))?;
            }
            "--gemm-threads" => {
                out.gemm_threads = value
                    .parse()
                    .map_err(|_| format!("--gemm-threads {value}: expected a thread count"))?;
            }
            "--out" => out.out = Some(PathBuf::from(value)),
            "--seed" => {
                out.seed = value
                    .parse()
                    .map_err(|_| format!("--seed {value}: expected an integer"))?;
            }
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if out.checkpoint_dir.is_none() && out.synthetic.is_none() {
        return Err(format!(
            "one of --checkpoint-dir / --synthetic is required\n\n{USAGE}"
        ));
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("hero-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };

    hero_autograd::set_gemm_threads(args.gemm_threads.max(1));
    if let Err(e) = hero_autograd::set_kernel_mode(args.kernel_mode) {
        eprintln!("hero-serve: --kernel-mode {}: {e}", args.kernel_mode);
        return ExitCode::FAILURE;
    }

    // Telemetry lives for the process: /metrics serves the live quantile
    // plane (latency, occupancy, queue depth), and --out persists the
    // final snapshot on exit.
    let guard = hero_telemetry::install(TelemetryConfig {
        run_label: "serve".into(),
        out_dir: args.out.clone(),
        ..TelemetryConfig::default()
    });

    let cfg = ServeConfig {
        addr: args.addr,
        checkpoint_dir: args.checkpoint_dir,
        synthetic: args.synthetic,
        synthetic_seed: args.seed,
        batch: BatchOptions {
            max_batch: args.max_batch,
            deadline: Duration::from_micros(args.batch_deadline_us),
        },
        registry: Some(Arc::clone(guard.registry())),
    };
    let server = match start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hero-serve: {e}");
            return ExitCode::FAILURE;
        }
    };

    let addr = server.local_addr();
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir)
            .and_then(|()| std::fs::write(dir.join("serve_addr"), format!("{addr}\n")))
        {
            eprintln!("hero-serve: writing serve_addr: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "hero-serve listening on http://{addr} (checkpoint {}, max-batch {}, deadline {}us, {} kernels)",
        server.checkpoint(),
        args.max_batch,
        args.batch_deadline_us,
        hero_autograd::kernel_mode()
    );
    server.wait();
    println!("hero-serve: shutdown requested, exiting");
    ExitCode::SUCCESS
}

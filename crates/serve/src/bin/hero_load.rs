//! `hero-load`: open-loop load generator for `hero-serve`.
//!
//! Requests arrive on a fixed schedule (`--rate` per second), not after
//! the previous response — so a slow server builds a queue instead of
//! slowing the offered load, and the reported latency includes the
//! queueing delay a real open-loop client would see (no coordinated
//! omission). `--concurrency` worker threads pull arrival tickets from a
//! shared counter; each ticket `i` is due at `start + i/rate`, and a
//! worker sleeps until its ticket is due before firing.
//!
//! Prints one JSON summary line on stdout:
//! `{"sent":N,"completed":N,"errors":N,"elapsed_s":S,"rps":R,
//!   "p50_us":U,"p95_us":U,"p99_us":U,"mean_batch":B}`
//! and exits nonzero when no request completed.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hero_telemetry::emit::{parse_json_object, JsonValue};
use hero_telemetry::http::http_request;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const USAGE: &str = "\
hero-load: open-loop load generator for hero-serve

usage: hero-load --addr HOST:PORT [flags]

  --addr HOST:PORT   hero-serve address (required)
  --rate N           offered load, requests per second (default 200)
  --requests N       total requests to send (default 1000)
  --concurrency N    worker threads / max in-flight (default 16)
  --obs-dim N        observation width (default: ask GET /info)
  --agents N         spread requests across agents 0..N (default 1)
  --seed N           observation-content seed (default 1)
";

struct Args {
    addr: String,
    rate: f64,
    requests: u64,
    concurrency: usize,
    obs_dim: Option<usize>,
    agents: usize,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: String::new(),
        rate: 200.0,
        requests: 1000,
        concurrency: 16,
        obs_dim: None,
        agents: 1,
        seed: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            print!("{USAGE}");
            std::process::exit(0);
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--addr" => out.addr = value,
            "--rate" => {
                out.rate = value
                    .parse()
                    .ok()
                    .filter(|&r: &f64| r > 0.0)
                    .ok_or_else(|| format!("--rate {value}: expected requests/s > 0"))?;
            }
            "--requests" => {
                out.requests = value
                    .parse()
                    .map_err(|_| format!("--requests {value}: expected a count"))?;
            }
            "--concurrency" => {
                out.concurrency = value
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--concurrency {value}: expected an integer >= 1"))?;
            }
            "--obs-dim" => {
                out.obs_dim = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--obs-dim {value}: expected a width"))?,
                );
            }
            "--agents" => {
                out.agents = value
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n >= 1)
                    .ok_or_else(|| format!("--agents {value}: expected an integer >= 1"))?;
            }
            "--seed" => {
                out.seed = value
                    .parse()
                    .map_err(|_| format!("--seed {value}: expected an integer"))?;
            }
            other => return Err(format!("unknown flag {other}\n\n{USAGE}")),
        }
    }
    if out.addr.is_empty() {
        return Err(format!("--addr is required\n\n{USAGE}"));
    }
    Ok(out)
}

fn discover_obs_dim(addr: &str) -> Result<usize, String> {
    let (status, body) = http_request("GET", &format!("http://{addr}/info"), "")
        .map_err(|e| format!("GET /info on {addr}: {e}"))?;
    if status != 200 {
        return Err(format!("GET /info on {addr}: status {status}"));
    }
    let fields = parse_json_object(body.trim()).map_err(|e| format!("/info body: {e}"))?;
    fields
        .get("obs_dim")
        .and_then(JsonValue::as_f64)
        .map(|v| v as usize)
        .ok_or_else(|| "/info body lacks obs_dim".into())
}

struct WorkerOut {
    completed: u64,
    errors: u64,
    latencies_us: Vec<f64>,
    batch_rows: u64,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("hero-load: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let obs_dim = match args.obs_dim {
        Some(d) => d,
        None => match discover_obs_dim(&args.addr) {
            Ok(d) => d,
            Err(msg) => {
                eprintln!("hero-load: {msg}");
                return ExitCode::FAILURE;
            }
        },
    };

    // Pre-render request bodies so the hot loop only does I/O; a few
    // distinct observations are enough to defeat trivial caching while
    // keeping the generator cheap on a small box.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let bodies: Vec<String> = (0..64)
        .map(|i| {
            let obs: Vec<String> = (0..obs_dim)
                .map(|_| format!("{:.4}", rng.gen_range(-1.0f32..1.0)))
                .collect();
            format!(
                "{{\"agent\":{},\"obs\":\"{}\"}}",
                i % args.agents,
                obs.join(" ")
            )
        })
        .collect();
    let bodies = Arc::new(bodies);

    let ticket = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let period = Duration::from_secs_f64(1.0 / args.rate);
    let url = format!("http://{}/act", args.addr);

    let workers: Vec<_> = (0..args.concurrency)
        .map(|_| {
            let ticket = Arc::clone(&ticket);
            let bodies = Arc::clone(&bodies);
            let url = url.clone();
            let total = args.requests;
            std::thread::spawn(move || {
                let mut out = WorkerOut {
                    completed: 0,
                    errors: 0,
                    latencies_us: Vec::new(),
                    batch_rows: 0,
                };
                loop {
                    let i = ticket.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        return out;
                    }
                    // Open-loop: ticket i is due at start + i*period, and
                    // latency counts from the due time, so queueing delay
                    // caused by a slow server is charged to the server.
                    let due = start + period.mul_f64(i as f64);
                    let now = Instant::now();
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    let body = &bodies[(i as usize) % bodies.len()];
                    match http_request("POST", &url, body) {
                        Ok((200, resp)) => {
                            out.completed += 1;
                            out.latencies_us.push(due.elapsed().as_secs_f64() * 1e6);
                            if let Ok(fields) = parse_json_object(resp.trim()) {
                                if let Some(b) =
                                    fields.get("batch").and_then(JsonValue::as_f64)
                                {
                                    out.batch_rows += b as u64;
                                }
                            }
                        }
                        Ok((status, resp)) => {
                            out.errors += 1;
                            eprintln!(
                                "hero-load: status {status}: {}",
                                resp.lines().next().unwrap_or("")
                            );
                        }
                        Err(e) => {
                            out.errors += 1;
                            eprintln!("hero-load: {e}");
                        }
                    }
                }
            })
        })
        .collect();

    let mut completed = 0u64;
    let mut errors = 0u64;
    let mut batch_rows = 0u64;
    let mut latencies: Vec<f64> = Vec::new();
    for w in workers {
        let out = w.join().expect("load worker panicked");
        completed += out.completed;
        errors += out.errors;
        batch_rows += out.batch_rows;
        latencies.extend(out.latencies_us);
    }
    let elapsed = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let mean_batch = if completed == 0 {
        0.0
    } else {
        batch_rows as f64 / completed as f64
    };
    println!(
        "{{\"sent\":{},\"completed\":{completed},\"errors\":{errors},\
         \"elapsed_s\":{elapsed:.3},\"rps\":{:.2},\"p50_us\":{:.1},\
         \"p95_us\":{:.1},\"p99_us\":{:.1},\"mean_batch\":{mean_batch:.2}}}",
        args.requests.min(ticket.load(Ordering::Relaxed)),
        completed as f64 / elapsed.max(1e-9),
        pct(0.50),
        pct(0.95),
        pct(0.99),
    );
    if completed == 0 {
        eprintln!("hero-load: no request completed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

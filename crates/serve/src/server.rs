//! The HTTP surface of the serving daemon.
//!
//! Routes (all bodies are single-line JSON objects, parseable by
//! [`hero_telemetry::emit::parse_json_object`]):
//!
//! * `POST /act` — `{"agent": 0, "obs": "0.1 -0.2 ..."}` → the request
//!   joins the current micro-batch and answers
//!   `{"option": N, "logits": "...", "checkpoint": N, "batch": N}`.
//! * `POST /reload` — atomically swap in the newest valid checkpoint
//!   from the registry; 409 with the typed error text when the newest
//!   valid checkpoint refuses to load (kernel-mode mismatch) or the
//!   registry is empty. The old policy keeps serving either way.
//! * `POST /shutdown` — ask the process to exit ([`HeroServer::wait`]
//!   returns); used by CI for clean teardown.
//! * `GET /info` — policy metadata (dims, checkpoint, kernel mode).
//! * `GET /stats` — raw serving counters (occupancy, queue, reloads).
//! * `GET /metrics`, `GET /snapshot` — the live telemetry registry in
//!   Prometheus / JSONL form, when a registry is attached.

use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use hero_autograd::CheckpointError;
use hero_telemetry::emit::{self, JsonValue};
use hero_telemetry::http::{serve_http, Handler, HttpServer, Request, Response};
use hero_telemetry::registry::Registry;
use parking_lot::RwLock;

use crate::batch::{BatchOptions, Batcher, Pending, ServeStats};
use crate::policy::ServePolicy;

/// How a server failed to start or reload.
#[derive(Debug)]
pub enum ServeError {
    /// Bind or socket error.
    Io(io::Error),
    /// The newest valid checkpoint refused to load.
    Checkpoint(CheckpointError),
    /// The registry directory holds no loadable checkpoint.
    NoCheckpoint(PathBuf),
    /// Hot-reload was requested on a policy with no backing registry.
    NoRegistry,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Checkpoint(e) => write!(f, "checkpoint refused: {e}"),
            ServeError::NoCheckpoint(dir) => {
                write!(f, "no loadable checkpoint in {}", dir.display())
            }
            ServeError::NoRegistry => {
                write!(f, "synthetic policy: no checkpoint registry to reload from")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e)
    }
}

/// Server configuration.
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:9600`; port `0` for ephemeral).
    pub addr: String,
    /// Checkpoint registry directory (`None` only with `synthetic`).
    pub checkpoint_dir: Option<PathBuf>,
    /// Serve a randomly initialised `(obs_dim, hidden, n_agents)` policy
    /// instead of a checkpoint (benchmarks).
    pub synthetic: Option<(usize, usize, usize)>,
    /// Seed for the synthetic policy's weights.
    pub synthetic_seed: u64,
    /// Micro-batching bounds.
    pub batch: BatchOptions,
    /// Telemetry registry to expose on `/metrics` + `/snapshot`.
    pub registry: Option<Arc<Registry>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            checkpoint_dir: None,
            synthetic: None,
            synthetic_seed: 0,
            batch: BatchOptions::default(),
            registry: None,
        }
    }
}

/// A running serving daemon. Dropping it stops the listener, drains the
/// dispatcher, and joins both threads.
pub struct HeroServer {
    // Field order is drop order: stop accepting connections first, then
    // let the dispatcher drain.
    http: HttpServer,
    _batcher: Batcher,
    policy: Arc<RwLock<Arc<ServePolicy>>>,
    stats: Arc<ServeStats>,
    shutdown: Arc<AtomicBool>,
    checkpoint_dir: Option<PathBuf>,
}

/// Longest a connection thread waits for its micro-batch to answer.
const REPLY_TIMEOUT: Duration = Duration::from_secs(10);

/// Loads the initial policy and starts the dispatcher and listener.
///
/// # Errors
///
/// [`ServeError::NoCheckpoint`] when the registry is empty,
/// [`ServeError::Checkpoint`] when the newest valid checkpoint refuses
/// to load, [`ServeError::Io`] on bind failure.
pub fn start(cfg: ServeConfig) -> Result<HeroServer, ServeError> {
    let initial = match (cfg.synthetic, &cfg.checkpoint_dir) {
        (Some((obs, hidden, agents)), _) => {
            ServePolicy::synthetic(obs, hidden, agents, cfg.synthetic_seed)
        }
        (None, Some(dir)) => ServePolicy::load_newest(dir)?
            .ok_or_else(|| ServeError::NoCheckpoint(dir.clone()))?
            .0,
        (None, None) => return Err(ServeError::NoCheckpoint(PathBuf::from("<unset>"))),
    };
    let policy = Arc::new(RwLock::new(Arc::new(initial)));
    let stats = Arc::new(ServeStats::default());
    let batcher = Batcher::start(Arc::clone(&policy), cfg.batch, Arc::clone(&stats));
    let shutdown = Arc::new(AtomicBool::new(false));

    let route_policy = Arc::clone(&policy);
    let route_stats = Arc::clone(&stats);
    let route_shutdown = Arc::clone(&shutdown);
    let route_dir = cfg.checkpoint_dir.clone();
    let route_registry = cfg.registry.clone();
    let submit = batcher.sender();
    let max_batch = cfg.batch.max_batch.max(1);
    let handler: Handler = Arc::new(move |req: &Request| {
        route(
            req,
            &route_policy,
            &route_stats,
            &route_shutdown,
            route_dir.as_deref(),
            route_registry.as_deref(),
            &submit,
            max_batch,
        )
    });
    let http = serve_http(&cfg.addr, "hero-serve", handler)?;
    Ok(HeroServer {
        http,
        _batcher: batcher,
        policy,
        stats,
        shutdown,
        checkpoint_dir: cfg.checkpoint_dir,
    })
}

impl HeroServer {
    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.http.local_addr()
    }

    /// Serving counters.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Checkpoint index currently being served.
    pub fn checkpoint(&self) -> u64 {
        self.policy.read().checkpoint()
    }

    /// Attempts a hot-reload from the registry, exactly as
    /// `POST /reload` does.
    ///
    /// # Errors
    ///
    /// See [`reload_policy`].
    pub fn reload(&self) -> Result<(u64, usize), ServeError> {
        reload_policy(&self.policy, &self.stats, self.checkpoint_dir.as_deref())
    }

    /// Blocks until `POST /shutdown` is received (or
    /// [`HeroServer::request_shutdown`] is called).
    pub fn wait(&self) {
        while !self.shutdown.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Asks [`HeroServer::wait`] to return.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Swaps the policy slot to the newest valid checkpoint. In-flight
/// waves hold their own `Arc` snapshot, so the swap never affects a
/// request already dispatched; a refused checkpoint leaves the slot
/// untouched and the old policy serving.
fn reload_policy(
    slot: &RwLock<Arc<ServePolicy>>,
    stats: &ServeStats,
    dir: Option<&std::path::Path>,
) -> Result<(u64, usize), ServeError> {
    let Some(dir) = dir else {
        stats.reload_rejected.fetch_add(1, Ordering::Relaxed);
        hero_rl::telemetry::counter_add("serve/reload_rejected", 1);
        return Err(ServeError::NoRegistry);
    };
    let outcome = match ServePolicy::load_newest(dir) {
        Ok(Some((policy, corrupt_skipped))) => {
            let index = policy.checkpoint();
            *slot.write() = Arc::new(policy);
            Ok((index, corrupt_skipped))
        }
        Ok(None) => Err(ServeError::NoCheckpoint(dir.to_path_buf())),
        Err(e) => Err(ServeError::Checkpoint(e)),
    };
    match &outcome {
        Ok(_) => {
            stats.reloads.fetch_add(1, Ordering::Relaxed);
            hero_rl::telemetry::counter_add("serve/reloads", 1);
        }
        Err(_) => {
            stats.reload_rejected.fetch_add(1, Ordering::Relaxed);
            hero_rl::telemetry::counter_add("serve/reload_rejected", 1);
        }
    }
    outcome
}

#[allow(clippy::too_many_arguments)]
fn route(
    req: &Request,
    policy: &RwLock<Arc<ServePolicy>>,
    stats: &ServeStats,
    shutdown: &AtomicBool,
    dir: Option<&std::path::Path>,
    registry: Option<&Registry>,
    submit: &channel::Sender<Pending>,
    max_batch: usize,
) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/act") => act(req, stats, submit),
        ("POST", "/reload") => match reload_policy(policy, stats, dir) {
            Ok((checkpoint, corrupt_skipped)) => Response::ok(format!(
                "{{\"reloaded\":true,\"checkpoint\":{checkpoint},\
                 \"corrupt_skipped\":{corrupt_skipped}}}\n"
            ))
            .content_type("application/json"),
            Err(e) => Response::with_status(
                409,
                format!("{{\"reloaded\":false,\"error\":\"{}\"}}\n", emit::escape_json(&e.to_string())),
            )
            .content_type("application/json"),
        },
        ("POST", "/shutdown") => {
            shutdown.store(true, Ordering::Relaxed);
            Response::ok("shutting down\n")
        }
        ("GET", "/info") => {
            let p = policy.read().clone();
            Response::ok(format!(
                "{{\"obs_dim\":{},\"agents\":{},\"options\":{},\"checkpoint\":{},\
                 \"kernel_mode\":\"{}\",\"max_batch\":{max_batch}}}\n",
                p.obs_dim(),
                p.n_agents(),
                p.n_options(),
                p.checkpoint(),
                p.kernel_mode()
            ))
            .content_type("application/json")
        }
        ("GET", "/stats") => {
            let batches = stats.batches.load(Ordering::Relaxed);
            let rows = stats.rows_batched.load(Ordering::Relaxed);
            let mean_occupancy = if batches == 0 {
                0.0
            } else {
                rows as f64 / batches as f64
            };
            Response::ok(format!(
                "{{\"requests\":{},\"completed\":{},\"errors\":{},\"batches\":{batches},\
                 \"rows_batched\":{rows},\"mean_occupancy\":{mean_occupancy:.4},\
                 \"max_batch_rows\":{},\"queue_depth\":{},\"reloads\":{},\
                 \"reload_rejected\":{},\"checkpoint\":{}}}\n",
                stats.requests.load(Ordering::Relaxed),
                stats.completed.load(Ordering::Relaxed),
                stats.errors.load(Ordering::Relaxed),
                stats.max_batch_rows.load(Ordering::Relaxed),
                stats.queue_depth.load(Ordering::Relaxed),
                stats.reloads.load(Ordering::Relaxed),
                stats.reload_rejected.load(Ordering::Relaxed),
                policy.read().checkpoint(),
            ))
            .content_type("application/json")
        }
        ("GET", "/metrics") => match registry {
            Some(r) => Response::ok(emit::to_prometheus(&r.snapshot()))
                .content_type("text/plain; version=0.0.4; charset=utf-8"),
            None => Response::with_status(404, "no telemetry registry attached\n"),
        },
        ("GET", "/snapshot") => match registry {
            Some(r) => Response::ok(emit::to_jsonl(&r.snapshot())),
            None => Response::with_status(404, "no telemetry registry attached\n"),
        },
        ("GET", "/") => Response::ok(
            "hero-serve policy daemon\n\
             POST /act       {\"agent\":0,\"obs\":\"f f f ...\"} -> option + logits\n\
             POST /reload    swap in the newest valid checkpoint\n\
             POST /shutdown  clean exit\n\
             GET  /info      policy metadata\n\
             GET  /stats     serving counters\n\
             GET  /metrics   Prometheus exposition (when telemetry attached)\n",
        ),
        (_, path) => Response::with_status(404, format!("no route for {path}\n")),
    }
}

/// `POST /act`: parse, enqueue, park until the micro-batch answers.
fn act(req: &Request, stats: &ServeStats, submit: &channel::Sender<Pending>) -> Response {
    let started = Instant::now();
    let body = String::from_utf8_lossy(&req.body);
    let fields = match emit::parse_json_object(body.trim()) {
        Ok(f) => f,
        Err(e) => {
            return Response::with_status(400, format!("malformed request body: {e}\n"));
        }
    };
    let agent = match fields.get("agent").map(JsonValue::as_f64) {
        None => 0,
        Some(Some(x)) if x >= 0.0 && x.fract() == 0.0 => x as usize,
        _ => return Response::with_status(400, "\"agent\" must be a non-negative integer\n"),
    };
    let Some(obs_str) = fields.get("obs").and_then(JsonValue::as_str) else {
        return Response::with_status(
            400,
            "missing \"obs\": expected a string of space-separated floats\n",
        );
    };
    let mut obs = Vec::new();
    for tok in obs_str.split([' ', ',']).filter(|t| !t.is_empty()) {
        match tok.parse::<f32>() {
            Ok(v) => obs.push(v),
            Err(_) => {
                return Response::with_status(400, format!("bad observation value {tok:?}\n"));
            }
        }
    }

    stats.requests.fetch_add(1, Ordering::Relaxed);
    hero_rl::telemetry::counter_add("serve/requests", 1);
    let (reply_tx, reply_rx) = channel::bounded(1);
    stats.queue_depth.fetch_add(1, Ordering::Relaxed);
    let pending = Pending {
        agent,
        obs,
        enqueued: Instant::now(),
        reply: reply_tx,
    };
    if submit.send(pending).is_err() {
        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        stats.errors.fetch_add(1, Ordering::Relaxed);
        return Response::with_status(503, "dispatcher is shut down\n");
    }
    match reply_rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(Ok(reply)) => {
            let latency_us = started.elapsed().as_secs_f64() * 1e6;
            hero_rl::telemetry::live_observe("live/serve/latency_us", latency_us);
            let logits: Vec<String> = reply.logits.iter().map(f32::to_string).collect();
            Response::ok(format!(
                "{{\"option\":{},\"logits\":\"{}\",\"checkpoint\":{},\"batch\":{}}}\n",
                reply.option,
                logits.join(" "),
                reply.checkpoint,
                reply.batch_rows
            ))
            .content_type("application/json")
        }
        Ok(Err(msg)) => {
            Response::with_status(400, format!("{}\n", msg))
        }
        Err(_) => {
            stats.errors.fetch_add(1, Ordering::Relaxed);
            Response::with_status(503, "inference timed out\n")
        }
    }
}

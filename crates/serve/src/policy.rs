//! Checkpoint → servable policy, with architecture inference.
//!
//! The trainer's checkpoints carry named parameter tables but no
//! architecture record — the trainer always reloads into a live model of
//! the same shape. The serving daemon has no such template, so it
//! *infers* one: the team size from `team/last_options`, and the
//! observation width, hidden width, and option count from the stored
//! shapes of agent 0's actor weights. The weights then load through
//! [`HeroAgent::load_state`], the same shape-validated, staged path the
//! trainer resumes through, so a table that contradicts the inferred
//! architecture fails loudly instead of serving garbage.

use std::path::Path;

use hero_autograd::serialize::{self, decode_param_table};
use hero_autograd::{CheckpointError, KernelMode, TensorPool};
use hero_core::checkpoint::load_latest;
use hero_core::{HeroAgent, HeroConfig};
use hero_rl::snapshot::{Codec, Reader};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An immutable, servable HERO policy: one high-level actor plus
/// opponent-model nets per agent, loaded from one checkpoint.
///
/// The policy is read-only after construction — serving threads share it
/// behind an `Arc` and hot-reload swaps the whole `Arc`, so a batch that
/// started against one checkpoint finishes against that checkpoint.
pub struct ServePolicy {
    agents: Vec<HeroAgent>,
    checkpoint: u64,
    kernel_mode: KernelMode,
    obs_dim: usize,
    n_options: usize,
}

impl ServePolicy {
    /// Builds a policy from decoded checkpoint sections.
    ///
    /// Refuses a checkpoint written under a different GEMM kernel mode
    /// than the one active in this process (the same typed refusal the
    /// trainer uses on resume): serving fast-math weights through strict
    /// kernels — or vice versa — would silently diverge from the
    /// training-time policy.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::KernelModeMismatch`] on a cross-mode
    /// checkpoint; [`CheckpointError::MissingSection`] /
    /// [`CheckpointError::Malformed`] / shape mismatches on a section
    /// list that is not a HERO team snapshot.
    pub fn from_sections(
        checkpoint: u64,
        sections: &[(String, Vec<u8>)],
    ) -> Result<Self, CheckpointError> {
        let saved_mode = match serialize::find_section(sections, "kernel_mode") {
            Some([byte]) => KernelMode::from_byte(*byte).ok_or_else(|| {
                CheckpointError::Malformed(format!("unknown kernel mode byte {byte}"))
            })?,
            Some(other) => {
                return Err(CheckpointError::Malformed(format!(
                    "kernel_mode section must be 1 byte, found {}",
                    other.len()
                )))
            }
            // Pre-fast-math checkpoints carry no section and are strict.
            None => KernelMode::Strict,
        };
        let active_mode = hero_autograd::kernel_mode();
        if saved_mode != active_mode {
            return Err(CheckpointError::KernelModeMismatch {
                saved: saved_mode.as_str().to_string(),
                active: active_mode.as_str().to_string(),
            });
        }

        let last_blob = serialize::require_section(sections, "team/last_options")?;
        let mut r = Reader::new(last_blob);
        let last_options: Vec<usize> = Codec::decode(&mut r).map_err(|e| {
            CheckpointError::Malformed(format!("team/last_options: {e}"))
        })?;
        let n_agents = last_options.len();
        if n_agents == 0 {
            return Err(CheckpointError::Malformed(
                "checkpoint describes a team of zero agents".into(),
            ));
        }
        let n_opponents = n_agents - 1;

        // Architecture from agent 0's actor weights: the first weight is
        // [obs_dim + n_opponents * n_options, hidden], the last is
        // [hidden, n_options].
        let actor_blob = serialize::require_section(sections, "agent0/high/params")?;
        let table = decode_param_table(actor_blob)?;
        let actor_weights: Vec<_> = table
            .iter()
            .filter(|e| e.name.starts_with("hero.actor.") && e.name.ends_with(".weight"))
            .collect();
        let (first, last) = match (actor_weights.first(), actor_weights.last()) {
            (Some(f), Some(l)) if f.shape.len() == 2 && l.shape.len() == 2 => (*f, *l),
            _ => {
                return Err(CheckpointError::Malformed(
                    "agent0/high/params holds no rank-2 hero.actor.* weights".into(),
                ))
            }
        };
        let in_width = first.shape[0];
        let hidden = first.shape[1];
        let n_options = last.shape[1];
        let obs_dim = in_width
            .checked_sub(n_opponents * n_options)
            .filter(|&d| d > 0)
            .ok_or_else(|| {
                CheckpointError::Malformed(format!(
                    "actor input width {in_width} cannot fit {n_opponents} opponents × \
                     {n_options} options"
                ))
            })?;

        let cfg = HeroConfig {
            hidden,
            ..HeroConfig::default()
        };
        // The RNG only seeds throwaway init weights; load_state replaces
        // every parameter before the policy serves a request.
        let mut rng = StdRng::seed_from_u64(0);
        let mut agents = Vec::with_capacity(n_agents);
        for k in 0..n_agents {
            let mut agent = HeroAgent::new(obs_dim, n_opponents, cfg.clone(), &mut rng);
            let prefix = format!("agent{k}/");
            let agent_sections: Vec<(String, Vec<u8>)> = sections
                .iter()
                .filter_map(|(name, bytes)| {
                    name.strip_prefix(&prefix)
                        .map(|rest| (rest.to_string(), bytes.clone()))
                })
                .collect();
            agent.load_state(&agent_sections)?;
            agents.push(agent);
        }

        Ok(ServePolicy {
            agents,
            checkpoint,
            kernel_mode: saved_mode,
            obs_dim,
            n_options,
        })
    }

    /// Loads the newest valid checkpoint in `dir` (corrupt newer files
    /// are skipped by the registry scan, exactly as on trainer resume).
    /// Returns `Ok(None)` when the directory holds no loadable
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates [`ServePolicy::from_sections`] errors for the newest
    /// *valid* checkpoint — a CRC-corrupt file falls back to an older
    /// one, but a well-formed checkpoint that refuses to load (kernel
    /// mode, shapes) is an error, not a fallback.
    pub fn load_newest(dir: &Path) -> Result<Option<(ServePolicy, usize)>, CheckpointError> {
        match load_latest(dir)? {
            None => Ok(None),
            Some(loaded) => {
                let policy = ServePolicy::from_sections(loaded.index, &loaded.sections)?;
                Ok(Some((policy, loaded.corrupt_skipped)))
            }
        }
    }

    /// A randomly initialised policy of the given size, for load
    /// benchmarks that need a realistic forward pass without a training
    /// run (`hero-serve --synthetic`). No checkpoint registry backs it,
    /// so hot-reload is refused while serving one.
    pub fn synthetic(obs_dim: usize, hidden: usize, n_agents: usize, seed: u64) -> ServePolicy {
        assert!(n_agents > 0, "a policy needs at least one agent");
        assert!(obs_dim > 0, "observation width must be positive");
        let cfg = HeroConfig {
            hidden: hidden.max(1),
            ..HeroConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let agents: Vec<HeroAgent> = (0..n_agents)
            .map(|_| HeroAgent::new(obs_dim, n_agents - 1, cfg.clone(), &mut rng))
            .collect();
        let n_options = agents[0].high_level().n_options();
        ServePolicy {
            agents,
            checkpoint: 0,
            kernel_mode: hero_autograd::kernel_mode(),
            obs_dim,
            n_options,
        }
    }

    /// Option logits for a batch of observations, all for `agent`, via
    /// the inference-only forward path ([`HeroAgent::batch_logits_in`]).
    /// Row `r` of the result corresponds to `rows[r]`.
    ///
    /// # Panics
    ///
    /// Panics when `agent` is out of range or any row is not
    /// [`ServePolicy::obs_dim`] wide — the dispatcher validates both
    /// before batching.
    pub fn infer(&self, agent: usize, rows: &[&[f32]], pool: &mut TensorPool) -> Vec<Vec<f32>> {
        self.agents[agent].batch_logits_in(rows, pool)
    }

    /// Index of the checkpoint this policy was loaded from (0 for
    /// synthetic policies).
    pub fn checkpoint(&self) -> u64 {
        self.checkpoint
    }

    /// Kernel mode the policy was saved (and is being served) under.
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel_mode
    }

    /// Observation width each request must provide.
    pub fn obs_dim(&self) -> usize {
        self.obs_dim
    }

    /// Number of agents (addressable via the request `agent` field).
    pub fn n_agents(&self) -> usize {
        self.agents.len()
    }

    /// Number of high-level options in the action space.
    pub fn n_options(&self) -> usize {
        self.n_options
    }
}

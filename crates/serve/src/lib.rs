//! `hero-serve`: a micro-batching policy-serving daemon for HERO
//! checkpoints (DESIGN.md "Serving").
//!
//! The training stack writes v2 checkpoint registries; this crate turns
//! the newest valid checkpoint into a live observation→action HTTP
//! endpoint:
//!
//! * [`policy`] — loads a checkpoint *without a model template*: agent
//!   count, layer widths, and option count are inferred from the stored
//!   parameter shapes, then the weights are loaded through the same
//!   validated path the trainer resumes through. Kernel-mode-mismatched
//!   checkpoints are refused with the existing typed error.
//! * [`batch`] — the micro-batching dispatcher: concurrent requests
//!   queue onto one channel; a dispatcher thread coalesces them up to
//!   `--max-batch` or a `--batch-deadline-us` deadline and runs ONE
//!   inference-only batched forward per agent policy, reusing a
//!   [`hero_autograd::TensorPool`] arena across batches.
//! * [`server`] — the HTTP surface (`POST /act`, `POST /reload`,
//!   `GET /info`, `GET /stats`, `/metrics`) built on the shared
//!   [`hero_telemetry::http`] machinery, with atomic hot-reload behind
//!   an `Arc` swap that never drops an in-flight request.

#![warn(missing_docs)]

pub mod batch;
pub mod policy;
pub mod server;

pub use batch::{BatchOptions, Batcher, ServeStats};
pub use policy::ServePolicy;
pub use server::{start, HeroServer, ServeConfig, ServeError};

//! The micro-batching dispatcher.
//!
//! Connection threads enqueue one [`Pending`] per `POST /act` request
//! onto an unbounded channel. A single dispatcher thread drains it in
//! waves: the first request opens a batch, and the batch closes when it
//! reaches `max_batch` rows or when `deadline` elapses since it opened —
//! whichever comes first. Each wave snapshots the current policy `Arc`
//! once (so a hot-reload mid-wave affects the *next* wave, never a
//! half-computed one), groups rows by agent, and runs ONE inference-only
//! batched forward per agent through a [`TensorPool`] arena that stays
//! warm across waves. Results fan back out over per-request reply
//! channels.
//!
//! The deadline is a latency bound on coalescing, not on inference: an
//! idle server answers a lone request after at most `deadline` of
//! waiting, while a saturated server fills batches instantly and the
//! deadline never fires. `max_batch = 1` degenerates to request-at-a-
//! time dispatch — the baseline the serving benchmark compares against.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, RecvTimeoutError, Sender};
use hero_autograd::TensorPool;
use parking_lot::RwLock;

use crate::policy::ServePolicy;

/// Dispatcher tuning: how long and how wide a batch may grow.
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Maximum rows coalesced into one forward pass (≥ 1).
    pub max_batch: usize,
    /// Longest a batch waits for more rows after its first arrival.
    pub deadline: Duration,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            max_batch: 32,
            deadline: Duration::from_micros(2000),
        }
    }
}

/// What the dispatcher answers a request with.
#[derive(Debug, Clone)]
pub struct InferReply {
    /// Greedy option index (argmax of the logits, first max wins).
    pub option: usize,
    /// Raw option logits for the request's row.
    pub logits: Vec<f32>,
    /// Checkpoint index of the policy that served the row.
    pub checkpoint: u64,
    /// Rows in the batch this request rode in (batch occupancy).
    pub batch_rows: usize,
}

/// One queued request.
pub struct Pending {
    /// Agent index the observation belongs to.
    pub agent: usize,
    /// Observation row.
    pub obs: Vec<f32>,
    /// When the request was enqueued (for queue-wait telemetry).
    pub enqueued: Instant,
    /// Where the dispatcher sends the outcome.
    pub reply: Sender<Result<InferReply, String>>,
}

/// Monotonic serving counters, shared by the dispatcher, the HTTP
/// handlers, and `GET /stats`. Plain atomics — readable without the
/// telemetry plane so tests and scripts can assert on them directly.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Requests accepted onto the queue.
    pub requests: AtomicU64,
    /// Requests answered with logits.
    pub completed: AtomicU64,
    /// Requests answered with an error (bad row, unknown agent, timeout).
    pub errors: AtomicU64,
    /// Forward-pass waves dispatched.
    pub batches: AtomicU64,
    /// Total rows across all waves (mean occupancy = rows / batches).
    pub rows_batched: AtomicU64,
    /// Largest wave dispatched so far.
    pub max_batch_rows: AtomicU64,
    /// Requests currently queued (enqueued, not yet dispatched).
    pub queue_depth: AtomicU64,
    /// Successful hot-reloads.
    pub reloads: AtomicU64,
    /// Refused hot-reloads (corrupt registry, kernel-mode mismatch, ...).
    pub reload_rejected: AtomicU64,
}

impl ServeStats {
    fn update_max(&self, rows: u64) {
        self.max_batch_rows.fetch_max(rows, Ordering::Relaxed);
    }
}

/// Handle to the dispatcher thread; dropping it drains the channel and
/// joins the thread.
pub struct Batcher {
    tx: Option<Sender<Pending>>,
    handle: Option<JoinHandle<()>>,
}

impl Batcher {
    /// Spawns the dispatcher against a hot-swappable policy slot.
    pub fn start(
        policy: Arc<RwLock<Arc<ServePolicy>>>,
        opts: BatchOptions,
        stats: Arc<ServeStats>,
    ) -> Batcher {
        let (tx, rx) = channel::unbounded::<Pending>();
        let opts = BatchOptions {
            max_batch: opts.max_batch.max(1),
            ..opts
        };
        let handle = std::thread::Builder::new()
            .name("hero-serve-batch".into())
            .spawn(move || {
                let mut pool = TensorPool::new();
                loop {
                    let first = match rx.recv() {
                        Ok(p) => p,
                        // Every sender dropped: server shutting down.
                        Err(_) => return,
                    };
                    let mut batch = vec![first];
                    if opts.max_batch > 1 {
                        let deadline = Instant::now() + opts.deadline;
                        while batch.len() < opts.max_batch {
                            let now = Instant::now();
                            if now >= deadline {
                                break;
                            }
                            match rx.recv_timeout(deadline - now) {
                                Ok(p) => batch.push(p),
                                Err(RecvTimeoutError::Timeout) => break,
                                // Serve what we already coalesced, then exit
                                // on the next recv.
                                Err(RecvTimeoutError::Disconnected) => break,
                            }
                        }
                    }
                    dispatch_wave(&policy, &stats, &mut pool, batch);
                }
            })
            .expect("spawning the dispatcher thread");
        Batcher {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// A sender connection threads enqueue requests on.
    pub fn sender(&self) -> Sender<Pending> {
        self.tx.as_ref().expect("batcher is running").clone()
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Runs one coalesced wave: snapshot the policy, group rows by agent,
/// one batched forward per agent, fan results out.
fn dispatch_wave(
    policy: &RwLock<Arc<ServePolicy>>,
    stats: &ServeStats,
    pool: &mut TensorPool,
    batch: Vec<Pending>,
) {
    let rows = batch.len() as u64;
    stats.queue_depth.fetch_sub(rows, Ordering::Relaxed);
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats.rows_batched.fetch_add(rows, Ordering::Relaxed);
    stats.update_max(rows);
    hero_rl::telemetry::counter_add("serve/batches", 1);
    hero_rl::telemetry::live_observe("live/serve/batch_occupancy", rows as f64);
    hero_rl::telemetry::gauge_set(
        "live/serve/queue_depth",
        stats.queue_depth.load(Ordering::Relaxed) as f64,
    );
    for p in &batch {
        let waited_us = p.enqueued.elapsed().as_secs_f64() * 1e6;
        hero_rl::telemetry::live_observe("live/serve/queue_us", waited_us);
    }

    // The Arc snapshot is the hot-reload atomicity contract: every row
    // of this wave is served by the same policy version.
    let policy: Arc<ServePolicy> = policy.read().clone();

    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut rejected: Vec<(usize, String)> = Vec::new();
    for (i, p) in batch.iter().enumerate() {
        if p.agent >= policy.n_agents() {
            rejected.push((
                i,
                format!("unknown agent {} (policy has {})", p.agent, policy.n_agents()),
            ));
        } else if p.obs.len() != policy.obs_dim() {
            rejected.push((
                i,
                format!(
                    "observation has {} values, policy expects {}",
                    p.obs.len(),
                    policy.obs_dim()
                ),
            ));
        } else {
            groups.entry(p.agent).or_default().push(i);
        }
    }
    for (i, msg) in rejected {
        stats.errors.fetch_add(1, Ordering::Relaxed);
        hero_rl::telemetry::counter_add("serve/errors", 1);
        let _ = batch[i].reply.send(Err(msg));
    }
    let batch_rows = batch.len();
    for (agent, idxs) in groups {
        let obs_rows: Vec<&[f32]> = idxs.iter().map(|&i| batch[i].obs.as_slice()).collect();
        let logits = policy.infer(agent, &obs_rows, pool);
        for (&i, row_logits) in idxs.iter().zip(logits) {
            let option = argmax(&row_logits);
            stats.completed.fetch_add(1, Ordering::Relaxed);
            let _ = batch[i].reply.send(Ok(InferReply {
                option,
                logits: row_logits,
                checkpoint: policy.checkpoint(),
                batch_rows,
            }));
        }
    }
}

/// Index of the largest logit; ties resolve to the first maximum, the
/// same convention as the trainer's greedy selection.
fn argmax(logits: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in logits.iter().enumerate() {
        if v > logits[best] {
            best = i;
        }
    }
    best
}

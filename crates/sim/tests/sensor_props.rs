//! Property tests for the sensing and geometry substrate.

use hero_sim::geometry::{Obb, Vec2};
use hero_sim::sensors::{
    camera_image, lidar_scan, CameraConfig, LidarConfig, CAMERA_OFF_TRACK, CAMERA_VEHICLE,
};
use hero_sim::track::Track;
use hero_sim::vehicle::{VehicleParams, VehicleState};
use proptest::prelude::*;

fn arbitrary_vehicle() -> impl Strategy<Value = VehicleState> {
    (0.0f32..12.0, 0.05f32..0.75, -0.5f32..0.5, 0.0f32..0.2).prop_map(|(s, d, heading, speed)| {
        VehicleState {
            s,
            d,
            heading,
            speed,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lidar returns are always normalized and finite, for any vehicle
    /// configuration.
    fn lidar_always_normalized(vehicles in prop::collection::vec(arbitrary_vehicle(), 1..6)) {
        let track = Track::double_lane();
        let params = VehicleParams::default();
        let cfg = LidarConfig::default();
        for ego in 0..vehicles.len() {
            let scan = lidar_scan(ego, &vehicles, &params, &track, &cfg);
            prop_assert_eq!(scan.len(), cfg.beams);
            prop_assert!(scan.iter().all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
        }
    }

    /// Lidar is monotone in obstacle distance: moving the only obstacle
    /// farther away (straight ahead) never shortens the front beam.
    fn lidar_monotone_in_distance(d1 in 0.5f32..1.0, extra in 0.05f32..0.9) {
        let track = Track::double_lane();
        let params = VehicleParams::default();
        let cfg = LidarConfig::default();
        let ego = VehicleState { s: 0.0, d: 0.2, heading: 0.0, speed: 0.1 };
        let near = VehicleState { s: d1, d: 0.2, heading: 0.0, speed: 0.1 };
        let far = VehicleState { s: d1 + extra, d: 0.2, heading: 0.0, speed: 0.1 };
        let scan_near = lidar_scan(0, &[ego, near], &params, &track, &cfg);
        let scan_far = lidar_scan(0, &[ego, far], &params, &track, &cfg);
        prop_assert!(scan_far[0] >= scan_near[0] - 1e-5);
    }

    /// Camera cells only ever take the three defined values.
    fn camera_values_are_categorical(vehicles in prop::collection::vec(arbitrary_vehicle(), 1..6)) {
        let track = Track::double_lane();
        let params = VehicleParams::default();
        let cfg = CameraConfig::default();
        let img = camera_image(0, &vehicles, &params, &track, &cfg);
        prop_assert_eq!(img.len(), cfg.image_len());
        prop_assert!(img.iter().all(|&v| v == 0.0 || v == CAMERA_OFF_TRACK || v == CAMERA_VEHICLE));
    }

    /// A ray that reports a hit at distance t: the point origin + t·dir
    /// lies on (or inside) the box boundary.
    fn ray_hits_land_on_box(
        cx in -2.0f32..2.0,
        cy in -2.0f32..2.0,
        heading in -1.5f32..1.5,
        angle in 0.0f32..std::f32::consts::TAU,
    ) {
        let b = Obb::new(Vec2::new(cx, cy), 0.4, 0.2, heading);
        let dir = Vec2::new(angle.cos(), angle.sin());
        if let Some(t) = b.ray_intersection(Vec2::new(0.0, 0.0), dir) {
            let hit = dir.scale(t);
            // Inflate slightly for float error; the hit must not be
            // strictly outside the box.
            let inflated = Obb::new(b.center, b.half_len + 1e-3, b.half_wid + 1e-3, b.heading);
            prop_assert!(inflated.contains(hit), "hit {hit:?} outside {b:?}");
        }
    }

    /// OBB intersection is reflexive and symmetric.
    fn obb_intersection_symmetric(
        ax in -2.0f32..2.0, ay in -1.0f32..1.0, ah in -1.5f32..1.5,
        bx in -2.0f32..2.0, by in -1.0f32..1.0, bh in -1.5f32..1.5,
    ) {
        let a = Obb::new(Vec2::new(ax, ay), 0.3, 0.15, ah);
        let b = Obb::new(Vec2::new(bx, by), 0.3, 0.15, bh);
        prop_assert!(a.intersects(&a));
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    /// Vehicles never exceed their speed limits after a step, and heading
    /// stays clamped.
    fn kinematics_respect_limits(
        mut v in arbitrary_vehicle(),
        lin in -1.0f32..1.0,
        ang in -1.0f32..1.0,
    ) {
        let track = Track::double_lane();
        let params = VehicleParams::default();
        v.step(
            hero_sim::vehicle::VehicleCommand::new(lin, ang),
            &params,
            &track,
            1.0,
        );
        prop_assert!(v.speed >= 0.0 && v.speed <= params.max_speed);
        prop_assert!(v.heading.abs() <= params.max_heading + 1e-6);
        prop_assert!((0.0..track.length).contains(&v.s));
    }
}

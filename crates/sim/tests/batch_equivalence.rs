//! Differential equivalence suite: the vectorized [`BatchWorld`] must be
//! **bit-identical** to N scalar [`LaneChangeEnv`] replicas seeded with
//! `replica_seed(base, w)` — poses, lidar scans, camera images, rewards,
//! done flags, and RNG streams, at every step of every episode, for every
//! tested batch size.
//!
//! This is the repo's contract for the batched rollout path (see
//! DESIGN.md "Rollout engine"): any change to the scalar environment or
//! sensors must keep this suite passing, and any new observable state
//! added to `LaneChangeEnv` must be added to `assert_world_eq` here.

use hero_sim::batch::BatchWorld;
use hero_sim::env::{replica_seed, CooperativeWorld, EnvConfig, LaneChangeEnv};
use hero_sim::scenario;
use hero_sim::vehicle::VehicleCommand;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The ragged batch sizes the acceptance criteria pin: a singleton batch
/// (must reduce to the scalar path exactly), small and prime sizes, and a
/// larger-than-typical fleet.
const BATCH_SIZES: [usize; 4] = [1, 2, 7, 64];

fn assert_obs_eq(a: &hero_sim::env::Observation, b: &hero_sim::env::Observation, ctx: &str) {
    assert_eq!(a.lidar.len(), b.lidar.len(), "{ctx}: lidar beam count");
    for (k, (x, y)) in a.lidar.iter().zip(&b.lidar).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: lidar[{k}] {x} vs {y}");
    }
    for (k, (x, y)) in a.image.iter().zip(&b.image).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: image[{k}]");
    }
    assert_eq!(a.speed_norm.to_bits(), b.speed_norm.to_bits(), "{ctx}: speed_norm");
    assert_eq!(a.lane_norm.to_bits(), b.lane_norm.to_bits(), "{ctx}: lane_norm");
    assert_eq!(a.lane_id, b.lane_id, "{ctx}: lane_id");
    assert_eq!(a.speed.to_bits(), b.speed.to_bits(), "{ctx}: speed");
}

/// Asserts every piece of observable per-world state matches between the
/// scalar world `env` and world `w` of `batch`.
fn assert_world_eq(env: &LaneChangeEnv, batch: &BatchWorld, w: usize, ctx: &str) {
    assert_eq!(env.is_done(), batch.is_done(w), "{ctx}: done flag");
    assert_eq!(env.step_count(), batch.step_count(w), "{ctx}: step count");
    for i in 0..env.num_vehicles() {
        let sv = env.vehicle_state(i);
        let bv = batch.vehicle_state(w, i);
        assert_eq!(sv.s.to_bits(), bv.s.to_bits(), "{ctx}: v{i} s");
        assert_eq!(sv.d.to_bits(), bv.d.to_bits(), "{ctx}: v{i} d");
        assert_eq!(sv.heading.to_bits(), bv.heading.to_bits(), "{ctx}: v{i} heading");
        assert_eq!(sv.speed.to_bits(), bv.speed.to_bits(), "{ctx}: v{i} speed");
        assert_eq!(env.needs_merge(i), batch.needs_merge(w, i), "{ctx}: v{i} needs_merge");
        assert_eq!(env.has_merged(i), batch.has_merged(w, i), "{ctx}: v{i} has_merged");
        assert_eq!(env.has_collided(i), batch.has_collided(w, i), "{ctx}: v{i} collided");
    }
    assert_eq!(env.rng_state(), batch.rng_state(w), "{ctx}: rng stream");
}

/// Drives `episodes` full episodes of a `BatchWorld` and its scalar
/// replicas in lockstep under a seeded random policy, asserting bitwise
/// equality of every output at every step.
fn run_differential(proto: LaneChangeEnv, n_worlds: usize, episodes: usize, policy_seed: u64) {
    let mut batch = BatchWorld::replicate(&proto, n_worlds);
    let mut scalars: Vec<LaneChangeEnv> =
        (0..n_worlds).map(|w| proto.replica(w)).collect();
    // One command-policy RNG per world so scalar and batch sides see the
    // exact same command sequences regardless of stepping order.
    let mut policy_rngs: Vec<StdRng> = (0..n_worlds)
        .map(|w| StdRng::seed_from_u64(policy_seed ^ replica_seed(policy_seed, w)))
        .collect();
    let n = proto.num_vehicles();

    for ep in 0..episodes {
        for (w, env) in scalars.iter_mut().enumerate() {
            let so = env.reset();
            let bo = batch.reset_world(w);
            assert_eq!(so.len(), bo.len());
            for (i, (a, b)) in so.iter().zip(&bo).enumerate() {
                assert_obs_eq(a, b, &format!("ep{ep} w{w} reset obs v{i}"));
            }
            assert_world_eq(env, &batch, w, &format!("ep{ep} w{w} after reset"));
        }
        // Step every still-live world each round, batched in one
        // `step_worlds` call, against per-world scalar steps.
        loop {
            let live: Vec<usize> = (0..n_worlds).filter(|&w| !batch.is_done(w)).collect();
            if live.is_empty() {
                break;
            }
            let commands: Vec<Vec<VehicleCommand>> = live
                .iter()
                .map(|&w| {
                    let rng = &mut policy_rngs[w];
                    (0..n)
                        .map(|_| {
                            VehicleCommand::new(rng.gen_range(0.0..0.3), rng.gen_range(-0.4..0.4))
                        })
                        .collect()
                })
                .collect();
            let batch_outs = batch.step_worlds(&live, &commands);
            for ((&w, cmds), b_out) in live.iter().zip(&commands).zip(&batch_outs) {
                let s_out = scalars[w].step(cmds);
                let ctx = format!("ep{ep} w{w} step{}", scalars[w].step_count());
                for (i, (a, b)) in s_out.observations.iter().zip(&b_out.observations).enumerate()
                {
                    assert_obs_eq(a, b, &format!("{ctx} obs v{i}"));
                }
                for (i, (a, b)) in s_out.rewards.iter().zip(&b_out.rewards).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: reward v{i} {a} vs {b}");
                }
                assert_eq!(s_out.collisions, b_out.collisions, "{ctx}: collisions");
                assert_eq!(s_out.done, b_out.done, "{ctx}: done");
                assert_eq!(
                    s_out.mean_speed.to_bits(),
                    b_out.mean_speed.to_bits(),
                    "{ctx}: mean_speed"
                );
                assert_world_eq(&scalars[w], &batch, w, &ctx);
            }
        }
    }
}

#[test]
fn congestion_matches_scalar_at_every_batch_size() {
    for &size in &BATCH_SIZES {
        let proto = scenario::congestion(EnvConfig::default(), 42);
        run_differential(proto, size, 2, 7);
    }
}

#[test]
fn two_vehicle_merge_matches_scalar_at_every_batch_size() {
    for &size in &BATCH_SIZES {
        let proto = scenario::two_vehicle_merge(EnvConfig::default(), 1234);
        run_differential(proto, size, 2, 99);
    }
}

#[test]
fn replica_streams_stay_independent_across_resets() {
    // Regression for the batching RNG-coupling bug: resetting one replica
    // must not perturb a sibling's spawn jitter stream. Drive world 0
    // through extra resets and check world 1 still matches its scalar
    // twin exactly.
    let proto = scenario::congestion(EnvConfig::default(), 8);
    let mut batch = BatchWorld::replicate(&proto, 3);
    let mut scalar_1 = proto.replica(1);
    for _ in 0..4 {
        batch.reset_world(0); // sibling churn
        let bo = batch.reset_world(1);
        let so = scalar_1.reset();
        for (i, (a, b)) in so.iter().zip(&bo).enumerate() {
            assert_obs_eq(a, b, &format!("sibling-churn reset v{i}"));
        }
        assert_eq!(scalar_1.rng_state(), batch.rng_state(1));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized seeds/policies: every tested batch size stays
    /// bit-identical to its scalar replicas over a full episode.
    fn batch_equals_scalar_for_random_seeds(
        env_seed in 0u64..1_000_000,
        policy_seed in 0u64..1_000_000,
        size_idx in 0usize..BATCH_SIZES.len(),
    ) {
        let proto = scenario::congestion(EnvConfig::default(), env_seed);
        run_differential(proto, BATCH_SIZES[size_idx], 1, policy_seed);
    }

    /// Jittered spawns (the RNG-heavy path): replica streams are
    /// independent and each matches its scalar twin bit-for-bit.
    fn jittered_spawns_stay_bit_identical(env_seed in 0u64..1_000_000) {
        let proto = scenario::two_vehicle_merge(EnvConfig::default(), env_seed);
        run_differential(proto, 7, 2, env_seed ^ 0xABCD);
    }
}

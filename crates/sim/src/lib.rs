//! # hero-sim
//!
//! A deterministic 2D multi-vehicle driving simulator — the Gazebo
//! substitute for the HERO reproduction's cooperative lane-change case
//! study (paper Sec. IV/V).
//!
//! The world is a closed multi-lane loop in Frenet coordinates. Vehicles
//! follow unicycle kinematics driven by continuous `(linear, angular)`
//! speed commands, sense through a 360° ray-cast [lidar](sensors::lidar_scan)
//! and a forward [occupancy camera](sensors::camera_image), and collide via
//! oriented-bounding-box tests. The [`env::LaneChangeEnv`] implements the
//! paper's state/option/reward design; [`skill_env::SkillEnv`] trains the
//! low-level skills on the paper's intrinsic rewards; and
//! [`sim2real::SimToRealEnv`] reproduces the real-world-testbed protocol
//! (Table II) through a configurable domain gap.
//!
//! ## Quickstart
//!
//! ```
//! use hero_sim::env::EnvConfig;
//! use hero_sim::scenario;
//! use hero_sim::vehicle::VehicleCommand;
//!
//! let mut env = scenario::congestion(EnvConfig::default(), 0);
//! let _obs = env.reset();
//! while !env.is_done() {
//!     let cmds: Vec<VehicleCommand> = (0..env.num_vehicles())
//!         .map(|i| VehicleCommand::coast(env.vehicle_state(i).speed))
//!         .collect();
//!     let out = env.step(&cmds);
//!     assert_eq!(out.rewards.len(), env.num_vehicles());
//! }
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod env;
pub mod geometry;
pub mod options;
pub mod scenario;
pub mod sensors;
pub mod sim2real;
pub mod skill_env;
pub mod track;
pub mod vehicle;

pub use batch::BatchWorld;
pub use env::{
    replica_seed, CooperativeWorld, EnvConfig, LaneChangeEnv, Observation, StepOutcome,
    VehicleRole, VehicleSpawn,
};
pub use options::{ActionBounds, DrivingOption, ScriptedExecutor};
pub use sim2real::{SimToRealConfig, SimToRealEnv};
pub use skill_env::{ManeuverResult, SkillEnv, SkillKind};
pub use track::Track;
pub use vehicle::{VehicleCommand, VehicleParams, VehicleState};

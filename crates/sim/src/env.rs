//! The cooperative lane-change environment (the paper's case study,
//! Sec. IV) — a multi-agent Markov game over vehicles on a looped track.
//!
//! Every control period each vehicle receives a continuous
//! [`VehicleCommand`]; the environment advances kinematics, detects
//! collisions (vehicle–vehicle and wall), renders per-vehicle observations
//! (lidar / camera / speed / lane), and computes the paper's team reward
//! `r_h = α·r_col + (1−α)·r_travel` (Sec. IV-B). Scripted vehicles (e.g.
//! the plodding vehicle 4 of Fig. 9 that simulates congestion) drive
//! themselves; learners are driven by the caller.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::options::{DrivingOption, ScriptedExecutor};
use crate::sensors::{camera_image, lidar_scan, CameraConfig, LidarConfig};
use crate::track::Track;
use crate::vehicle::{VehicleCommand, VehicleParams, VehicleState};

/// What drives a vehicle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VehicleRole {
    /// Controlled by the caller (a learning agent).
    Learner,
    /// Driven internally: keeps its lane at a constant speed.
    Scripted {
        /// The constant target speed (m/s).
        speed: f32,
    },
}

/// Where and how a vehicle starts each episode.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VehicleSpawn {
    /// Starting lane index (ignored when `random_lane` is set).
    pub lane: usize,
    /// When `true`, a uniformly random lane is drawn on every reset
    /// (used by the skill-training environments so the learned skills
    /// generalize across lanes).
    pub random_lane: bool,
    /// Starting longitudinal position.
    pub s: f32,
    /// Uniform jitter half-width applied to `s` on every reset.
    pub s_jitter: f32,
    /// Initial speed (m/s).
    pub speed: f32,
    /// Role of this vehicle.
    pub role: VehicleRole,
}

/// Static configuration of the environment.
#[derive(Clone, Copy, Debug)]
pub struct EnvConfig {
    /// Track geometry.
    pub track: Track,
    /// Vehicle footprint and limits (shared by all vehicles).
    pub vehicle: VehicleParams,
    /// Lidar used for the high-level state.
    pub lidar: LidarConfig,
    /// Camera used for the low-level state.
    pub camera: CameraConfig,
    /// Control period (s).
    pub dt: f32,
    /// Episode length in steps (the paper evaluates with 18).
    pub max_steps: usize,
    /// Penalty added to the team reward on collision (paper: −20).
    pub collision_penalty: f32,
    /// Weight α between collision penalty and travel reward.
    pub alpha: f32,
}

impl Default for EnvConfig {
    fn default() -> Self {
        Self {
            track: Track::double_lane(),
            vehicle: VehicleParams::default(),
            lidar: LidarConfig::default(),
            camera: CameraConfig::default(),
            dt: 1.0,
            max_steps: 18,
            collision_penalty: -20.0,
            alpha: 0.5,
        }
    }
}

impl EnvConfig {
    /// Dimension of the high-level observation vector
    /// (`[lidar, speed, laneID]`).
    pub fn high_dim(&self) -> usize {
        self.lidar.beams + 2
    }

    /// Dimension of the flattened low-level observation vector
    /// (`[image, speed, laneID]`).
    pub fn low_dim(&self) -> usize {
        self.camera.image_len() + 2
    }
}

/// One vehicle's observation: the paper's high-level state
/// `[s_lidar, s_speed, s_laneID]` and low-level state
/// `[s_img, s_speed, s_laneID]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Observation {
    /// Normalized lidar returns, one per beam.
    pub lidar: Vec<f32>,
    /// Flattened occupancy image (`rows × cols`).
    pub image: Vec<f32>,
    /// Speed normalized by the vehicle's maximum.
    pub speed_norm: f32,
    /// Lane index normalized by the lane count.
    pub lane_norm: f32,
    /// Raw lane index.
    pub lane_id: usize,
    /// Raw speed (m/s).
    pub speed: f32,
}

impl Observation {
    /// The high-level feature vector `[lidar…, speed, laneID]`.
    pub fn high_vec(&self) -> Vec<f32> {
        let mut v = self.lidar.clone();
        v.push(self.speed_norm);
        v.push(self.lane_norm);
        v
    }

    /// The flattened low-level feature vector `[image…, speed, laneID]`.
    pub fn low_flat_vec(&self) -> Vec<f32> {
        let mut v = self.image.clone();
        v.push(self.speed_norm);
        v.push(self.lane_norm);
        v
    }
}

/// Everything produced by one environment step.
#[derive(Clone, Debug)]
pub struct StepOutcome {
    /// Per-vehicle observations after the step.
    pub observations: Vec<Observation>,
    /// Per-vehicle team rewards `r_h^i`.
    pub rewards: Vec<f32>,
    /// Per-vehicle collision flags for this step.
    pub collisions: Vec<bool>,
    /// Whether the episode ended (collision or step limit).
    pub done: bool,
    /// Mean speed over all vehicles this step.
    pub mean_speed: f32,
}

/// The common surface of the simulation and sim-to-real worlds, so
/// training and evaluation code is agnostic to which one it drives.
pub trait CooperativeWorld {
    /// Starts a new episode, returning initial observations.
    fn reset(&mut self) -> Vec<Observation>;
    /// Advances one control period (see [`LaneChangeEnv::step`]).
    fn step(&mut self, commands: &[VehicleCommand]) -> StepOutcome;
    /// Whether the episode has ended.
    fn is_done(&self) -> bool;
    /// Number of vehicles (learners + scripted).
    fn num_vehicles(&self) -> usize;
    /// Indices of learner-controlled vehicles.
    fn learner_indices(&self) -> Vec<usize>;
    /// Kinematic state of vehicle `i`.
    fn vehicle_state(&self, i: usize) -> VehicleState;
    /// Whether vehicle `i` must merge (see [`LaneChangeEnv::needs_merge`]).
    fn needs_merge(&self, i: usize) -> bool;
    /// Whether vehicle `i` has merged (see [`LaneChangeEnv::has_merged`]).
    fn has_merged(&self, i: usize) -> bool;
    /// Whether vehicle `i` has collided this episode.
    fn has_collided(&self, i: usize) -> bool;
    /// The environment configuration.
    fn config(&self) -> &EnvConfig;
    /// The internal RNG stream position(s), so a checkpoint can resume
    /// spawn jitter and domain-randomization noise bit-identically. Worlds
    /// with several generators concatenate their 4-word states.
    fn rng_state(&self) -> Vec<u64>;
    /// Restores RNG stream position(s) captured via
    /// [`CooperativeWorld::rng_state`]. Ignores input of the wrong length
    /// (a checkpoint from a different world type).
    fn set_rng_state(&mut self, state: &[u64]);
}

/// The multi-vehicle cooperative lane-change environment.
#[derive(Debug)]
pub struct LaneChangeEnv {
    cfg: EnvConfig,
    spawns: Vec<VehicleSpawn>,
    vehicles: Vec<VehicleState>,
    executor: ScriptedExecutor,
    rng: StdRng,
    seed: u64,
    step_count: usize,
    done: bool,
    initial_lanes: Vec<usize>,
    needs_merge: Vec<bool>,
    collided: Vec<bool>,
}

/// The seed of replica `index` of a world seeded with `base`.
///
/// Replica 0 keeps the base seed (so a 1-replica batch is bit-identical to
/// the scalar world); later replicas get independent streams via a
/// splitmix64 scramble of `base + index`. Earlier batching attempts that
/// derived replica RNGs by cloning the parent's generator coupled adjacent
/// worlds' spawn jitter — this function is the contract that prevents that
/// (pinned by the `replicas_draw_independent_streams` regression test).
pub fn replica_seed(base: u64, index: usize) -> u64 {
    if index == 0 {
        return base;
    }
    // splitmix64: a well-mixed 64-bit permutation, so adjacent indices
    // land in unrelated regions of the seed space.
    let mut z = base.wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl LaneChangeEnv {
    /// Creates an environment; call [`LaneChangeEnv::reset`] before
    /// stepping.
    ///
    /// # Panics
    ///
    /// Panics when `spawns` is empty or a spawn lane is out of range.
    pub fn new(cfg: EnvConfig, spawns: Vec<VehicleSpawn>, seed: u64) -> Self {
        assert!(!spawns.is_empty(), "environment needs at least one vehicle");
        for sp in &spawns {
            assert!(sp.lane < cfg.track.num_lanes, "spawn lane out of range");
        }
        let n = spawns.len();
        let mut env = Self {
            cfg,
            spawns,
            vehicles: Vec::new(),
            executor: ScriptedExecutor::new(),
            rng: StdRng::seed_from_u64(seed),
            seed,
            step_count: 0,
            done: true,
            initial_lanes: vec![0; n],
            needs_merge: vec![false; n],
            collided: vec![false; n],
        };
        env.reset();
        env
    }

    /// Environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }

    /// The seed this environment was constructed with. Note the RNG
    /// stream advances past the seed position on every reset; use
    /// [`CooperativeWorld::rng_state`] for the live stream position.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The spawn table driving each reset.
    pub fn spawns(&self) -> &[VehicleSpawn] {
        &self.spawns
    }

    /// Builds replica `index` of this environment: same config and spawn
    /// table, but an independently seeded RNG stream per
    /// [`replica_seed`]. Replica 0 reproduces this environment as freshly
    /// constructed (not its current mid-stream state).
    pub fn replica(&self, index: usize) -> LaneChangeEnv {
        LaneChangeEnv::new(self.cfg, self.spawns.clone(), replica_seed(self.seed, index))
    }

    /// Number of vehicles (learners + scripted).
    pub fn num_vehicles(&self) -> usize {
        self.spawns.len()
    }

    /// Indices of the learner-controlled vehicles.
    pub fn learner_indices(&self) -> Vec<usize> {
        self.spawns
            .iter()
            .enumerate()
            .filter(|(_, sp)| matches!(sp.role, VehicleRole::Learner))
            .map(|(i, _)| i)
            .collect()
    }

    /// Current kinematic state of vehicle `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn vehicle_state(&self, i: usize) -> &VehicleState {
        &self.vehicles[i]
    }

    /// Whether the current episode has ended.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Steps taken in the current episode.
    pub fn step_count(&self) -> usize {
        self.step_count
    }

    /// Whether vehicle `i` started this episode behind slower scripted
    /// traffic in its own lane — i.e. it must merge to make progress.
    pub fn needs_merge(&self, i: usize) -> bool {
        self.needs_merge[i]
    }

    /// Whether vehicle `i` has left its initial lane without colliding —
    /// the paper's "successful merge".
    pub fn has_merged(&self, i: usize) -> bool {
        !self.collided[i] && self.vehicles[i].lane(&self.cfg.track) != self.initial_lanes[i]
    }

    /// Whether vehicle `i` has collided this episode.
    pub fn has_collided(&self, i: usize) -> bool {
        self.collided[i]
    }

    /// Starts a new episode (re-randomizing jittered spawn positions) and
    /// returns the initial observations.
    pub fn reset(&mut self) -> Vec<Observation> {
        let num_lanes = self.cfg.track.num_lanes;
        let rng = &mut self.rng;
        let cfg = &self.cfg;
        self.vehicles = self
            .spawns
            .iter()
            .map(|sp| {
                let jitter = if sp.s_jitter > 0.0 {
                    rng.gen_range(-sp.s_jitter..sp.s_jitter)
                } else {
                    0.0
                };
                let lane = if sp.random_lane {
                    rng.gen_range(0..num_lanes)
                } else {
                    sp.lane
                };
                VehicleState {
                    s: cfg.track.wrap(sp.s + jitter),
                    d: cfg.track.lane_center(lane),
                    heading: 0.0,
                    speed: sp.speed,
                }
            })
            .collect();
        self.step_count = 0;
        self.done = false;
        self.initial_lanes = self
            .vehicles
            .iter()
            .map(|v| v.lane(&self.cfg.track))
            .collect();
        self.collided = vec![false; self.vehicles.len()];
        self.needs_merge = self.compute_needs_merge();
        (0..self.vehicles.len()).map(|i| self.observe(i)).collect()
    }

    fn compute_needs_merge(&self) -> Vec<bool> {
        const LOOKAHEAD: f32 = 2.5;
        self.spawns
            .iter()
            .enumerate()
            .map(|(i, sp)| {
                if !matches!(sp.role, VehicleRole::Learner) {
                    return false;
                }
                self.spawns.iter().enumerate().any(|(j, other)| {
                    i != j
                        && self.vehicles[j].lane(&self.cfg.track)
                            == self.vehicles[i].lane(&self.cfg.track)
                        && other.speed < sp.speed
                        && matches!(other.role, VehicleRole::Scripted { .. })
                        && {
                            let gap = self
                                .cfg
                                .track
                                .signed_delta(self.vehicles[i].s, self.vehicles[j].s);
                            gap > 0.0 && gap <= LOOKAHEAD
                        }
                })
            })
            .collect()
    }

    /// Renders the observation of vehicle `i` from the current state.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn observe(&self, i: usize) -> Observation {
        hero_telemetry::counter_add("lidar_scans", 1);
        hero_telemetry::counter_add("camera_frames", 1);
        let v = &self.vehicles[i];
        Observation {
            lidar: lidar_scan(i, &self.vehicles, &self.cfg.vehicle, &self.cfg.track, &self.cfg.lidar),
            image: camera_image(
                i,
                &self.vehicles,
                &self.cfg.vehicle,
                &self.cfg.track,
                &self.cfg.camera,
            ),
            speed_norm: v.speed / self.cfg.vehicle.max_speed,
            lane_norm: v.lane(&self.cfg.track) as f32 / self.cfg.track.num_lanes as f32,
            lane_id: v.lane(&self.cfg.track),
            speed: v.speed,
        }
    }

    /// Advances the world one control period.
    ///
    /// `commands` must hold one entry per vehicle; entries for scripted
    /// vehicles are ignored (they drive themselves).
    ///
    /// # Panics
    ///
    /// Panics when `commands.len() != num_vehicles()` or when called after
    /// the episode ended (check [`LaneChangeEnv::is_done`]).
    pub fn step(&mut self, commands: &[VehicleCommand]) -> StepOutcome {
        let _step_span = hero_telemetry::span("env_step");
        hero_telemetry::counter_add("env_steps", 1);
        assert_eq!(
            commands.len(),
            self.vehicles.len(),
            "one command per vehicle required"
        );
        assert!(!self.done, "step() called on a finished episode");

        let before_s: Vec<f32> = self.vehicles.iter().map(|v| v.s).collect();
        for (i, v) in self.vehicles.iter_mut().enumerate() {
            let cmd = match self.spawns[i].role {
                VehicleRole::Learner => commands[i],
                VehicleRole::Scripted { speed } => {
                    let mut c = self.executor.command(DrivingOption::KeepLane, v, &self.cfg.track);
                    c.linear = speed;
                    c
                }
            };
            v.step(cmd, &self.cfg.vehicle, &self.cfg.track, self.cfg.dt);
        }
        self.step_count += 1;

        let collisions = self.detect_collisions();
        for (c, flag) in self.collided.iter_mut().zip(&collisions) {
            *c |= flag;
        }
        let any_collision = collisions.iter().any(|&c| c);
        self.done = any_collision || self.step_count >= self.cfg.max_steps;

        let rewards: Vec<f32> = (0..self.vehicles.len())
            .map(|i| {
                let travel = self
                    .cfg
                    .track
                    .signed_delta(before_s[i], self.vehicles[i].s)
                    .max(0.0)
                    / (self.cfg.vehicle.max_speed * self.cfg.dt);
                let col = if any_collision {
                    self.cfg.collision_penalty
                } else {
                    0.0
                };
                self.cfg.alpha * col + (1.0 - self.cfg.alpha) * travel
            })
            .collect();

        let mean_speed =
            self.vehicles.iter().map(|v| v.speed).sum::<f32>() / self.vehicles.len() as f32;

        let observations = {
            let _sensor_span = hero_telemetry::span("sensors");
            (0..self.vehicles.len()).map(|i| self.observe(i)).collect()
        };
        StepOutcome {
            observations,
            rewards,
            collisions,
            done: self.done,
            mean_speed,
        }
    }

    fn detect_collisions(&self) -> Vec<bool> {
        let n = self.vehicles.len();
        let mut hit = vec![false; n];
        let track = &self.cfg.track;
        let params = &self.cfg.vehicle;
        for i in 0..n {
            // Wall collision: any part of the body outside the drivable
            // area.
            let half_w = params.width / 2.0 + params.length / 2.0 * self.vehicles[i].heading.sin().abs();
            let d = self.vehicles[i].d;
            if d - half_w < 0.0 || d + half_w > track.width() {
                hit[i] = true;
            }
        }
        for i in 0..n {
            let obb_i = self.vehicles[i].obb_relative(self.vehicles[i].s, params, track);
            for j in (i + 1)..n {
                let obb_j = self.vehicles[j].obb_relative(self.vehicles[i].s, params, track);
                if obb_i.intersects(&obb_j) {
                    hit[i] = true;
                    hit[j] = true;
                }
            }
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_car_spawns() -> Vec<VehicleSpawn> {
        vec![
            VehicleSpawn {
                lane: 0,
                random_lane: false,
                s: 0.0,
                s_jitter: 0.0,
                speed: 0.1,
                role: VehicleRole::Learner,
            },
            VehicleSpawn {
                lane: 1,
                random_lane: false,
                s: 1.0,
                s_jitter: 0.0,
                speed: 0.1,
                role: VehicleRole::Learner,
            },
        ]
    }

    fn coast_all(env: &LaneChangeEnv) -> Vec<VehicleCommand> {
        (0..env.num_vehicles())
            .map(|i| VehicleCommand::coast(env.vehicle_state(i).speed))
            .collect()
    }

    #[test]
    fn reset_places_vehicles_on_lane_centers() {
        let env = LaneChangeEnv::new(EnvConfig::default(), two_car_spawns(), 0);
        assert!((env.vehicle_state(0).d - 0.2).abs() < 1e-6);
        assert!((env.vehicle_state(1).d - 0.6).abs() < 1e-6);
        assert!(!env.is_done());
    }

    #[test]
    fn step_returns_per_vehicle_data() {
        let mut env = LaneChangeEnv::new(EnvConfig::default(), two_car_spawns(), 0);
        let cmds = coast_all(&env);
        let out = env.step(&cmds);
        assert_eq!(out.observations.len(), 2);
        assert_eq!(out.rewards.len(), 2);
        assert_eq!(out.collisions.len(), 2);
        assert!(!out.done);
        assert!(out.mean_speed > 0.0);
    }

    #[test]
    fn forward_progress_earns_positive_reward() {
        let mut env = LaneChangeEnv::new(EnvConfig::default(), two_car_spawns(), 0);
        let out = env.step(&coast_all(&env));
        assert!(out.rewards.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn episode_ends_at_step_limit() {
        let cfg = EnvConfig {
            max_steps: 3,
            ..EnvConfig::default()
        };
        let mut env = LaneChangeEnv::new(cfg, two_car_spawns(), 0);
        for _ in 0..2 {
            let out = env.step(&coast_all(&env));
            assert!(!out.done);
        }
        let out = env.step(&coast_all(&env));
        assert!(out.done);
        assert!(env.is_done());
    }

    #[test]
    #[should_panic(expected = "finished episode")]
    fn stepping_after_done_panics() {
        let cfg = EnvConfig {
            max_steps: 1,
            ..EnvConfig::default()
        };
        let mut env = LaneChangeEnv::new(cfg, two_car_spawns(), 0);
        let cmds = coast_all(&env);
        env.step(&cmds);
        env.step(&cmds);
    }

    #[test]
    fn rear_end_collision_is_detected_and_penalized() {
        let spawns = vec![
            VehicleSpawn {
                lane: 0,
                random_lane: false,
                s: 0.0,
                s_jitter: 0.0,
                speed: 0.2,
                role: VehicleRole::Learner,
            },
            VehicleSpawn {
                lane: 0,
                random_lane: false,
                s: 0.35,
                s_jitter: 0.0,
                speed: 0.0,
                role: VehicleRole::Learner,
            },
        ];
        let mut env = LaneChangeEnv::new(EnvConfig::default(), spawns, 0);
        let mut collided = false;
        for _ in 0..5 {
            if env.is_done() {
                break;
            }
            let out = env.step(&[
                VehicleCommand::new(0.2, 0.0),
                VehicleCommand::new(0.0, 0.0),
            ]);
            if out.collisions.iter().any(|&c| c) {
                collided = true;
                assert!(out.rewards[0] < 0.0, "collision must be penalized");
                assert!(out.done);
            }
        }
        assert!(collided, "vehicles closing at 0.2 m/s from 0.35 m must hit");
        assert!(env.has_collided(0) && env.has_collided(1));
    }

    #[test]
    fn wall_collision_when_steering_off_track() {
        let spawns = vec![VehicleSpawn {
            lane: 1,
            random_lane: false,
            s: 0.0,
            s_jitter: 0.0,
            speed: 0.15,
            role: VehicleRole::Learner,
        }];
        let mut env = LaneChangeEnv::new(EnvConfig::default(), spawns, 0);
        let mut hit = false;
        for _ in 0..18 {
            if env.is_done() {
                break;
            }
            let out = env.step(&[VehicleCommand::new(0.2, 0.3)]);
            if out.collisions[0] {
                hit = true;
            }
        }
        assert!(hit, "steering hard outward must leave the track");
    }

    #[test]
    fn scripted_vehicle_ignores_commands() {
        let spawns = vec![
            VehicleSpawn {
                lane: 0,
                random_lane: false,
                s: 0.0,
                s_jitter: 0.0,
                speed: 0.1,
                role: VehicleRole::Learner,
            },
            VehicleSpawn {
                lane: 1,
                random_lane: false,
                s: 2.0,
                s_jitter: 0.0,
                speed: 0.03,
                role: VehicleRole::Scripted { speed: 0.03 },
            },
        ];
        let mut env = LaneChangeEnv::new(EnvConfig::default(), spawns, 0);
        env.step(&[
            VehicleCommand::coast(0.1),
            VehicleCommand::new(0.25, 0.3), // must be ignored
        ]);
        assert!((env.vehicle_state(1).speed - 0.03).abs() < 1e-6);
        assert_eq!(env.learner_indices(), vec![0]);
    }

    #[test]
    fn needs_merge_detects_blocked_lane() {
        let spawns = vec![
            VehicleSpawn {
                lane: 0,
                random_lane: false,
                s: 0.0,
                s_jitter: 0.0,
                speed: 0.1,
                role: VehicleRole::Learner,
            },
            VehicleSpawn {
                lane: 0,
                random_lane: false,
                s: 1.0,
                s_jitter: 0.0,
                speed: 0.02,
                role: VehicleRole::Scripted { speed: 0.02 },
            },
            VehicleSpawn {
                lane: 1,
                random_lane: false,
                s: 0.5,
                s_jitter: 0.0,
                speed: 0.1,
                role: VehicleRole::Learner,
            },
        ];
        let env = LaneChangeEnv::new(EnvConfig::default(), spawns, 0);
        assert!(env.needs_merge(0), "learner behind slow traffic must merge");
        assert!(!env.needs_merge(1), "scripted vehicles never need to merge");
        assert!(!env.needs_merge(2), "free lane needs no merge");
    }

    #[test]
    fn merge_detection_via_lane_change() {
        let spawns = vec![VehicleSpawn {
            lane: 0,
            random_lane: false,
            s: 0.0,
            s_jitter: 0.0,
            speed: 0.15,
            role: VehicleRole::Learner,
        }];
        let mut env = LaneChangeEnv::new(EnvConfig::default(), spawns, 0);
        assert!(!env.has_merged(0));
        // Steer up into lane 1 over a few steps, then straighten.
        for _ in 0..4 {
            env.step(&[VehicleCommand::new(0.15, 0.22)]);
        }
        for _ in 0..4 {
            if env.is_done() {
                break;
            }
            env.step(&[VehicleCommand::new(0.15, -0.22)]);
        }
        assert!(!env.has_collided(0), "gentle lane change must be safe");
        assert!(env.has_merged(0), "vehicle ended in the other lane");
    }

    #[test]
    fn observations_have_configured_dims() {
        let cfg = EnvConfig::default();
        let env = LaneChangeEnv::new(cfg, two_car_spawns(), 0);
        let obs = env.observe(0);
        assert_eq!(obs.high_vec().len(), cfg.high_dim());
        assert_eq!(obs.low_flat_vec().len(), cfg.low_dim());
    }

    #[test]
    fn replicas_draw_independent_streams() {
        // Regression: replicas of a jittered world must not share (or
        // couple) RNG streams. Replica 0 reproduces the base world;
        // replicas 1.. draw distinct spawn jitter from their own seeds.
        let spawns = vec![VehicleSpawn {
            lane: 0,
            random_lane: false,
            s: 0.0,
            s_jitter: 0.5,
            speed: 0.1,
            role: VehicleRole::Learner,
        }];
        let base = LaneChangeEnv::new(EnvConfig::default(), spawns, 9);
        let r0 = base.replica(0);
        let r1 = base.replica(1);
        let r2 = base.replica(2);
        assert_eq!(r0.vehicle_state(0).s.to_bits(), base.vehicle_state(0).s.to_bits());
        assert_eq!(replica_seed(9, 0), 9);
        assert_ne!(replica_seed(9, 1), replica_seed(9, 2));
        let positions = [r0.vehicle_state(0).s, r1.vehicle_state(0).s, r2.vehicle_state(0).s];
        assert_ne!(positions[0].to_bits(), positions[1].to_bits());
        assert_ne!(positions[1].to_bits(), positions[2].to_bits());
    }

    #[test]
    fn reset_with_jitter_is_seed_deterministic() {
        let spawns = vec![VehicleSpawn {
            lane: 0,
            random_lane: false,
            s: 0.0,
            s_jitter: 0.5,
            speed: 0.1,
            role: VehicleRole::Learner,
        }];
        let mut a = LaneChangeEnv::new(EnvConfig::default(), spawns.clone(), 42);
        let mut b = LaneChangeEnv::new(EnvConfig::default(), spawns, 42);
        for _ in 0..3 {
            let oa = a.reset();
            let ob = b.reset();
            assert_eq!(oa, ob);
        }
    }
}

impl CooperativeWorld for LaneChangeEnv {
    fn reset(&mut self) -> Vec<Observation> {
        LaneChangeEnv::reset(self)
    }
    fn step(&mut self, commands: &[VehicleCommand]) -> StepOutcome {
        LaneChangeEnv::step(self, commands)
    }
    fn is_done(&self) -> bool {
        LaneChangeEnv::is_done(self)
    }
    fn num_vehicles(&self) -> usize {
        LaneChangeEnv::num_vehicles(self)
    }
    fn learner_indices(&self) -> Vec<usize> {
        LaneChangeEnv::learner_indices(self)
    }
    fn vehicle_state(&self, i: usize) -> VehicleState {
        *LaneChangeEnv::vehicle_state(self, i)
    }
    fn needs_merge(&self, i: usize) -> bool {
        LaneChangeEnv::needs_merge(self, i)
    }
    fn has_merged(&self, i: usize) -> bool {
        LaneChangeEnv::has_merged(self, i)
    }
    fn has_collided(&self, i: usize) -> bool {
        LaneChangeEnv::has_collided(self, i)
    }
    fn config(&self) -> &EnvConfig {
        LaneChangeEnv::config(self)
    }
    fn rng_state(&self) -> Vec<u64> {
        self.rng.state().to_vec()
    }
    fn set_rng_state(&mut self, state: &[u64]) {
        if let Ok(words) = <[u64; 4]>::try_from(state) {
            self.rng = StdRng::from_state(words);
        }
    }
}

//! Minimal 2D geometry: vectors, oriented bounding boxes, ray casting.
//!
//! The simulator works in a "straightened" Frenet frame — `x` is the
//! longitudinal coordinate along the track (wrapped by the caller) and `y`
//! the lateral offset — so plain Euclidean geometry suffices here.

/// A 2D vector / point.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct Vec2 {
    /// Longitudinal component.
    pub x: f32,
    /// Lateral component.
    pub y: f32,
}

impl Vec2 {
    /// Creates a vector from components.
    pub fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f32 {
        self.x * other.x + self.y * other.y
    }

    /// Euclidean length.
    pub fn norm(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Component-wise subtraction.
    pub fn sub(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }

    /// Component-wise addition.
    pub fn add(self, other: Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }

    /// Scalar multiple.
    pub fn scale(self, k: f32) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }

    /// Rotation by `angle` radians (counter-clockwise).
    pub fn rotated(self, angle: f32) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }
}

/// An oriented bounding box: center, half extents, heading.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Obb {
    /// Center point.
    pub center: Vec2,
    /// Half length along the heading axis.
    pub half_len: f32,
    /// Half width perpendicular to the heading axis.
    pub half_wid: f32,
    /// Heading angle in radians (0 = +x).
    pub heading: f32,
}

impl Obb {
    /// Creates an OBB.
    pub fn new(center: Vec2, half_len: f32, half_wid: f32, heading: f32) -> Self {
        Self {
            center,
            half_len,
            half_wid,
            heading,
        }
    }

    /// The four corners, counter-clockwise.
    pub fn corners(&self) -> [Vec2; 4] {
        let u = Vec2::new(1.0, 0.0).rotated(self.heading).scale(self.half_len);
        let v = Vec2::new(0.0, 1.0).rotated(self.heading).scale(self.half_wid);
        [
            self.center.add(u).add(v),
            self.center.add(u).sub(v),
            self.center.sub(u).sub(v),
            self.center.sub(u).add(v),
        ]
    }

    /// The two local axes (unit vectors along length and width).
    fn axes(&self) -> [Vec2; 2] {
        [
            Vec2::new(1.0, 0.0).rotated(self.heading),
            Vec2::new(0.0, 1.0).rotated(self.heading),
        ]
    }

    /// Whether two OBBs overlap (separating-axis test).
    pub fn intersects(&self, other: &Obb) -> bool {
        let axes = [self.axes(), other.axes()].concat();
        let ca = self.corners();
        let cb = other.corners();
        for axis in axes {
            let (mut amin, mut amax) = (f32::INFINITY, f32::NEG_INFINITY);
            for c in &ca {
                let p = c.dot(axis);
                amin = amin.min(p);
                amax = amax.max(p);
            }
            let (mut bmin, mut bmax) = (f32::INFINITY, f32::NEG_INFINITY);
            for c in &cb {
                let p = c.dot(axis);
                bmin = bmin.min(p);
                bmax = bmax.max(p);
            }
            if amax < bmin || bmax < amin {
                return false;
            }
        }
        true
    }

    /// Whether a point lies inside the box.
    pub fn contains(&self, p: Vec2) -> bool {
        let rel = p.sub(self.center).rotated(-self.heading);
        rel.x.abs() <= self.half_len && rel.y.abs() <= self.half_wid
    }

    /// Distance along a ray (origin + t·dir, `dir` unit length) to the first
    /// intersection with this box, if any intersection with `t >= 0` exists.
    ///
    /// Implemented as a slab test in the box's local frame.
    pub fn ray_intersection(&self, origin: Vec2, dir: Vec2) -> Option<f32> {
        let o = origin.sub(self.center).rotated(-self.heading);
        let d = dir.rotated(-self.heading);
        let mut t_min = f32::NEG_INFINITY;
        let mut t_max = f32::INFINITY;
        for (oc, dc, half) in [(o.x, d.x, self.half_len), (o.y, d.y, self.half_wid)] {
            if dc.abs() < 1e-9 {
                if oc.abs() > half {
                    return None;
                }
            } else {
                let t1 = (-half - oc) / dc;
                let t2 = (half - oc) / dc;
                let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
                t_min = t_min.max(lo);
                t_max = t_max.min(hi);
                if t_min > t_max {
                    return None;
                }
            }
        }
        if t_max < 0.0 {
            None
        } else if t_min >= 0.0 {
            Some(t_min)
        } else {
            // Ray starts inside the box.
            Some(0.0)
        }
    }
}

/// Distance along a ray to a horizontal line `y = line_y`, if hit forward.
pub fn ray_to_horizontal_line(origin: Vec2, dir: Vec2, line_y: f32) -> Option<f32> {
    if dir.y.abs() < 1e-9 {
        return None;
    }
    let t = (line_y - origin.y) / dir.y;
    (t >= 0.0).then_some(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_rotation_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(std::f32::consts::FRAC_PI_2);
        assert!((v.x).abs() < 1e-6 && (v.y - 1.0).abs() < 1e-6);
    }

    #[test]
    fn obb_contains_center_and_not_far_point() {
        let b = Obb::new(Vec2::new(1.0, 1.0), 0.5, 0.25, 0.3);
        assert!(b.contains(Vec2::new(1.0, 1.0)));
        assert!(!b.contains(Vec2::new(3.0, 3.0)));
    }

    #[test]
    fn aligned_boxes_overlap_iff_close() {
        let a = Obb::new(Vec2::new(0.0, 0.0), 0.5, 0.25, 0.0);
        let near = Obb::new(Vec2::new(0.8, 0.0), 0.5, 0.25, 0.0);
        let far = Obb::new(Vec2::new(1.2, 0.0), 0.5, 0.25, 0.0);
        assert!(a.intersects(&near));
        assert!(!a.intersects(&far));
    }

    #[test]
    fn intersection_is_symmetric() {
        let a = Obb::new(Vec2::new(0.0, 0.0), 0.5, 0.25, 0.4);
        let b = Obb::new(Vec2::new(0.6, 0.2), 0.5, 0.25, -0.2);
        assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn rotated_boxes_corner_case() {
        // Two boxes whose AABBs overlap but whose OBBs do not (diagonal gap).
        let a = Obb::new(Vec2::new(0.0, 0.0), 1.0, 0.1, std::f32::consts::FRAC_PI_4);
        let b = Obb::new(Vec2::new(0.9, -0.9), 1.0, 0.1, std::f32::consts::FRAC_PI_4);
        assert!(!a.intersects(&b));
    }

    #[test]
    fn ray_hits_box_ahead() {
        let b = Obb::new(Vec2::new(2.0, 0.0), 0.5, 0.5, 0.0);
        let t = b
            .ray_intersection(Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0))
            .unwrap();
        assert!((t - 1.5).abs() < 1e-5);
    }

    #[test]
    fn ray_misses_box_behind() {
        let b = Obb::new(Vec2::new(-2.0, 0.0), 0.5, 0.5, 0.0);
        assert!(b
            .ray_intersection(Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0))
            .is_none());
    }

    #[test]
    fn ray_from_inside_reports_zero() {
        let b = Obb::new(Vec2::new(0.0, 0.0), 1.0, 1.0, 0.0);
        let t = b
            .ray_intersection(Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0))
            .unwrap();
        assert_eq!(t, 0.0);
    }

    #[test]
    fn ray_to_wall() {
        let t = ray_to_horizontal_line(Vec2::new(0.0, 0.2), Vec2::new(0.0, 1.0), 0.8).unwrap();
        assert!((t - 0.6).abs() < 1e-6);
        assert!(ray_to_horizontal_line(Vec2::new(0.0, 0.2), Vec2::new(1.0, 0.0), 0.8).is_none());
    }

    #[test]
    fn ray_against_rotated_box() {
        let b = Obb::new(
            Vec2::new(1.0, 1.0),
            0.5,
            0.1,
            std::f32::consts::FRAC_PI_4,
        );
        let dir = Vec2::new(1.0, 1.0).scale(1.0 / 2f32.sqrt());
        let t = b.ray_intersection(Vec2::new(0.0, 0.0), dir);
        assert!(t.is_some());
        // The box center is sqrt(2) away; first hit must be closer.
        assert!(t.unwrap() < 2f32.sqrt());
    }
}

//! Vehicle-mounted sensors: 360° ray-cast lidar and a coarse occupancy
//! "camera".
//!
//! The paper's high-level state is `[lidar, speed, laneID]` and its
//! low-level state is `[image, speed, laneID]` (Sec. IV-B/IV-C). The lidar
//! here casts `beams` rays against other vehicles' bounding boxes and the
//! track walls; the camera rasterizes a forward window into an occupancy
//! grid that stands in for the testbed's RGB camera after the paper's
//! convolutional encoding.

use crate::geometry::{ray_to_horizontal_line, Vec2};
use crate::track::Track;
use crate::vehicle::{VehicleParams, VehicleState};

/// Configuration of the ray-cast lidar.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LidarConfig {
    /// Number of evenly spaced beams over 360°.
    pub beams: usize,
    /// Maximum sensing range in metres; returns are normalized by this.
    pub max_range: f32,
}

impl Default for LidarConfig {
    fn default() -> Self {
        Self {
            beams: 16,
            max_range: 2.0,
        }
    }
}

/// Casts the lidar for vehicle `ego` against every other vehicle and the
/// two track walls, returning `beams` normalized distances in `[0, 1]`
/// (1 = nothing within range).
///
/// Beam 0 points along the vehicle's heading; beams proceed
/// counter-clockwise.
pub fn lidar_scan(
    ego: usize,
    vehicles: &[VehicleState],
    params: &VehicleParams,
    track: &Track,
    cfg: &LidarConfig,
) -> Vec<f32> {
    let me = &vehicles[ego];
    let origin = Vec2::new(0.0, me.d);
    let obstacles: Vec<_> = vehicles
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != ego)
        .map(|(_, v)| v.obb_relative(me.s, params, track))
        .collect();

    let mut out = Vec::with_capacity(cfg.beams);
    for b in 0..cfg.beams {
        let angle = me.heading + b as f32 / cfg.beams as f32 * std::f32::consts::TAU;
        let dir = Vec2::new(angle.cos(), angle.sin());
        let mut nearest = cfg.max_range;
        for obb in &obstacles {
            if let Some(t) = obb.ray_intersection(origin, dir) {
                nearest = nearest.min(t);
            }
        }
        for wall in [0.0, track.width()] {
            if let Some(t) = ray_to_horizontal_line(origin, dir, wall) {
                nearest = nearest.min(t);
            }
        }
        out.push(nearest / cfg.max_range);
    }
    out
}

/// Configuration of the forward occupancy camera.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CameraConfig {
    /// Grid height (forward cells).
    pub rows: usize,
    /// Grid width (lateral cells).
    pub cols: usize,
    /// Forward extent of the window in metres.
    pub forward_range: f32,
    /// Lateral half-extent of the window in metres.
    pub lateral_half: f32,
}

impl Default for CameraConfig {
    fn default() -> Self {
        Self {
            rows: 12,
            cols: 12,
            forward_range: 1.8,
            lateral_half: 0.6,
        }
    }
}

impl CameraConfig {
    /// Flattened image length (`1 × rows × cols`).
    pub fn image_len(&self) -> usize {
        self.rows * self.cols
    }
}

/// Cell value for out-of-track area.
pub const CAMERA_OFF_TRACK: f32 = 0.5;
/// Cell value for another vehicle.
pub const CAMERA_VEHICLE: f32 = 1.0;

/// Rasterizes the forward window of vehicle `ego` into a `rows × cols`
/// occupancy grid (row 0 nearest the vehicle), flattened row-major.
///
/// Cells covered by another vehicle read [`CAMERA_VEHICLE`]; cells outside
/// the drivable area read [`CAMERA_OFF_TRACK`]; free track reads `0`.
pub fn camera_image(
    ego: usize,
    vehicles: &[VehicleState],
    params: &VehicleParams,
    track: &Track,
    cfg: &CameraConfig,
) -> Vec<f32> {
    let me = &vehicles[ego];
    let obstacles: Vec<_> = vehicles
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != ego)
        .map(|(_, v)| v.obb_relative(me.s, params, track))
        .collect();

    let mut img = vec![0.0f32; cfg.rows * cfg.cols];
    let cell_f = cfg.forward_range / cfg.rows as f32;
    let cell_l = 2.0 * cfg.lateral_half / cfg.cols as f32;
    for r in 0..cfg.rows {
        // Sample the cell center, in the ego's heading-aligned frame.
        let fwd = (r as f32 + 0.5) * cell_f;
        for c in 0..cfg.cols {
            let lat = -cfg.lateral_half + (c as f32 + 0.5) * cell_l;
            let p_local = Vec2::new(fwd, lat).rotated(me.heading);
            let p = Vec2::new(p_local.x, me.d + p_local.y);
            let mut v = 0.0;
            if !track.contains_lateral(p.y) {
                v = CAMERA_OFF_TRACK;
            }
            for obb in &obstacles {
                if obb.contains(p) {
                    v = CAMERA_VEHICLE;
                    break;
                }
            }
            img[r * cfg.cols + c] = v;
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    fn straight(s: f32, d: f32) -> VehicleState {
        VehicleState {
            s,
            d,
            heading: 0.0,
            speed: 0.1,
        }
    }

    #[test]
    fn lidar_all_clear_reads_walls_only() {
        let t = Track::double_lane();
        let p = VehicleParams::default();
        let cfg = LidarConfig::default();
        let scan = lidar_scan(0, &[straight(0.0, 0.4)], &p, &t, &cfg);
        assert_eq!(scan.len(), cfg.beams);
        // Beam 0 looks straight ahead: nothing for max_range.
        assert!((scan[0] - 1.0).abs() < 1e-6);
        // The beam pointing straight up (quarter of the beams around) hits
        // the outer wall at 0.4 m -> 0.2 normalized.
        let up = cfg.beams / 4;
        assert!((scan[up] - 0.4 / cfg.max_range).abs() < 1e-4);
        // All values normalized.
        assert!(scan.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn lidar_sees_vehicle_ahead() {
        let t = Track::double_lane();
        let p = VehicleParams::default();
        let cfg = LidarConfig::default();
        let vs = [straight(0.0, 0.2), straight(1.0, 0.2)];
        let scan = lidar_scan(0, &vs, &p, &t, &cfg);
        // Front beam hits the other vehicle's rear face at 1.0 - 0.125.
        let expected = (1.0 - p.length / 2.0) / cfg.max_range;
        assert!((scan[0] - expected).abs() < 1e-3, "scan[0] = {}", scan[0]);
    }

    #[test]
    fn lidar_sees_across_wraparound() {
        let t = Track::double_lane();
        let p = VehicleParams::default();
        let cfg = LidarConfig::default();
        let vs = [straight(11.8, 0.2), straight(0.3, 0.2)];
        let scan = lidar_scan(0, &vs, &p, &t, &cfg);
        assert!(
            scan[0] < 0.25,
            "vehicle just past the wrap must be visible, scan[0] = {}",
            scan[0]
        );
    }

    #[test]
    fn camera_marks_vehicle_and_off_track() {
        let t = Track::double_lane();
        let p = VehicleParams::default();
        let cfg = CameraConfig::default();
        let vs = [straight(0.0, 0.2), straight(0.9, 0.2)];
        let img = camera_image(0, &vs, &p, &t, &cfg);
        assert_eq!(img.len(), cfg.image_len());
        assert!(
            img.iter().any(|&v| v == CAMERA_VEHICLE),
            "vehicle ahead must appear in the image"
        );
        // Ego is at d=0.2; the window extends to d in [-0.4, 0.8]; cells
        // below the track read off-track.
        assert!(img.iter().any(|&v| v == CAMERA_OFF_TRACK));
    }

    #[test]
    fn camera_empty_when_alone_mid_track() {
        let t = Track::new(12.0, 0.4, 4); // wide track, ego in the middle
        let p = VehicleParams::default();
        let cfg = CameraConfig {
            lateral_half: 0.5,
            ..CameraConfig::default()
        };
        let img = camera_image(0, &[straight(0.0, 0.8)], &p, &t, &cfg);
        assert!(img.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn camera_rotates_with_heading() {
        let t = Track::double_lane();
        let p = VehicleParams::default();
        let cfg = CameraConfig::default();
        let mut ego = straight(0.0, 0.2);
        ego.heading = 0.4;
        let other = straight(0.9, 0.2);
        let img_straight = camera_image(0, &[straight(0.0, 0.2), other], &p, &t, &cfg);
        let img_turned = camera_image(0, &[ego, other], &p, &t, &cfg);
        assert_ne!(img_straight, img_turned);
    }
}

//! Vectorized batch rollout engine: N independent lane-change worlds
//! stepped through struct-of-arrays state.
//!
//! [`BatchWorld`] holds the poses of `n_worlds × n_vehicles` vehicles in
//! contiguous columns (`s`, `d`, `heading`, `speed`) and advances any
//! subset of worlds per call. Sensing and collision checking are the hot
//! path: both sensors and the separating-axis collision test run against
//! per-vehicle trig caches (one `sin_cos` per heading instead of one per
//! ray/cell/obstacle/pair), and conservative bounding-circle far rejects
//! skip obstacles provably beyond a sensor's reach and vehicle pairs
//! provably too far apart to touch.
//!
//! # Determinism contract
//!
//! Every per-world result — poses, lidar scans, camera images, rewards,
//! collision/done flags, and the RNG stream — is **bit-identical** to
//! stepping a scalar [`LaneChangeEnv`] seeded with
//! [`replica_seed`]`(base, w)` through the same commands. The caches are
//! safe because `f32::sin_cos` is defined as `(self.sin(), self.cos())`
//! (so a cached pair equals the per-call values), inlined rotations repeat
//! [`crate::geometry::Vec2::rotated`]'s exact arithmetic, and the camera's
//! circle reject only skips obstacles whose `contains` test is provably
//! false. The contract is pinned by the differential proptest suite in
//! `crates/sim/tests/batch_equivalence.rs`; any change to the scalar
//! environment or sensors must keep that suite passing (extend it when
//! adding observable state).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::env::{
    replica_seed, EnvConfig, LaneChangeEnv, Observation, StepOutcome, VehicleRole, VehicleSpawn,
};
use crate::geometry::Vec2;
use crate::options::{DrivingOption, ScriptedExecutor};
use crate::sensors::{CAMERA_OFF_TRACK, CAMERA_VEHICLE};
use crate::vehicle::{VehicleCommand, VehicleState};

/// N independent replicas of a [`LaneChangeEnv`] in struct-of-arrays
/// layout. World `w`, vehicle `i` lives at column index
/// `w * num_vehicles + i`.
#[derive(Debug)]
pub struct BatchWorld {
    cfg: EnvConfig,
    spawns: Vec<VehicleSpawn>,
    executor: ScriptedExecutor,
    n_worlds: usize,
    n_vehicles: usize,
    // World-major pose columns, one entry per (world, vehicle).
    s: Vec<f32>,
    d: Vec<f32>,
    heading: Vec<f32>,
    speed: Vec<f32>,
    // Per-world episode state.
    rngs: Vec<StdRng>,
    step_count: Vec<usize>,
    done: Vec<bool>,
    // Per-(world, vehicle) episode flags, world-major like the poses.
    initial_lanes: Vec<usize>,
    needs_merge: Vec<bool>,
    collided: Vec<bool>,
    // Memoized lidar beam directions per (world, vehicle): `cos`/`sin`
    // are pure functions of the heading and beam index, so when a
    // vehicle's heading bits are unchanged since its last sweep the
    // cached directions are bit-identical to recomputing them.
    // `beam_heading` starts at NaN (never equal) and resets keep the
    // cache valid because heading resets to exactly 0.0.
    beam_heading: Vec<f32>,
    beam_cos: Vec<f32>,
    beam_sin: Vec<f32>,
}

/// Cached trig for one vehicle: `sin_cos(heading)` for forward rotations
/// (camera frame, OBB axes) and `sin_cos(-heading)` for inverse rotations
/// (point/ray into the OBB's local frame). The two must be cached
/// separately — `sin_cos(-h)` is computed on `-h`, not sign-flipped from
/// `sin_cos(h)` — to stay bitwise identical to the scalar path.
#[derive(Clone, Copy)]
struct Trig {
    sin_h: f32,
    cos_h: f32,
    sin_nh: f32,
    cos_nh: f32,
}

impl Trig {
    fn of(heading: f32) -> Self {
        let (sin_h, cos_h) = heading.sin_cos();
        let (sin_nh, cos_nh) = (-heading).sin_cos();
        Self {
            sin_h,
            cos_h,
            sin_nh,
            cos_nh,
        }
    }
}

/// One obstacle prepared for an ego's sensor pass: its OBB center in the
/// ego-relative frame, the ego's lidar origin pre-transformed into the
/// obstacle's local frame (beam-invariant), the obstacle's inverse
/// rotation, and the squared center distance to the ego's sensor origin
/// (for the conservative far rejects).
#[derive(Clone, Copy)]
struct Obstacle {
    center: Vec2,
    o_local: Vec2,
    sin_nh: f32,
    cos_nh: f32,
    dist2: f32,
}

/// The two local axes of an OBB with cached trig — exactly
/// `Vec2::new(1.0, 0.0).rotated(h)` / `Vec2::new(0.0, 1.0).rotated(h)`
/// with `sin_cos(h)` substituted (the `*1.0`/`*0.0` terms are kept so the
/// arithmetic is literally the same; the compiler folds them under IEEE
/// semantics).
fn obb_axes(t: Trig) -> [Vec2; 2] {
    [
        Vec2::new(t.cos_h * 1.0 - t.sin_h * 0.0, t.sin_h * 1.0 + t.cos_h * 0.0),
        Vec2::new(t.cos_h * 0.0 - t.sin_h * 1.0, t.sin_h * 0.0 + t.cos_h * 1.0),
    ]
}

/// The four corners of an OBB from its cached axes — the exact
/// construction of [`crate::geometry::Obb::corners`].
fn obb_corners(center: Vec2, axes: &[Vec2; 2], half_len: f32, half_wid: f32) -> [Vec2; 4] {
    let u = axes[0].scale(half_len);
    let v = axes[1].scale(half_wid);
    [
        center.add(u).add(v),
        center.add(u).sub(v),
        center.sub(u).sub(v),
        center.sub(u).add(v),
    ]
}

/// [`crate::geometry::Obb::intersects`] (separating-axis test) on cached
/// trig: same axes, same corner construction, same projection fold and
/// comparison order, no per-call `sin_cos` or heap allocation.
fn sat_intersects(
    center_a: Vec2,
    ta: Trig,
    center_b: Vec2,
    tb: Trig,
    half_len: f32,
    half_wid: f32,
) -> bool {
    let axes_a = obb_axes(ta);
    let axes_b = obb_axes(tb);
    let ca = obb_corners(center_a, &axes_a, half_len, half_wid);
    let cb = obb_corners(center_b, &axes_b, half_len, half_wid);
    for axis in [axes_a[0], axes_a[1], axes_b[0], axes_b[1]] {
        let (mut amin, mut amax) = (f32::INFINITY, f32::NEG_INFINITY);
        for c in &ca {
            let p = c.dot(axis);
            amin = amin.min(p);
            amax = amax.max(p);
        }
        let (mut bmin, mut bmax) = (f32::INFINITY, f32::NEG_INFINITY);
        for c in &cb {
            let p = c.dot(axis);
            bmin = bmin.min(p);
            bmax = bmax.max(p);
        }
        if amax < bmin || bmax < amin {
            return false;
        }
    }
    true
}

impl BatchWorld {
    /// Builds `n_worlds` replicas of `proto`: same config and spawn table,
    /// world `w` seeded with [`replica_seed`]`(proto.seed(), w)` so every
    /// replica owns an independent RNG stream (and world 0 reproduces
    /// `proto` as freshly constructed). Like [`LaneChangeEnv::new`], every
    /// world is reset once during construction.
    ///
    /// # Panics
    ///
    /// Panics when `n_worlds` is zero.
    pub fn replicate(proto: &LaneChangeEnv, n_worlds: usize) -> Self {
        assert!(n_worlds >= 1, "batch needs at least one world");
        let cfg = *proto.config();
        let spawns = proto.spawns().to_vec();
        let n = spawns.len();
        let slots = n_worlds * n;
        let mut world = Self {
            cfg,
            spawns,
            executor: ScriptedExecutor::new(),
            n_worlds,
            n_vehicles: n,
            s: vec![0.0; slots],
            d: vec![0.0; slots],
            heading: vec![0.0; slots],
            speed: vec![0.0; slots],
            rngs: (0..n_worlds)
                .map(|w| StdRng::seed_from_u64(replica_seed(proto.seed(), w)))
                .collect(),
            step_count: vec![0; n_worlds],
            done: vec![true; n_worlds],
            initial_lanes: vec![0; slots],
            needs_merge: vec![false; slots],
            collided: vec![false; slots],
            beam_heading: vec![f32::NAN; slots],
            beam_cos: vec![0.0; slots * cfg.lidar.beams],
            beam_sin: vec![0.0; slots * cfg.lidar.beams],
        };
        for w in 0..n_worlds {
            world.reset_world(w);
        }
        world
    }

    /// Number of worlds in the batch.
    pub fn num_worlds(&self) -> usize {
        self.n_worlds
    }

    /// Vehicles per world (learners + scripted).
    pub fn num_vehicles(&self) -> usize {
        self.n_vehicles
    }

    /// The shared environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }

    /// Indices of the learner-controlled vehicles (same in every world).
    pub fn learner_indices(&self) -> Vec<usize> {
        self.spawns
            .iter()
            .enumerate()
            .filter(|(_, sp)| matches!(sp.role, VehicleRole::Learner))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether world `w`'s episode has ended.
    pub fn is_done(&self, w: usize) -> bool {
        self.done[w]
    }

    /// Steps taken in world `w`'s current episode.
    pub fn step_count(&self, w: usize) -> usize {
        self.step_count[w]
    }

    /// Kinematic state of vehicle `i` in world `w`.
    pub fn vehicle_state(&self, w: usize, i: usize) -> VehicleState {
        let slot = w * self.n_vehicles + i;
        VehicleState {
            s: self.s[slot],
            d: self.d[slot],
            heading: self.heading[slot],
            speed: self.speed[slot],
        }
    }

    /// Whether vehicle `i` in world `w` must merge (see
    /// [`LaneChangeEnv::needs_merge`]).
    pub fn needs_merge(&self, w: usize, i: usize) -> bool {
        self.needs_merge[w * self.n_vehicles + i]
    }

    /// Whether vehicle `i` in world `w` has merged (see
    /// [`LaneChangeEnv::has_merged`]).
    pub fn has_merged(&self, w: usize, i: usize) -> bool {
        let slot = w * self.n_vehicles + i;
        !self.collided[slot]
            && self.cfg.track.lane_of(self.d[slot]) != self.initial_lanes[slot]
    }

    /// Whether vehicle `i` in world `w` has collided this episode.
    pub fn has_collided(&self, w: usize, i: usize) -> bool {
        self.collided[w * self.n_vehicles + i]
    }

    /// World `w`'s RNG stream position (see
    /// [`crate::env::CooperativeWorld::rng_state`]).
    pub fn rng_state(&self, w: usize) -> Vec<u64> {
        self.rngs[w].state().to_vec()
    }

    /// Restores world `w`'s RNG stream position. Ignores input of the
    /// wrong length.
    pub fn set_rng_state(&mut self, w: usize, state: &[u64]) {
        if let Ok(words) = <[u64; 4]>::try_from(state) {
            self.rngs[w] = StdRng::from_state(words);
        }
    }

    /// Starts a new episode in world `w` and returns its initial
    /// observations — the batch counterpart of [`LaneChangeEnv::reset`],
    /// drawing from world `w`'s own RNG stream in the same order.
    pub fn reset_world(&mut self, w: usize) -> Vec<Observation> {
        let num_lanes = self.cfg.track.num_lanes;
        let n = self.n_vehicles;
        {
            let rng = &mut self.rngs[w];
            let cfg = &self.cfg;
            for (i, sp) in self.spawns.iter().enumerate() {
                let jitter = if sp.s_jitter > 0.0 {
                    rng.gen_range(-sp.s_jitter..sp.s_jitter)
                } else {
                    0.0
                };
                let lane = if sp.random_lane {
                    rng.gen_range(0..num_lanes)
                } else {
                    sp.lane
                };
                let slot = w * n + i;
                self.s[slot] = cfg.track.wrap(sp.s + jitter);
                self.d[slot] = cfg.track.lane_center(lane);
                self.heading[slot] = 0.0;
                self.speed[slot] = sp.speed;
            }
        }
        self.step_count[w] = 0;
        self.done[w] = false;
        for i in 0..n {
            let slot = w * n + i;
            self.initial_lanes[slot] = self.cfg.track.lane_of(self.d[slot]);
            self.collided[slot] = false;
        }
        self.compute_needs_merge(w);
        hero_telemetry::counter_add("lidar_scans", n as u64);
        hero_telemetry::counter_add("camera_frames", n as u64);
        self.sense_worlds(&[w]).pop().expect("one world sensed")
    }

    fn compute_needs_merge(&mut self, w: usize) {
        const LOOKAHEAD: f32 = 2.5;
        let n = self.n_vehicles;
        let track = &self.cfg.track;
        for (i, sp) in self.spawns.iter().enumerate() {
            let flag = matches!(sp.role, VehicleRole::Learner)
                && self.spawns.iter().enumerate().any(|(j, other)| {
                    i != j
                        && track.lane_of(self.d[w * n + j]) == track.lane_of(self.d[w * n + i])
                        && other.speed < sp.speed
                        && matches!(other.role, VehicleRole::Scripted { .. })
                        && {
                            let gap = track.signed_delta(self.s[w * n + i], self.s[w * n + j]);
                            gap > 0.0 && gap <= LOOKAHEAD
                        }
                });
            self.needs_merge[w * n + i] = flag;
        }
    }

    /// Advances the listed worlds one control period each; `commands[k]`
    /// holds the per-vehicle commands for `worlds[k]` (entries for
    /// scripted vehicles are ignored). Returns one [`StepOutcome`] per
    /// listed world, in order.
    ///
    /// # Panics
    ///
    /// Panics when the command shape is wrong or any listed world's
    /// episode already ended.
    pub fn step_worlds(
        &mut self,
        worlds: &[usize],
        commands: &[Vec<VehicleCommand>],
    ) -> Vec<StepOutcome> {
        let _step_span = hero_telemetry::span("env_step");
        hero_telemetry::counter_add("env_steps", worlds.len() as u64);
        assert_eq!(
            worlds.len(),
            commands.len(),
            "one command set per stepped world required"
        );
        let n = self.n_vehicles;

        // Phase 1: kinematics, every world.
        let mut before_s = vec![0.0f32; worlds.len() * n];
        for (k, (&w, cmds)) in worlds.iter().zip(commands).enumerate() {
            assert_eq!(cmds.len(), n, "one command per vehicle required");
            assert!(!self.done[w], "step() called on a finished episode");
            for i in 0..n {
                let slot = w * n + i;
                before_s[k * n + i] = self.s[slot];
                let mut v = self.vehicle_state(w, i);
                let cmd = match self.spawns[i].role {
                    VehicleRole::Learner => cmds[i],
                    VehicleRole::Scripted { speed } => {
                        let mut c =
                            self.executor
                                .command(DrivingOption::KeepLane, &v, &self.cfg.track);
                        c.linear = speed;
                        c
                    }
                };
                v.step(cmd, &self.cfg.vehicle, &self.cfg.track, self.cfg.dt);
                self.s[slot] = v.s;
                self.d[slot] = v.d;
                self.heading[slot] = v.heading;
                self.speed[slot] = v.speed;
            }
            self.step_count[w] += 1;
        }

        // Phase 2: collisions, termination, rewards.
        let mut all_collisions = Vec::with_capacity(worlds.len());
        let mut all_rewards = Vec::with_capacity(worlds.len());
        let mut all_done = Vec::with_capacity(worlds.len());
        let mut all_mean_speed = Vec::with_capacity(worlds.len());
        for (k, &w) in worlds.iter().enumerate() {
            let collisions = self.detect_collisions(w);
            for (i, &flag) in collisions.iter().enumerate() {
                self.collided[w * n + i] |= flag;
            }
            let any_collision = collisions.iter().any(|&c| c);
            self.done[w] = any_collision || self.step_count[w] >= self.cfg.max_steps;

            let rewards: Vec<f32> = (0..n)
                .map(|i| {
                    let travel = self
                        .cfg
                        .track
                        .signed_delta(before_s[k * n + i], self.s[w * n + i])
                        .max(0.0)
                        / (self.cfg.vehicle.max_speed * self.cfg.dt);
                    let col = if any_collision {
                        self.cfg.collision_penalty
                    } else {
                        0.0
                    };
                    self.cfg.alpha * col + (1.0 - self.cfg.alpha) * travel
                })
                .collect();
            let mean_speed =
                (0..n).map(|i| self.speed[w * n + i]).sum::<f32>() / n as f32;
            all_collisions.push(collisions);
            all_rewards.push(rewards);
            all_done.push(self.done[w]);
            all_mean_speed.push(mean_speed);
        }

        // Phase 3: batched sensor sweep across every stepped world.
        let observations = {
            let _sensor_span = hero_telemetry::span("sensors");
            hero_telemetry::counter_add("lidar_scans", (worlds.len() * n) as u64);
            hero_telemetry::counter_add("camera_frames", (worlds.len() * n) as u64);
            self.sense_worlds(worlds)
        };

        observations
            .into_iter()
            .zip(all_rewards)
            .zip(all_collisions)
            .zip(all_done)
            .zip(all_mean_speed)
            .map(
                |((((observations, rewards), collisions), done), mean_speed)| StepOutcome {
                    observations,
                    rewards,
                    collisions,
                    done,
                    mean_speed,
                },
            )
            .collect()
    }

    /// Collision detection for world `w`, bit-identical to
    /// [`LaneChangeEnv`]'s: the wall test and separating-axis test run on
    /// one cached `sin_cos` per vehicle (`sin_cos(h) == (h.sin(),
    /// h.cos())`, see the module docs), and vehicle pairs whose centers
    /// are more than three circumradii apart skip the SAT entirely —
    /// boxes separated by over `2·√2` circumradii always project apart on
    /// one of the first OBB's two axes, and the extra margin dwarfs f32
    /// rounding, so the skipped test could only ever report "no overlap".
    fn detect_collisions(&self, w: usize) -> Vec<bool> {
        let n = self.n_vehicles;
        let mut hit = vec![false; n];
        let track = &self.cfg.track;
        let params = &self.cfg.vehicle;
        let half_len = params.length / 2.0;
        let half_wid = params.width / 2.0;
        let trig: Vec<Trig> = (0..n).map(|i| Trig::of(self.heading[w * n + i])).collect();
        for (i, t) in trig.iter().enumerate() {
            let half_w = params.width / 2.0 + params.length / 2.0 * t.sin_h.abs();
            let d = self.d[w * n + i];
            if d - half_w < 0.0 || d + half_w > track.width() {
                hit[i] = true;
            }
        }
        let sat_reject2 = 9.0 * (half_len * half_len + half_wid * half_wid);
        for i in 0..n {
            let si = self.s[w * n + i];
            let center_i = Vec2::new(track.signed_delta(si, si), self.d[w * n + i]);
            for j in (i + 1)..n {
                let center_j =
                    Vec2::new(track.signed_delta(si, self.s[w * n + j]), self.d[w * n + j]);
                let dx = center_j.x - center_i.x;
                let dy = center_j.y - center_i.y;
                if dx * dx + dy * dy > sat_reject2 {
                    continue;
                }
                if sat_intersects(center_i, trig[i], center_j, trig[j], half_len, half_wid) {
                    hit[i] = true;
                    hit[j] = true;
                }
            }
        }
        hit
    }

    /// Renders every vehicle's observation in every listed world in one
    /// ego-major pass over shared trig caches, with conservative
    /// bounding-circle far rejects that skip obstacles provably outside a
    /// sensor's reach (bitwise-safe, see the inline arguments).
    fn sense_worlds(&mut self, worlds: &[usize]) -> Vec<Vec<Observation>> {
        let n = self.n_vehicles;
        let track = self.cfg.track;
        let params = self.cfg.vehicle;
        let half_len = params.length / 2.0;
        let half_wid = params.width / 2.0;
        let lidar = self.cfg.lidar;
        let cam = self.cfg.camera;
        let n_egos = worlds.len() * n;

        // One sin_cos pair per vehicle per sweep (instead of per
        // ray/cell/obstacle) — see the module docs for why this is
        // bitwise-safe.
        let trig: Vec<Trig> = worlds
            .iter()
            .flat_map(|&w| (0..n).map(move |i| w * n + i))
            .map(|slot| Trig::of(self.heading[slot]))
            .collect();

        // Obstacles per ego: every other vehicle in the ego's world,
        // pre-transformed into the ego-relative frame (and the lidar
        // origin into each obstacle's local frame — beam-invariant).
        let mut obstacles: Vec<Obstacle> = Vec::with_capacity(n_egos * (n - 1).max(0));
        for (wk, &w) in worlds.iter().enumerate() {
            for i in 0..n {
                let ego_slot = w * n + i;
                let origin = Vec2::new(0.0, self.d[ego_slot]);
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let slot = w * n + j;
                    let t = trig[wk * n + j];
                    let center =
                        Vec2::new(track.signed_delta(self.s[ego_slot], self.s[slot]), self.d[slot]);
                    let rel = origin.sub(center);
                    // origin.sub(center).rotated(-heading) with cached trig.
                    let o_local = Vec2::new(
                        t.cos_nh * rel.x - t.sin_nh * rel.y,
                        t.sin_nh * rel.x + t.cos_nh * rel.y,
                    );
                    obstacles.push(Obstacle {
                        center,
                        o_local,
                        sin_nh: t.sin_nh,
                        cos_nh: t.cos_nh,
                        dist2: rel.x * rel.x + rel.y * rel.y,
                    });
                }
            }
        }
        let obs_per_ego = n - 1;

        // Far rejects. Every point of an obstacle's box lies within one
        // circumradius of its center, so:
        //  - lidar: a slab hit at parameter `t` (unit direction) is at
        //    least `dist - circum` away; the scan folds `nearest.min(t)`
        //    from `nearest = max_range`, so any obstacle whose every hit
        //    exceeds `max_range` leaves the scan bit-identical. Rejecting
        //    past `max_range + 2·circum` keeps a full circumradius
        //    (~0.15 m) of slack over f32 rounding.
        //  - camera: a cell can only read `CAMERA_VEHICLE` when its
        //    center is within one circumradius of the obstacle's center
        //    (`Obb::contains` implies it), and cell centers lie within
        //    `√(forward² + lateral²)` of the sensor origin; an obstacle
        //    beyond the sum of both radii (plus 5 cm of slack over f32
        //    rounding) can therefore never mark a cell.
        let circum2 = half_len * half_len + half_wid * half_wid;
        let lidar_reject2 = {
            let r = lidar.max_range + 2.0 * circum2.sqrt();
            r * r
        };
        let cam_reject2 = {
            let window = (cam.forward_range * cam.forward_range
                + cam.lateral_half * cam.lateral_half)
                .sqrt();
            let r = window + circum2.sqrt() + 0.05;
            r * r
        };

        let walls = [0.0f32, track.width()];
        let cell_f = cam.forward_range / cam.rows as f32;
        let cell_l = 2.0 * cam.lateral_half / cam.cols as f32;
        let mut near_lidar: Vec<Obstacle> = Vec::with_capacity(obs_per_ego);
        let mut near_cam: Vec<Obstacle> = Vec::with_capacity(obs_per_ego);

        let mut out: Vec<Vec<Observation>> = Vec::with_capacity(worlds.len());
        for (wk, &w) in worlds.iter().enumerate() {
            let mut world_obs: Vec<Observation> = Vec::with_capacity(n);
            for i in 0..n {
                let e = wk * n + i;
                let ego_slot = w * n + i;
                let t = trig[e];
                let heading = self.heading[ego_slot];
                let d_ego = self.d[ego_slot];
                near_lidar.clear();
                near_cam.clear();
                for ob in &obstacles[e * obs_per_ego..(e + 1) * obs_per_ego] {
                    if ob.dist2 <= lidar_reject2 {
                        near_lidar.push(*ob);
                    }
                    if ob.dist2 <= cam_reject2 {
                        near_cam.push(*ob);
                    }
                }

                // Lidar sweep for this ego, over the memoized beam
                // directions (refreshed only when the heading bits
                // changed; same pure-function outputs either way).
                let beam_base = ego_slot * lidar.beams;
                if self.beam_heading[ego_slot].to_bits() != heading.to_bits() {
                    for b in 0..lidar.beams {
                        let angle =
                            heading + b as f32 / lidar.beams as f32 * std::f32::consts::TAU;
                        self.beam_cos[beam_base + b] = angle.cos();
                        self.beam_sin[beam_base + b] = angle.sin();
                    }
                    self.beam_heading[ego_slot] = heading;
                }
                let mut scan = vec![0.0f32; lidar.beams];
                for (b, out) in scan.iter_mut().enumerate() {
                    let dir =
                        Vec2::new(self.beam_cos[beam_base + b], self.beam_sin[beam_base + b]);
                    let mut nearest = lidar.max_range;
                    for ob in &near_lidar {
                        // dir.rotated(-heading) with cached trig, then the
                        // exact slab test of `Obb::ray_intersection`.
                        let dl = Vec2::new(
                            ob.cos_nh * dir.x - ob.sin_nh * dir.y,
                            ob.sin_nh * dir.x + ob.cos_nh * dir.y,
                        );
                        if let Some(t) = slab_ray(ob.o_local, dl, half_len, half_wid) {
                            nearest = nearest.min(t);
                        }
                    }
                    for wall in walls {
                        // `ray_to_horizontal_line`, inlined.
                        if dir.y.abs() >= 1e-9 {
                            let t = (wall - d_ego) / dir.y;
                            if t >= 0.0 {
                                nearest = nearest.min(t);
                            }
                        }
                    }
                    *out = nearest / lidar.max_range;
                }

                // Camera raster for this ego. The scalar path walks every
                // cell × obstacle; here the loop is inverted: one base
                // pass marks off-track cells, then each obstacle visits
                // only the cells its bounding circle can reach. This is
                // bit-identical because a cell's value is order-free —
                // `CAMERA_VEHICLE` wins over `CAMERA_OFF_TRACK` wins over
                // free space, whichever obstacle matches — and the
                // per-cell coordinates are recomputed with the exact same
                // expressions as the base pass.
                let mut img = vec![0.0f32; cam.rows * cam.cols];
                for r in 0..cam.rows {
                    let fwd = (r as f32 + 0.5) * cell_f;
                    for c in 0..cam.cols {
                        let lat = -cam.lateral_half + (c as f32 + 0.5) * cell_l;
                        let py = d_ego + (t.sin_h * fwd + t.cos_h * lat);
                        if !track.contains_lateral(py) {
                            img[r * cam.cols + c] = CAMERA_OFF_TRACK;
                        }
                    }
                }
                for ob in &near_cam {
                    // The obstacle center in the ego's (fwd, lat) grid
                    // frame — selection only, so ordinary fp arithmetic
                    // with a slack radius is safe: a `contains` hit
                    // requires the cell center within one circumradius of
                    // the obstacle center, and 1 cm of slack dwarfs f32
                    // rounding on these ~2 m coordinates.
                    let rel_x = ob.center.x;
                    let rel_y = ob.center.y - d_ego;
                    let qf = t.cos_nh * rel_x - t.sin_nh * rel_y;
                    let ql = t.sin_nh * rel_x + t.cos_nh * rel_y;
                    let r_sel = circum2.sqrt() + 0.01;
                    let r_lo = ((qf - r_sel) / cell_f - 0.5).floor().max(0.0) as usize;
                    let r_hi = ((qf + r_sel) / cell_f - 0.5).ceil().min((cam.rows - 1) as f32);
                    let c_lo = ((ql + cam.lateral_half - r_sel) / cell_l - 0.5)
                        .floor()
                        .max(0.0) as usize;
                    let c_hi = ((ql + cam.lateral_half + r_sel) / cell_l - 0.5)
                        .ceil()
                        .min((cam.cols - 1) as f32);
                    if r_hi < 0.0 || c_hi < 0.0 {
                        continue;
                    }
                    let (r_hi, c_hi) = (r_hi as usize, c_hi as usize);
                    for r in r_lo..=r_hi {
                        let fwd = (r as f32 + 0.5) * cell_f;
                        for c in c_lo..=c_hi {
                            let lat = -cam.lateral_half + (c as f32 + 0.5) * cell_l;
                            // Vec2::new(fwd, lat).rotated(heading) with
                            // cached trig — same expressions as the scalar
                            // path.
                            let px = t.cos_h * fwd - t.sin_h * lat;
                            let py = d_ego + (t.sin_h * fwd + t.cos_h * lat);
                            // p.sub(center).rotated(-heading) with cached
                            // trig, then `Obb::contains`'s exact comparison.
                            let dx = px - ob.center.x;
                            let dy = py - ob.center.y;
                            let rel_x = ob.cos_nh * dx - ob.sin_nh * dy;
                            let rel_y = ob.sin_nh * dx + ob.cos_nh * dy;
                            if rel_x.abs() <= half_len && rel_y.abs() <= half_wid {
                                img[r * cam.cols + c] = CAMERA_VEHICLE;
                            }
                        }
                    }
                }

                world_obs.push(Observation {
                    lidar: scan,
                    image: img,
                    speed_norm: self.speed[ego_slot] / params.max_speed,
                    lane_norm: track.lane_of(self.d[ego_slot]) as f32 / track.num_lanes as f32,
                    lane_id: track.lane_of(self.d[ego_slot]),
                    speed: self.speed[ego_slot],
                });
            }
            out.push(world_obs);
        }
        out
    }
}

/// The slab test of [`crate::geometry::Obb::ray_intersection`] on
/// pre-transformed local-frame inputs — identical arithmetic, identical
/// branch structure.
fn slab_ray(o: Vec2, d: Vec2, half_len: f32, half_wid: f32) -> Option<f32> {
    let mut t_min = f32::NEG_INFINITY;
    let mut t_max = f32::INFINITY;
    for (oc, dc, half) in [(o.x, d.x, half_len), (o.y, d.y, half_wid)] {
        if dc.abs() < 1e-9 {
            if oc.abs() > half {
                return None;
            }
        } else {
            let t1 = (-half - oc) / dc;
            let t2 = (half - oc) / dc;
            let (lo, hi) = if t1 < t2 { (t1, t2) } else { (t2, t1) };
            t_min = t_min.max(lo);
            t_max = t_max.min(hi);
            if t_min > t_max {
                return None;
            }
        }
    }
    if t_max < 0.0 {
        None
    } else if t_min >= 0.0 {
        Some(t_min)
    } else {
        Some(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::CooperativeWorld;
    use crate::scenario;

    fn coast(env_speeds: &[f32]) -> Vec<VehicleCommand> {
        env_speeds.iter().map(|&s| VehicleCommand::coast(s)).collect()
    }

    #[test]
    fn world_zero_matches_proto_bit_for_bit() {
        let mut scalar = scenario::congestion(EnvConfig::default(), 11);
        let mut batch = BatchWorld::replicate(&scalar, 3);
        for _ in 0..2 {
            let so = scalar.reset();
            let bo = batch.reset_world(0);
            assert_eq!(so, bo);
            while !scalar.is_done() {
                let speeds: Vec<f32> =
                    (0..scalar.num_vehicles()).map(|i| scalar.vehicle_state(i).speed).collect();
                let cmds = coast(&speeds);
                let s_out = scalar.step(&cmds);
                let b_out = batch.step_worlds(&[0], &[cmds.clone()]).pop().unwrap();
                assert_eq!(s_out.observations, b_out.observations);
                for (a, b) in s_out.rewards.iter().zip(&b_out.rewards) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
                assert_eq!(s_out.collisions, b_out.collisions);
                assert_eq!(s_out.done, b_out.done);
                assert_eq!(s_out.mean_speed.to_bits(), b_out.mean_speed.to_bits());
            }
            assert_eq!(scalar.rng_state(), batch.rng_state(0));
        }
    }

    #[test]
    fn worlds_are_independent() {
        let proto = scenario::two_vehicle_merge(EnvConfig::default(), 5);
        let mut batch = BatchWorld::replicate(&proto, 2);
        let before = batch.vehicle_state(1, 0);
        // Stepping world 0 must leave world 1 untouched.
        let cmds: Vec<VehicleCommand> =
            (0..batch.num_vehicles()).map(|i| VehicleCommand::coast(batch.vehicle_state(0, i).speed)).collect();
        batch.step_worlds(&[0], &[cmds]);
        let after = batch.vehicle_state(1, 0);
        assert_eq!(before, after);
        assert_eq!(batch.step_count(0), 1);
        assert_eq!(batch.step_count(1), 0);
    }

    #[test]
    fn rng_state_round_trips() {
        let proto = scenario::congestion(EnvConfig::default(), 3);
        let mut batch = BatchWorld::replicate(&proto, 2);
        let saved = batch.rng_state(1);
        let first = batch.reset_world(1);
        batch.set_rng_state(1, &saved);
        let again = batch.reset_world(1);
        assert_eq!(first, again);
    }
}

//! Unicycle vehicle kinematics in the track's Frenet frame.

use crate::geometry::{Obb, Vec2};
use crate::track::Track;

/// Physical footprint and limits of a vehicle (the paper's small two-wheel
/// prototypes, Fig. 13).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VehicleParams {
    /// Body length in metres.
    pub length: f32,
    /// Body width in metres.
    pub width: f32,
    /// Maximum forward speed (m/s); commands are clamped to `[0, max]`.
    pub max_speed: f32,
    /// Maximum |heading| relative to the track direction, radians.
    pub max_heading: f32,
    /// Maximum |angular speed| (rad/s); commands are clamped.
    pub max_angular: f32,
}

impl Default for VehicleParams {
    fn default() -> Self {
        Self {
            length: 0.25,
            width: 0.15,
            max_speed: 0.25,
            max_heading: 0.6,
            max_angular: 0.3,
        }
    }
}

/// Dynamic state of one vehicle.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct VehicleState {
    /// Longitudinal position along the loop, `[0, track.length)`.
    pub s: f32,
    /// Lateral offset from the inner track edge.
    pub d: f32,
    /// Heading relative to the track direction, radians.
    pub heading: f32,
    /// Current forward speed (m/s).
    pub speed: f32,
}

/// A (linear speed, angular speed) command — the paper's low-level
/// continuous action space (Sec. IV-C).
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub struct VehicleCommand {
    /// Forward speed setpoint (m/s).
    pub linear: f32,
    /// Angular speed (rad/s); positive steers toward higher `d`.
    pub angular: f32,
}

impl VehicleCommand {
    /// Creates a command.
    pub fn new(linear: f32, angular: f32) -> Self {
        Self { linear, angular }
    }

    /// The "keep everything as is" command used by the keep-lane option
    /// when the previous speed should persist.
    pub fn coast(speed: f32) -> Self {
        Self {
            linear: speed,
            angular: 0.0,
        }
    }
}

impl VehicleState {
    /// Advances the state by one control period `dt`, clamping the command
    /// to `params` limits. Longitudinal position wraps around the track;
    /// lateral position is *not* clamped (leaving the track is detected as
    /// a wall collision by the environment).
    pub fn step(&mut self, cmd: VehicleCommand, params: &VehicleParams, track: &Track, dt: f32) {
        let v = cmd.linear.clamp(0.0, params.max_speed);
        let w = cmd.angular.clamp(-params.max_angular, params.max_angular);
        self.heading = (self.heading + w * dt).clamp(-params.max_heading, params.max_heading);
        self.speed = v;
        self.s = track.wrap(self.s + v * self.heading.cos() * dt);
        self.d += v * self.heading.sin() * dt;
    }

    /// The vehicle's oriented bounding box in a frame where longitudinal
    /// position is taken relative to `origin_s` (wrapped). Pass the
    /// observer's `s` so nearby vehicles land near `x = 0` regardless of
    /// loop wrap-around.
    pub fn obb_relative(&self, origin_s: f32, params: &VehicleParams, track: &Track) -> Obb {
        let x = track.signed_delta(origin_s, self.s);
        Obb::new(
            Vec2::new(x, self.d),
            params.length / 2.0,
            params.width / 2.0,
            self.heading,
        )
    }

    /// Lane index of the vehicle's center.
    pub fn lane(&self, track: &Track) -> usize {
        track.lane_of(self.d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn track() -> Track {
        Track::double_lane()
    }

    #[test]
    fn straight_driving_advances_s_only() {
        let mut v = VehicleState {
            s: 0.0,
            d: 0.2,
            heading: 0.0,
            speed: 0.0,
        };
        v.step(
            VehicleCommand::new(0.1, 0.0),
            &VehicleParams::default(),
            &track(),
            1.0,
        );
        assert!((v.s - 0.1).abs() < 1e-6);
        assert!((v.d - 0.2).abs() < 1e-6);
        assert_eq!(v.speed, 0.1);
    }

    #[test]
    fn position_wraps_around_loop() {
        let mut v = VehicleState {
            s: 11.95,
            d: 0.2,
            ..Default::default()
        };
        v.step(
            VehicleCommand::new(0.1, 0.0),
            &VehicleParams::default(),
            &track(),
            1.0,
        );
        assert!(v.s < 0.1, "s should wrap, got {}", v.s);
    }

    #[test]
    fn steering_moves_lateral() {
        let mut v = VehicleState {
            s: 0.0,
            d: 0.2,
            ..Default::default()
        };
        for _ in 0..3 {
            v.step(
                VehicleCommand::new(0.15, 0.2),
                &VehicleParams::default(),
                &track(),
                1.0,
            );
        }
        assert!(v.d > 0.25, "vehicle should drift up, d = {}", v.d);
        assert!(v.heading > 0.0);
    }

    #[test]
    fn commands_are_clamped() {
        let p = VehicleParams::default();
        let mut v = VehicleState::default();
        v.step(VehicleCommand::new(10.0, 10.0), &p, &track(), 1.0);
        assert!(v.speed <= p.max_speed);
        assert!(v.heading <= p.max_heading + 1e-6);
        let mut v2 = VehicleState::default();
        v2.step(VehicleCommand::new(-5.0, 0.0), &p, &track(), 1.0);
        assert_eq!(v2.speed, 0.0, "no reverse gear");
    }

    #[test]
    fn obb_relative_uses_wrapped_delta() {
        let t = track();
        let p = VehicleParams::default();
        let ahead_of_wrap = VehicleState {
            s: 0.3,
            d: 0.2,
            ..Default::default()
        };
        let obb = ahead_of_wrap.obb_relative(11.8, &p, &t);
        assert!((obb.center.x - 0.5).abs() < 1e-5, "x = {}", obb.center.x);
    }

    #[test]
    fn lane_reporting() {
        let t = track();
        let v = VehicleState {
            d: 0.65,
            ..Default::default()
        };
        assert_eq!(v.lane(&t), 1);
    }
}

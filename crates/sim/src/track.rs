//! Looped multi-lane track geometry in Frenet (longitudinal/lateral)
//! coordinates.
//!
//! The paper's testbed is a closed double-lane track (Fig. 9 / Fig. 13).
//! We model it "straightened": longitudinal position `s` wraps modulo the
//! track length and lateral position `d` spans `[0, num_lanes × lane_width]`
//! with lane 0 at the bottom. All vehicle interactions use wrapped relative
//! coordinates, so the loop topology is preserved exactly.

/// Geometry of a closed multi-lane loop track.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Track {
    /// Loop length in metres.
    pub length: f32,
    /// Width of one lane in metres.
    pub lane_width: f32,
    /// Number of parallel lanes (the paper uses 2).
    pub num_lanes: usize,
}

impl Track {
    /// Creates a track.
    ///
    /// # Panics
    ///
    /// Panics when `length` or `lane_width` is non-positive or
    /// `num_lanes == 0`.
    pub fn new(length: f32, lane_width: f32, num_lanes: usize) -> Self {
        assert!(length > 0.0, "track length must be positive");
        assert!(lane_width > 0.0, "lane width must be positive");
        assert!(num_lanes > 0, "track needs at least one lane");
        Self {
            length,
            lane_width,
            num_lanes,
        }
    }

    /// The paper's double-lane testbed layout: a 12 m loop with two 0.4 m
    /// lanes.
    pub fn double_lane() -> Self {
        Self::new(12.0, 0.4, 2)
    }

    /// Total lateral width.
    pub fn width(&self) -> f32 {
        self.lane_width * self.num_lanes as f32
    }

    /// Lateral coordinate of a lane's center line.
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    pub fn lane_center(&self, lane: usize) -> f32 {
        assert!(lane < self.num_lanes, "lane {lane} out of range");
        (lane as f32 + 0.5) * self.lane_width
    }

    /// Index of the lane whose center is nearest to lateral offset `d`
    /// (clamped to the track).
    pub fn lane_of(&self, d: f32) -> usize {
        let idx = (d / self.lane_width).floor();
        (idx.max(0.0) as usize).min(self.num_lanes - 1)
    }

    /// Wraps a longitudinal coordinate into `[0, length)`.
    pub fn wrap(&self, s: f32) -> f32 {
        s.rem_euclid(self.length)
    }

    /// Signed longitudinal offset from `from` to `to`, wrapped into
    /// `[-length/2, length/2)` — the shortest way around the loop.
    pub fn signed_delta(&self, from: f32, to: f32) -> f32 {
        let raw = self.wrap(to) - self.wrap(from);
        if raw >= self.length / 2.0 {
            raw - self.length
        } else if raw < -self.length / 2.0 {
            raw + self.length
        } else {
            raw
        }
    }

    /// Whether lateral offset `d` lies inside the drivable area.
    pub fn contains_lateral(&self, d: f32) -> bool {
        (0.0..=self.width()).contains(&d)
    }

    /// Distance from `d` to the nearest lane center line (the paper's
    /// `r_deviate` input).
    pub fn deviation_from_center(&self, d: f32) -> f32 {
        (d - self.lane_center(self.lane_of(d))).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_lane_layout() {
        let t = Track::double_lane();
        assert_eq!(t.num_lanes, 2);
        assert!((t.width() - 0.8).abs() < 1e-6);
        assert!((t.lane_center(0) - 0.2).abs() < 1e-6);
        assert!((t.lane_center(1) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn lane_of_boundaries() {
        let t = Track::double_lane();
        assert_eq!(t.lane_of(0.0), 0);
        assert_eq!(t.lane_of(0.39), 0);
        assert_eq!(t.lane_of(0.41), 1);
        assert_eq!(t.lane_of(0.79), 1);
        // Clamped outside the track.
        assert_eq!(t.lane_of(-0.5), 0);
        assert_eq!(t.lane_of(5.0), 1);
    }

    #[test]
    fn wrap_behaviour() {
        let t = Track::double_lane();
        assert!((t.wrap(12.5) - 0.5).abs() < 1e-6);
        assert!((t.wrap(-0.5) - 11.5).abs() < 1e-6);
        assert_eq!(t.wrap(0.0), 0.0);
    }

    #[test]
    fn signed_delta_short_way_around() {
        let t = Track::double_lane();
        assert!((t.signed_delta(11.5, 0.5) - 1.0).abs() < 1e-6);
        assert!((t.signed_delta(0.5, 11.5) + 1.0).abs() < 1e-6);
        assert!((t.signed_delta(0.0, 5.0) - 5.0).abs() < 1e-6);
        // Exactly half way is mapped to -length/2.
        assert!((t.signed_delta(0.0, 6.0) + 6.0).abs() < 1e-6);
    }

    #[test]
    fn deviation_from_center() {
        let t = Track::double_lane();
        assert!((t.deviation_from_center(0.2)).abs() < 1e-6);
        assert!((t.deviation_from_center(0.3) - 0.1).abs() < 1e-6);
        assert!((t.deviation_from_center(0.6)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = Track::new(10.0, 0.4, 0);
    }
}

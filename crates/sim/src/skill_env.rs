//! Single-vehicle environments for training the low-level skills with the
//! paper's intrinsic reward functions (Sec. IV-C, Fig. 4).
//!
//! Two skills exist, matching the paper's Fig. 8:
//!
//! * **driving-in-lane** — executes `slow down` / `accelerate` (and serves
//!   `keep lane`); reward `β·r_deviate + (1−β)·r_travel`.
//! * **lane change** — moves to the adjacent lane within a step budget;
//!   reward `+20` on success, `−20` on failure, `r_travel` otherwise.
//!
//! Actions are squashed `[-1, 1]²` vectors (as produced by a tanh-Gaussian
//! SAC policy) mapped into the option's printed bounds
//! ([`DrivingOption::action_bounds`]). For lane change the angular action
//! is a steering *magnitude*: the environment resolves the sign toward the
//! target lane and counter-steers once the lane boundary is crossed, the
//! same division of labor the paper's testbed uses (road geometry supplies
//! the direction).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::env::{EnvConfig, LaneChangeEnv, VehicleRole, VehicleSpawn};
use crate::options::{adjacent_lane, resolve_lane_change_steering, DrivingOption};
use crate::vehicle::VehicleCommand;

/// Which low-level skill an environment trains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkillKind {
    /// Lane tracking under the slow-down / accelerate options.
    DrivingInLane,
    /// The lane-change maneuver.
    LaneChange,
}

/// Terminal result of one lane-change episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManeuverResult {
    /// Still executing.
    InProgress,
    /// Reached the adjacent lane's center, straightened out.
    Success,
    /// Collided, left the track, or ran out of time.
    Failure,
}

/// Reward for completing the lane change (paper: 20).
pub const LANE_CHANGE_SUCCESS_REWARD: f32 = 20.0;
/// Penalty for failing the lane change (paper: −20).
pub const LANE_CHANGE_FAIL_PENALTY: f32 = -20.0;

/// Weight β between deviation and travel in the driving-in-lane reward.
pub const DEFAULT_BETA: f32 = 0.5;

/// The in-lane options a driving-in-lane skill is conditioned on
/// (keep-lane needs no actuation, so it is not trained).
pub const IN_LANE_TRAINED_OPTIONS: [DrivingOption; 2] =
    [DrivingOption::SlowDown, DrivingOption::Accelerate];

/// A single-vehicle skill-training environment.
#[derive(Debug)]
pub struct SkillEnv {
    inner: LaneChangeEnv,
    kind: SkillKind,
    rng: StdRng,
    beta: f32,
    /// Option currently conditioning the driving-in-lane skill.
    current_option: DrivingOption,
    target_lane: usize,
    result: ManeuverResult,
    maneuver_budget: usize,
}

impl SkillEnv {
    /// Creates a driving-in-lane trainer; each episode samples slow-down or
    /// accelerate as the conditioning option.
    pub fn driving_in_lane(cfg: EnvConfig, seed: u64) -> Self {
        Self::new(cfg, SkillKind::DrivingInLane, seed)
    }

    /// Creates a lane-change trainer.
    pub fn lane_change(cfg: EnvConfig, seed: u64) -> Self {
        Self::new(cfg, SkillKind::LaneChange, seed)
    }

    fn new(mut cfg: EnvConfig, kind: SkillKind, seed: u64) -> Self {
        let maneuver_budget = match kind {
            SkillKind::DrivingInLane => 30,
            // 9 steps: completing in time requires decent speed and
            // steering; the minimum-action corner of the space times out.
            SkillKind::LaneChange => 9,
        };
        cfg.max_steps = maneuver_budget;
        // Random lanes so the learned skills generalize across the track.
        let spawn = VehicleSpawn {
            lane: 0,
            random_lane: true,
            s: 0.0,
            s_jitter: 1.0,
            speed: 0.08,
            role: VehicleRole::Learner,
        };
        let mut env = Self {
            inner: LaneChangeEnv::new(cfg, vec![spawn], seed),
            kind,
            rng: StdRng::seed_from_u64(seed.wrapping_add(0x5EED)),
            beta: DEFAULT_BETA,
            current_option: DrivingOption::SlowDown,
            target_lane: 0,
            result: ManeuverResult::InProgress,
            maneuver_budget,
        };
        env.reset();
        env
    }

    /// Which skill this environment trains.
    pub fn kind(&self) -> SkillKind {
        self.kind
    }

    /// Dimension of the observation vector: flattened low-level state plus
    /// the option one-hot for the driving-in-lane skill.
    pub fn obs_dim(&self) -> usize {
        self.inner.config().low_dim() + self.condition_dim()
    }

    /// Number of conditioning inputs appended to the observation.
    pub fn condition_dim(&self) -> usize {
        match self.kind {
            SkillKind::DrivingInLane => IN_LANE_TRAINED_OPTIONS.len(),
            SkillKind::LaneChange => 0,
        }
    }

    /// Dimension of the (squashed) action vector.
    pub fn action_dim(&self) -> usize {
        2
    }

    /// The option conditioning the current episode.
    pub fn current_option(&self) -> DrivingOption {
        self.current_option
    }

    /// Result of the current (or last) lane-change maneuver.
    pub fn result(&self) -> ManeuverResult {
        self.result
    }

    /// Whether the current episode has ended.
    pub fn is_done(&self) -> bool {
        self.inner.is_done() || self.result != ManeuverResult::InProgress
    }

    /// Starts a new episode and returns the initial observation.
    pub fn reset(&mut self) -> Vec<f32> {
        self.inner.reset();
        self.result = ManeuverResult::InProgress;
        match self.kind {
            SkillKind::DrivingInLane => {
                let pick = self.rng.gen_range(0..IN_LANE_TRAINED_OPTIONS.len());
                self.current_option = IN_LANE_TRAINED_OPTIONS[pick];
                self.target_lane = self.inner.vehicle_state(0).lane(&self.inner.config().track);
            }
            SkillKind::LaneChange => {
                self.current_option = DrivingOption::LaneChange;
                let lane = self.inner.vehicle_state(0).lane(&self.inner.config().track);
                self.target_lane = adjacent_lane(lane, &self.inner.config().track);
            }
        }
        self.observe()
    }

    /// Current observation: `[image…, speed, laneID]` (+ option one-hot for
    /// the driving-in-lane skill).
    pub fn observe(&self) -> Vec<f32> {
        let mut v = self.inner.observe(0).low_flat_vec();
        if self.kind == SkillKind::DrivingInLane {
            for opt in IN_LANE_TRAINED_OPTIONS {
                v.push(if opt == self.current_option { 1.0 } else { 0.0 });
            }
        }
        v
    }

    /// Applies a squashed `[-1, 1]²` action, returning
    /// `(next_observation, intrinsic_reward, done)`.
    ///
    /// # Panics
    ///
    /// Panics when called on a finished episode.
    pub fn step(&mut self, squashed: [f32; 2]) -> (Vec<f32>, f32, bool) {
        assert!(!self.is_done(), "step() called on a finished episode");
        let bounds = self
            .current_option
            .action_bounds()
            .expect("trained options always have bounds");
        let (linear, angular_raw) = bounds.denormalize(squashed[0], squashed[1]);
        let track = self.inner.config().track;
        let state = *self.inner.vehicle_state(0);
        let target_d = track.lane_center(self.target_lane);

        let angular = match self.kind {
            SkillKind::DrivingInLane => angular_raw,
            SkillKind::LaneChange => resolve_lane_change_steering(&state, target_d, angular_raw),
        };

        let before_s = state.s;
        let out = self.inner.step(&[VehicleCommand::new(linear, angular)]);
        let after = self.inner.vehicle_state(0);
        let cfg = self.inner.config();
        let travel = track.signed_delta(before_s, after.s).max(0.0)
            / (cfg.vehicle.max_speed * cfg.dt);

        let reward = match self.kind {
            SkillKind::DrivingInLane => {
                let dev = track.deviation_from_center(after.d) / (track.lane_width / 2.0);
                self.beta * (-dev.min(1.5)) + (1.0 - self.beta) * travel
            }
            SkillKind::LaneChange => {
                let reached = (after.d - target_d).abs() < 0.05 && after.heading.abs() < 0.15;
                let crashed = out.collisions[0];
                if reached && !crashed {
                    self.result = ManeuverResult::Success;
                    LANE_CHANGE_SUCCESS_REWARD
                } else if crashed || self.inner.step_count() >= self.maneuver_budget {
                    self.result = ManeuverResult::Failure;
                    LANE_CHANGE_FAIL_PENALTY
                } else {
                    travel
                }
            }
        };
        let done = self.is_done();
        (self.observe(), reward, done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_dims_include_conditioning() {
        let cfg = EnvConfig::default();
        let in_lane = SkillEnv::driving_in_lane(cfg, 0);
        assert_eq!(in_lane.obs_dim(), cfg.low_dim() + 2);
        let lc = SkillEnv::lane_change(cfg, 0);
        assert_eq!(lc.obs_dim(), cfg.low_dim());
        assert_eq!(lc.action_dim(), 2);
        assert_eq!(in_lane.observe().len(), in_lane.obs_dim());
    }

    #[test]
    fn in_lane_episode_samples_trained_options() {
        let mut env = SkillEnv::driving_in_lane(EnvConfig::default(), 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..20 {
            env.reset();
            seen.insert(env.current_option());
        }
        assert!(seen.contains(&DrivingOption::SlowDown));
        assert!(seen.contains(&DrivingOption::Accelerate));
    }

    #[test]
    fn centered_straight_driving_scores_higher_than_weaving() {
        let mut env = SkillEnv::driving_in_lane(EnvConfig::default(), 3);
        env.reset();
        let mut straight_total = 0.0;
        while !env.is_done() {
            let (_, r, _) = env.step([0.5, 0.0]);
            straight_total += r;
        }
        env.reset();
        let mut weave_total = 0.0;
        while !env.is_done() {
            let (_, r, _) = env.step([0.5, 1.0]);
            weave_total += r;
        }
        assert!(
            straight_total > weave_total,
            "straight {straight_total} vs weaving {weave_total}"
        );
    }

    #[test]
    fn lane_change_two_phase_controller_succeeds() {
        let mut env = SkillEnv::lane_change(EnvConfig::default(), 5);
        env.reset();
        let mut total = 0.0;
        let mut steps = 0;
        while !env.is_done() {
            // Mid-range speed, strong steer: should complete comfortably.
            let (_, r, _) = env.step([0.0, 0.8]);
            total += r;
            steps += 1;
            assert!(steps <= 12, "episode must terminate inside budget");
        }
        assert_eq!(env.result(), ManeuverResult::Success, "reward sum {total}");
        assert!(total > 0.0);
    }

    #[test]
    fn lane_change_timeout_fails() {
        let mut env = SkillEnv::lane_change(EnvConfig::default(), 6);
        env.reset();
        let mut last_r = 0.0;
        while !env.is_done() {
            // Minimum steering magnitude and speed: cannot finish in budget.
            let (_, r, _) = env.step([-1.0, -1.0]);
            last_r = r;
        }
        assert_eq!(env.result(), ManeuverResult::Failure);
        assert_eq!(last_r, LANE_CHANGE_FAIL_PENALTY);
    }

    #[test]
    fn reset_clears_result() {
        let mut env = SkillEnv::lane_change(EnvConfig::default(), 8);
        env.reset();
        while !env.is_done() {
            env.step([0.0, 0.8]);
        }
        assert_ne!(env.result(), ManeuverResult::InProgress);
        env.reset();
        assert_eq!(env.result(), ManeuverResult::InProgress);
        assert!(!env.is_done());
    }
}

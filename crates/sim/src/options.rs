//! The paper's high-level option space for driving (Sec. IV-B) and the
//! per-option continuous action bounds (Sec. IV-C).
//!
//! `A_h = [keep lane, slow down, accelerate, lane change]`. Each option
//! constrains the low-level `(linear, angular)` action space to the ranges
//! printed in the paper; [`ScriptedExecutor`] provides the fixed low-level
//! controller that the flat (end-to-end) baselines use to actuate a chosen
//! option for one step.

use crate::track::Track;
use crate::vehicle::{VehicleCommand, VehicleState};

/// A high-level driving option (the paper's discrete action space).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DrivingOption {
    /// Maintain the previous linear and angular speed.
    KeepLane,
    /// Reduce speed into the low range.
    SlowDown,
    /// Increase speed into the high range.
    Accelerate,
    /// Move to the adjacent lane.
    LaneChange,
}

impl DrivingOption {
    /// All options, indexable by [`DrivingOption::index`].
    pub const ALL: [DrivingOption; 4] = [
        DrivingOption::KeepLane,
        DrivingOption::SlowDown,
        DrivingOption::Accelerate,
        DrivingOption::LaneChange,
    ];

    /// Number of options.
    pub const COUNT: usize = 4;

    /// Stable index of this option in `[0, COUNT)`.
    pub fn index(self) -> usize {
        match self {
            DrivingOption::KeepLane => 0,
            DrivingOption::SlowDown => 1,
            DrivingOption::Accelerate => 2,
            DrivingOption::LaneChange => 3,
        }
    }

    /// Option for an index.
    ///
    /// # Panics
    ///
    /// Panics when `index >= COUNT`.
    pub fn from_index(index: usize) -> Self {
        Self::ALL[index]
    }

    /// The paper's `(linear, angular)` action bounds for this option.
    /// Angular bounds are magnitudes; the environment resolves the steering
    /// sign toward the target lane.
    ///
    /// Returns `None` for [`DrivingOption::KeepLane`], which has no
    /// actuation freedom (speeds persist).
    pub fn action_bounds(self) -> Option<ActionBounds> {
        match self {
            DrivingOption::KeepLane => None,
            DrivingOption::SlowDown => Some(ActionBounds {
                linear: (0.04, 0.08),
                angular: (-0.1, 0.1),
            }),
            DrivingOption::Accelerate => Some(ActionBounds {
                linear: (0.08, 0.14),
                angular: (-0.1, 0.1),
            }),
            DrivingOption::LaneChange => Some(ActionBounds {
                linear: (0.1, 0.2),
                angular: (0.12, 0.25),
            }),
        }
    }

    /// Whether this option is executed by the driving-in-lane skill
    /// (`keep lane`, `slow down`, `accelerate`) rather than the
    /// lane-change skill.
    pub fn is_in_lane(self) -> bool {
        !matches!(self, DrivingOption::LaneChange)
    }
}

impl std::fmt::Display for DrivingOption {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DrivingOption::KeepLane => "keep-lane",
            DrivingOption::SlowDown => "slow-down",
            DrivingOption::Accelerate => "accelerate",
            DrivingOption::LaneChange => "lane-change",
        };
        f.write_str(name)
    }
}

/// Per-option `(lo, hi)` bounds of the continuous action space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActionBounds {
    /// Linear speed range (m/s).
    pub linear: (f32, f32),
    /// Angular speed range (rad/s); for lane change this is a magnitude.
    pub angular: (f32, f32),
}

impl ActionBounds {
    /// Maps a squashed action in `[-1, 1]^2` into these bounds.
    pub fn denormalize(&self, squashed_linear: f32, squashed_angular: f32) -> (f32, f32) {
        (
            affine(squashed_linear, self.linear),
            affine(squashed_angular, self.angular),
        )
    }
}

fn affine(x: f32, (lo, hi): (f32, f32)) -> f32 {
    lo + (x.clamp(-1.0, 1.0) + 1.0) / 2.0 * (hi - lo)
}

/// The fixed *single-step* actuation used by the flat baselines
/// (Independent DQN, COMA, MADDPG, MAAC): each chosen [`DrivingOption`]
/// maps to one primitive command, with no closed-loop maneuver control —
/// in-lane options merely straighten the heading, and lane change applies
/// a constant steering magnitude toward the adjacent lane. Completing a
/// clean lane change therefore requires the *algorithm* to sequence
/// steer / straighten decisions across steps, exactly the end-to-end
/// burden the paper contrasts HERO's learned low-level skills against.
///
/// Scripted background vehicles also use this executor (keep-lane only).
#[derive(Clone, Copy, Debug, Default)]
pub struct ScriptedExecutor {
    /// Heading-straightening gain of the in-lane commands.
    pub k_head: f32,
    /// Constant steering magnitude of the one-step lane-change command.
    pub lane_change_steer: f32,
}

impl ScriptedExecutor {
    /// Creates an executor with the default gains.
    pub fn new() -> Self {
        Self {
            k_head: 0.8,
            lane_change_steer: 0.18,
        }
    }

    /// The command executing `option` for one step from `state`.
    ///
    /// In-lane options straighten the heading (they do **not** steer back
    /// to the lane center); lane change bang-bang steers toward the
    /// adjacent lane's center (lane 0 ↔ lane 1 on a two-lane track,
    /// toward lane 0 from higher lanes).
    pub fn command(
        &self,
        option: DrivingOption,
        state: &VehicleState,
        track: &Track,
    ) -> VehicleCommand {
        let straighten = (-self.k_head * state.heading).clamp(-0.1, 0.1);
        match option {
            DrivingOption::KeepLane => VehicleCommand::new(state.speed, straighten),
            DrivingOption::SlowDown => VehicleCommand::new(0.06, straighten),
            DrivingOption::Accelerate => VehicleCommand::new(0.11, straighten),
            DrivingOption::LaneChange => {
                let lane = state.lane(track);
                let target_d = track.lane_center(adjacent_lane(lane, track));
                let dir = (target_d - state.d).signum();
                VehicleCommand::new(0.15, self.lane_change_steer * dir)
            }
        }
    }
}

/// Resolves the signed steering command for a lane-change maneuver from a
/// learned steering *magnitude*: steer toward the target lane center while
/// the lateral error is large, then counter-steer to straighten out — the
/// same division of labor the paper's testbed uses (road geometry supplies
/// the direction, the policy supplies speeds).
pub fn resolve_lane_change_steering(state: &VehicleState, target_d: f32, magnitude: f32) -> f32 {
    let err = target_d - state.d;
    if err.abs() > 0.08 {
        magnitude.abs() * err.signum()
    } else {
        (-2.0 * state.heading).clamp(-0.25, 0.25)
    }
}

/// The adjacent lane a lane change from `lane` targets.
pub fn adjacent_lane(lane: usize, track: &Track) -> usize {
    if lane + 1 < track.num_lanes {
        lane + 1
    } else {
        lane.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_index_roundtrip() {
        for o in DrivingOption::ALL {
            assert_eq!(DrivingOption::from_index(o.index()), o);
        }
    }

    #[test]
    fn bounds_match_paper() {
        let slow = DrivingOption::SlowDown.action_bounds().unwrap();
        assert_eq!(slow.linear, (0.04, 0.08));
        let acc = DrivingOption::Accelerate.action_bounds().unwrap();
        assert_eq!(acc.linear, (0.08, 0.14));
        let lc = DrivingOption::LaneChange.action_bounds().unwrap();
        assert_eq!(lc.linear, (0.1, 0.2));
        assert_eq!(lc.angular, (0.12, 0.25));
        assert!(DrivingOption::KeepLane.action_bounds().is_none());
    }

    #[test]
    fn denormalize_covers_range() {
        let b = DrivingOption::SlowDown.action_bounds().unwrap();
        assert_eq!(b.denormalize(-1.0, -1.0), (0.04, -0.1));
        assert_eq!(b.denormalize(1.0, 1.0), (0.08, 0.1));
        let (mid, _) = b.denormalize(0.0, 0.0);
        assert!((mid - 0.06).abs() < 1e-6);
        // Out-of-range squashed inputs are clamped.
        assert_eq!(b.denormalize(5.0, -5.0), (0.08, -0.1));
    }

    #[test]
    fn scripted_lane_change_steers_up_from_lane0() {
        let t = Track::double_lane();
        let exec = ScriptedExecutor::new();
        let state = VehicleState {
            d: 0.2,
            ..Default::default()
        };
        let cmd = exec.command(DrivingOption::LaneChange, &state, &t);
        assert!(cmd.angular > 0.0, "should steer toward lane 1");
    }

    #[test]
    fn scripted_lane_change_steers_down_from_top_lane() {
        let t = Track::double_lane();
        let exec = ScriptedExecutor::new();
        let state = VehicleState {
            d: 0.6,
            ..Default::default()
        };
        let cmd = exec.command(DrivingOption::LaneChange, &state, &t);
        assert!(cmd.angular < 0.0, "should steer toward lane 0");
    }

    #[test]
    fn scripted_keep_lane_straightens_but_does_not_recenter() {
        let t = Track::double_lane();
        let exec = ScriptedExecutor::new();
        let drifting = VehicleState {
            d: 0.3, // off-center but straight
            heading: 0.0,
            speed: 0.09,
            ..Default::default()
        };
        let cmd = exec.command(DrivingOption::KeepLane, &drifting, &t);
        assert_eq!(cmd.angular, 0.0, "no lateral recentering for the baselines");
        assert_eq!(cmd.linear, 0.09, "keep lane preserves speed");
        let turned = VehicleState {
            heading: 0.3,
            ..drifting
        };
        let cmd2 = exec.command(DrivingOption::KeepLane, &turned, &t);
        assert!(cmd2.angular < 0.0, "heading is straightened");
    }

    #[test]
    fn adjacent_lane_on_two_lane_track() {
        let t = Track::double_lane();
        assert_eq!(adjacent_lane(0, &t), 1);
        assert_eq!(adjacent_lane(1, &t), 0);
    }
}

//! Scenario builders mirroring the paper's evaluation layouts.
//!
//! * [`two_vehicle_merge`] — Fig. 6: vehicle 2's lane is blocked by slow
//!   traffic; it must coordinate with vehicle 1 in the free lane.
//! * [`congestion`] — Fig. 9: four vehicles on the double-lane loop;
//!   vehicle 4 plods to simulate congestion, the other three learn to
//!   cooperate.

use crate::env::{EnvConfig, LaneChangeEnv, VehicleRole, VehicleSpawn};

/// Speed of the plodding scripted vehicle that simulates congestion.
pub const PLODDING_SPEED: f32 = 0.02;
/// Initial speed given to every learner.
pub const LEARNER_SPEED: f32 = 0.08;

/// Spawn layout for the paper's Fig. 6 two-vehicle coordination scenario:
/// vehicle 0 cruises in the free lane (lane 0), vehicle 1 sits behind a
/// slow scripted blocker in lane 1 and must merge.
pub fn two_vehicle_merge_spawns() -> Vec<VehicleSpawn> {
    vec![
        VehicleSpawn {
            lane: 0,
            random_lane: false,
            s: 11.4,
            s_jitter: 0.2,
            speed: LEARNER_SPEED,
            role: VehicleRole::Learner,
        },
        VehicleSpawn {
            lane: 1,
            random_lane: false,
            s: 0.0,
            s_jitter: 0.2,
            speed: LEARNER_SPEED,
            role: VehicleRole::Learner,
        },
        VehicleSpawn {
            lane: 1,
            random_lane: false,
            s: 1.1,
            s_jitter: 0.1,
            speed: PLODDING_SPEED,
            role: VehicleRole::Scripted {
                speed: PLODDING_SPEED,
            },
        },
    ]
}

/// Spawn layout for the paper's Fig. 9 four-vehicle congestion scenario:
/// three learners with jittered positions plus one plodding scripted
/// vehicle (vehicle 4) blocking lane 0.
pub fn congestion_spawns() -> Vec<VehicleSpawn> {
    vec![
        VehicleSpawn {
            lane: 0,
            random_lane: false,
            s: 0.0,
            s_jitter: 0.3,
            speed: LEARNER_SPEED,
            role: VehicleRole::Learner,
        },
        VehicleSpawn {
            lane: 1,
            random_lane: false,
            s: 11.2,
            s_jitter: 0.3,
            speed: LEARNER_SPEED,
            role: VehicleRole::Learner,
        },
        VehicleSpawn {
            lane: 0,
            random_lane: false,
            s: 10.6,
            s_jitter: 0.3,
            speed: LEARNER_SPEED,
            role: VehicleRole::Learner,
        },
        VehicleSpawn {
            lane: 0,
            random_lane: false,
            s: 1.1,
            s_jitter: 0.1,
            speed: PLODDING_SPEED,
            role: VehicleRole::Scripted {
                speed: PLODDING_SPEED,
            },
        },
    ]
}

/// Builds the Fig. 6 two-vehicle merge environment.
pub fn two_vehicle_merge(cfg: EnvConfig, seed: u64) -> LaneChangeEnv {
    LaneChangeEnv::new(cfg, two_vehicle_merge_spawns(), seed)
}

/// Builds the Fig. 9 four-vehicle congestion environment.
pub fn congestion(cfg: EnvConfig, seed: u64) -> LaneChangeEnv {
    LaneChangeEnv::new(cfg, congestion_spawns(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vehicle::VehicleCommand;

    #[test]
    fn merge_scenario_flags_blocked_learner() {
        let env = two_vehicle_merge(EnvConfig::default(), 0);
        assert_eq!(env.num_vehicles(), 3);
        assert_eq!(env.learner_indices(), vec![0, 1]);
        assert!(!env.needs_merge(0), "lane-0 learner is free");
        assert!(env.needs_merge(1), "lane-1 learner is blocked");
    }

    #[test]
    fn congestion_scenario_shape() {
        let env = congestion(EnvConfig::default(), 0);
        assert_eq!(env.num_vehicles(), 4);
        assert_eq!(env.learner_indices().len(), 3);
        // The lane-0 learner spawned just behind the blocker must merge.
        assert!(env.needs_merge(0));
    }

    #[test]
    fn blocked_learner_crashes_if_it_never_merges() {
        let mut env = two_vehicle_merge(EnvConfig::default(), 1);
        let mut crashed = false;
        for _ in 0..60 {
            if env.is_done() {
                if env.has_collided(1) {
                    crashed = true;
                }
                env.reset();
            }
            let cmds: Vec<VehicleCommand> = (0..env.num_vehicles())
                .map(|i| VehicleCommand::coast(if i == 1 { 0.12 } else { 0.05 }))
                .collect();
            env.step(&cmds);
        }
        assert!(crashed, "driving blindly into the blocker must crash");
    }

    #[test]
    fn scenarios_are_seed_deterministic() {
        let mut a = congestion(EnvConfig::default(), 5);
        let mut b = congestion(EnvConfig::default(), 5);
        assert_eq!(a.reset(), b.reset());
    }
}

//! The "real-world testbed" proxy: the same lane-change world with a
//! configurable sim-to-real domain gap.
//!
//! The paper's Table II deploys policies trained in simulation onto
//! physical vehicles (camera/lidar robots on a two-lane track) and
//! measures the degradation over 20 episodes. We reproduce that protocol
//! by wrapping [`LaneChangeEnv`] with the classic domain-gap ingredients:
//! sensor noise, one-step actuation latency, actuation noise, a per-episode
//! actuation gain (battery/friction variation), and a constant heading
//! drift (calibration error).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::env::{EnvConfig, LaneChangeEnv, Observation, StepOutcome, VehicleSpawn};
use crate::vehicle::VehicleCommand;

/// Strength of each domain-gap ingredient.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimToRealConfig {
    /// Gaussian noise std added to lidar and image cells (observation
    /// units are normalized, so ~0.02 is mild and ~0.1 severe).
    pub obs_noise_std: f32,
    /// Gaussian noise std added to commanded speeds.
    pub action_noise_std: f32,
    /// Whether commands take effect one control period late.
    pub action_delay: bool,
    /// Per-episode actuation gain is drawn uniformly from this range.
    pub gain_range: (f32, f32),
    /// Constant angular bias (rad/s) applied every step.
    pub heading_drift: f32,
}

impl Default for SimToRealConfig {
    fn default() -> Self {
        Self {
            obs_noise_std: 0.02,
            action_noise_std: 0.01,
            action_delay: true,
            gain_range: (0.9, 1.05),
            heading_drift: 0.01,
        }
    }
}

impl SimToRealConfig {
    /// No gap at all — the wrapper becomes an identity layer (useful in
    /// tests).
    pub fn identity() -> Self {
        Self {
            obs_noise_std: 0.0,
            action_noise_std: 0.0,
            action_delay: false,
            gain_range: (1.0, 1.0),
            heading_drift: 0.0,
        }
    }
}

/// [`LaneChangeEnv`] behind a sim-to-real domain gap. Mirrors the inner
/// environment's API so evaluation code is agnostic to which world it runs
/// in.
#[derive(Debug)]
pub struct SimToRealEnv {
    inner: LaneChangeEnv,
    cfg: SimToRealConfig,
    rng: StdRng,
    pending: Vec<VehicleCommand>,
    episode_gain: f32,
}

impl SimToRealEnv {
    /// Wraps a fresh lane-change world in the given domain gap.
    pub fn new(
        env_cfg: EnvConfig,
        spawns: Vec<VehicleSpawn>,
        gap: SimToRealConfig,
        seed: u64,
    ) -> Self {
        let n = spawns.len();
        let mut env = Self {
            inner: LaneChangeEnv::new(env_cfg, spawns, seed),
            cfg: gap,
            rng: StdRng::seed_from_u64(seed ^ 0x5133_7A11),
            pending: vec![VehicleCommand::default(); n],
            episode_gain: 1.0,
        };
        // Draw this episode's gain without resetting the inner world again
        // — the inner constructor already reset it, and an extra reset
        // would desynchronize the spawn jitter from a plain environment
        // built with the same seed.
        let (lo, hi) = env.cfg.gain_range;
        env.episode_gain = if hi > lo { env.rng.gen_range(lo..hi) } else { lo };
        env
    }

    /// The wrapped environment's configuration.
    pub fn config(&self) -> &EnvConfig {
        self.inner.config()
    }

    /// Number of vehicles.
    pub fn num_vehicles(&self) -> usize {
        self.inner.num_vehicles()
    }

    /// Indices of the learner-controlled vehicles.
    pub fn learner_indices(&self) -> Vec<usize> {
        self.inner.learner_indices()
    }

    /// Whether the episode has ended.
    pub fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    /// Delegates to [`LaneChangeEnv::needs_merge`].
    pub fn needs_merge(&self, i: usize) -> bool {
        self.inner.needs_merge(i)
    }

    /// Kinematic state of vehicle `i` (exact — on the testbed each robot
    /// knows its own pose from odometry).
    pub fn vehicle_state(&self, i: usize) -> &crate::vehicle::VehicleState {
        self.inner.vehicle_state(i)
    }

    /// Delegates to [`LaneChangeEnv::has_merged`].
    pub fn has_merged(&self, i: usize) -> bool {
        self.inner.has_merged(i)
    }

    /// Delegates to [`LaneChangeEnv::has_collided`].
    pub fn has_collided(&self, i: usize) -> bool {
        self.inner.has_collided(i)
    }

    /// Starts a new episode: draws this episode's actuation gain, clears
    /// the latency buffer, and returns noised observations.
    pub fn reset(&mut self) -> Vec<Observation> {
        let (lo, hi) = self.cfg.gain_range;
        self.episode_gain = if hi > lo { self.rng.gen_range(lo..hi) } else { lo };
        self.pending = vec![VehicleCommand::default(); self.inner.num_vehicles()];
        let obs = self.inner.reset();
        obs.into_iter().map(|o| self.noise_obs(o)).collect()
    }

    /// Steps the wrapped world with the domain gap applied to both the
    /// commands and the returned observations.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`LaneChangeEnv::step`].
    pub fn step(&mut self, commands: &[VehicleCommand]) -> StepOutcome {
        let effective: Vec<VehicleCommand> = if self.cfg.action_delay {
            let delayed = self.pending.clone();
            self.pending = commands.to_vec();
            delayed
        } else {
            commands.to_vec()
        };
        let perturbed: Vec<VehicleCommand> = effective
            .iter()
            .map(|c| {
                VehicleCommand::new(
                    (c.linear * self.episode_gain
                        + self.gaussian() * self.cfg.action_noise_std)
                        .max(0.0),
                    c.angular + self.cfg.heading_drift
                        + self.gaussian() * self.cfg.action_noise_std,
                )
            })
            .collect();
        let mut out = self.inner.step(&perturbed);
        out.observations = out
            .observations
            .into_iter()
            .map(|o| self.noise_obs(o))
            .collect();
        out
    }

    fn noise_obs(&mut self, mut o: Observation) -> Observation {
        if self.cfg.obs_noise_std > 0.0 {
            for v in o.lidar.iter_mut() {
                *v = (*v + self.gaussian() * self.cfg.obs_noise_std).clamp(0.0, 1.0);
            }
            for v in o.image.iter_mut() {
                *v = (*v + self.gaussian() * self.cfg.obs_noise_std).clamp(0.0, 1.0);
            }
            o.speed_norm =
                (o.speed_norm + self.gaussian() * self.cfg.obs_noise_std).clamp(0.0, 1.0);
        }
        o
    }

    fn gaussian(&mut self) -> f32 {
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::VehicleRole;

    fn spawns() -> Vec<VehicleSpawn> {
        vec![
            VehicleSpawn {
                lane: 0,
                random_lane: false,
                s: 0.0,
                s_jitter: 0.0,
                speed: 0.1,
                role: VehicleRole::Learner,
            },
            VehicleSpawn {
                lane: 1,
                random_lane: false,
                s: 1.0,
                s_jitter: 0.0,
                speed: 0.1,
                role: VehicleRole::Learner,
            },
        ]
    }

    #[test]
    fn identity_gap_matches_plain_env() {
        let mut plain = LaneChangeEnv::new(EnvConfig::default(), spawns(), 11);
        let mut wrapped =
            SimToRealEnv::new(EnvConfig::default(), spawns(), SimToRealConfig::identity(), 11);
        let po = plain.reset();
        let wo = wrapped.reset();
        assert_eq!(po, wo);
        let cmds = [VehicleCommand::coast(0.1), VehicleCommand::coast(0.1)];
        let ps = plain.step(&cmds);
        let ws = wrapped.step(&cmds);
        assert_eq!(ps.observations, ws.observations);
        assert_eq!(ps.rewards, ws.rewards);
    }

    #[test]
    fn noise_perturbs_observations() {
        let gap = SimToRealConfig {
            obs_noise_std: 0.05,
            ..SimToRealConfig::identity()
        };
        let mut plain = LaneChangeEnv::new(EnvConfig::default(), spawns(), 11);
        let mut wrapped = SimToRealEnv::new(EnvConfig::default(), spawns(), gap, 11);
        let po = plain.reset();
        let wo = wrapped.reset();
        assert_ne!(po[0].lidar, wo[0].lidar);
        // Lidar stays normalized.
        assert!(wo[0].lidar.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn action_delay_shifts_commands_by_one_step() {
        let gap = SimToRealConfig {
            action_delay: true,
            ..SimToRealConfig::identity()
        };
        let mut env = SimToRealEnv::new(EnvConfig::default(), spawns(), gap, 3);
        env.reset();
        // First commanded speed 0.2 is delayed: the vehicles execute the
        // default (zero) command on step 1.
        let out = env.step(&[VehicleCommand::new(0.2, 0.0), VehicleCommand::new(0.2, 0.0)]);
        assert!(out.mean_speed < 1e-6, "step 1 executes the empty buffer");
        let out2 = env.step(&[VehicleCommand::new(0.0, 0.0), VehicleCommand::new(0.0, 0.0)]);
        assert!((out2.mean_speed - 0.2).abs() < 1e-6, "step 2 executes step 1's command");
    }

    #[test]
    fn episode_gain_scales_speed() {
        let gap = SimToRealConfig {
            gain_range: (0.5, 0.5000001),
            action_delay: false,
            ..SimToRealConfig::identity()
        };
        let mut env = SimToRealEnv::new(EnvConfig::default(), spawns(), gap, 3);
        env.reset();
        let out = env.step(&[VehicleCommand::new(0.2, 0.0), VehicleCommand::new(0.2, 0.0)]);
        assert!((out.mean_speed - 0.1).abs() < 1e-4);
    }

    #[test]
    fn deterministic_under_seed() {
        let mk = || {
            let mut e =
                SimToRealEnv::new(EnvConfig::default(), spawns(), SimToRealConfig::default(), 99);
            e.reset();
            e.step(&[VehicleCommand::coast(0.1), VehicleCommand::coast(0.1)])
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.rewards, b.rewards);
    }
}

impl crate::env::CooperativeWorld for SimToRealEnv {
    fn reset(&mut self) -> Vec<Observation> {
        SimToRealEnv::reset(self)
    }
    fn step(&mut self, commands: &[VehicleCommand]) -> StepOutcome {
        SimToRealEnv::step(self, commands)
    }
    fn is_done(&self) -> bool {
        SimToRealEnv::is_done(self)
    }
    fn num_vehicles(&self) -> usize {
        SimToRealEnv::num_vehicles(self)
    }
    fn learner_indices(&self) -> Vec<usize> {
        SimToRealEnv::learner_indices(self)
    }
    fn vehicle_state(&self, i: usize) -> crate::vehicle::VehicleState {
        *SimToRealEnv::vehicle_state(self, i)
    }
    fn needs_merge(&self, i: usize) -> bool {
        SimToRealEnv::needs_merge(self, i)
    }
    fn has_merged(&self, i: usize) -> bool {
        SimToRealEnv::has_merged(self, i)
    }
    fn has_collided(&self, i: usize) -> bool {
        SimToRealEnv::has_collided(self, i)
    }
    fn config(&self) -> &EnvConfig {
        SimToRealEnv::config(self)
    }
    fn rng_state(&self) -> Vec<u64> {
        // Own noise generator first, then the wrapped world's generator.
        let mut words = self.rng.state().to_vec();
        words.extend(crate::env::CooperativeWorld::rng_state(&self.inner));
        words
    }
    fn set_rng_state(&mut self, state: &[u64]) {
        if state.len() != 8 {
            return;
        }
        if let Ok(words) = <[u64; 4]>::try_from(&state[..4]) {
            self.rng = rand::rngs::StdRng::from_state(words);
        }
        crate::env::CooperativeWorld::set_rng_state(&mut self.inner, &state[4..]);
    }
}

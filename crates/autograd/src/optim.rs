//! Gradient-descent optimizers operating on shared [`Parameter`]s.
//!
//! An optimizer owns an ordered list of parameter handles plus any per-
//! parameter state (Adam moments). The usual loop is: build a graph, call
//! [`Graph::backward`](crate::Graph::backward), then [`Optimizer::step`]
//! (which consumes and zeroes the accumulated gradients).

use crate::diagnostics::{self, StepDiagnostics, StepScreen};
use crate::error::CheckpointError;
use crate::graph::Parameter;

/// A snapshot of an optimizer's mutable state, sufficient to resume
/// training bit-identically: kind tag, step counter `t` (Adam bias
/// correction), learning rate, and per-slot per-parameter buffers
/// (SGD: `[velocity]`; Adam: `[m, v]`).
///
/// Serialized via [`crate::serialize::encode_optimizer`] /
/// [`crate::serialize::decode_optimizer`].
#[derive(Clone, Debug, PartialEq)]
pub struct OptimizerState {
    /// `"sgd"` or `"adam"`.
    pub kind: String,
    /// Number of applied (non-skipped) steps.
    pub t: u64,
    /// Learning rate at capture time.
    pub lr: f32,
    /// State buffers: `slots[slot][param][element]`.
    pub slots: Vec<Vec<Vec<f32>>>,
}

impl OptimizerState {
    fn check_slots(
        &self,
        kind: &str,
        expected_slots: usize,
        params: &[Parameter],
    ) -> Result<(), CheckpointError> {
        if self.kind != kind {
            return Err(CheckpointError::ParameterMismatch {
                expected: format!("{kind} optimizer state"),
                found: format!("{} optimizer state", self.kind),
            });
        }
        if self.slots.len() != expected_slots {
            return Err(CheckpointError::ParameterMismatch {
                expected: format!("{expected_slots} state slots"),
                found: format!("{} state slots", self.slots.len()),
            });
        }
        for slot in &self.slots {
            if slot.len() != params.len() {
                return Err(CheckpointError::ParameterMismatch {
                    expected: format!("{} parameter buffers", params.len()),
                    found: format!("{} parameter buffers", slot.len()),
                });
            }
            for (buf, p) in slot.iter().zip(params) {
                if buf.len() != p.len() {
                    return Err(CheckpointError::ParameterMismatch {
                        expected: format!("{} with {} elements", p.name(), p.len()),
                        found: format!("buffer with {} elements", buf.len()),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Common interface of [`Sgd`] and [`Adam`].
pub trait Optimizer {
    /// Applies one update from the accumulated gradients, then zeroes them.
    ///
    /// Every step is screened through one shared watchdog code path
    /// ([`diagnostics::pre_step`]): non-finite gradients are never applied.
    /// By default ([`diagnostics::WatchdogMode::Skip`]) a poisoned update
    /// is dropped — weights *and* optimizer state (momentum, Adam moments
    /// and step count) stay untouched — and counted under `watchdog/*`.
    fn step(&mut self);

    /// The parameters this optimizer updates.
    fn parameters(&self) -> &[Parameter];

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Replaces the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);

    /// Attaches per-step diagnostics: a metric label for per-layer
    /// gradient telemetry and the watchdog mode.
    fn set_diagnostics(&mut self, diag: StepDiagnostics);

    /// The attached diagnostics, if any.
    fn diagnostics(&self) -> Option<&StepDiagnostics>;
}

/// Plain stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Parameter>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
    diag: Option<StepDiagnostics>,
}

impl Sgd {
    /// Creates an SGD optimizer over `params` with learning rate `lr` and
    /// no momentum.
    pub fn new(params: Vec<Parameter>, lr: f32) -> Self {
        Self::with_momentum(params, lr, 0.0)
    }

    /// Creates an SGD optimizer with classical momentum.
    pub fn with_momentum(params: Vec<Parameter>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        Self {
            params,
            lr,
            momentum,
            velocity,
            diag: None,
        }
    }

    /// Captures the mutable state (velocity buffers) for checkpointing.
    pub fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: "sgd".to_string(),
            t: 0,
            lr: self.lr,
            slots: vec![self.velocity.clone()],
        }
    }

    /// Restores state captured by [`Sgd::export_state`]. The buffer shapes
    /// must match this optimizer's parameters.
    pub fn import_state(&mut self, state: OptimizerState) -> Result<(), CheckpointError> {
        state.check_slots("sgd", 1, &self.params)?;
        self.lr = state.lr;
        self.velocity = state.slots.into_iter().next().unwrap();
        Ok(())
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let probe = match diagnostics::pre_step(&self.params, self.diag.as_ref()) {
            StepScreen::Proceed(probe) => probe,
            StepScreen::Skip => return,
        };
        for (p, vel) in self.params.iter().zip(&mut self.velocity) {
            p.apply_update(|value, grad| {
                if self.momentum == 0.0 {
                    for (v, g) in value.data_mut().iter_mut().zip(grad.data()) {
                        *v -= self.lr * g;
                    }
                } else {
                    for ((v, g), m) in value.data_mut().iter_mut().zip(grad.data()).zip(vel.iter_mut())
                    {
                        *m = self.momentum * *m + g;
                        *v -= self.lr * *m;
                    }
                }
            });
            p.zero_grad();
        }
        diagnostics::post_step(&self.params, &probe);
    }

    fn parameters(&self) -> &[Parameter] {
        &self.params
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn set_diagnostics(&mut self, diag: StepDiagnostics) {
        self.diag = Some(diag);
    }

    fn diagnostics(&self) -> Option<&StepDiagnostics> {
        self.diag.as_ref()
    }
}

/// Adam (Kingma & Ba, 2015) with bias correction.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Parameter>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    diag: Option<StepDiagnostics>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard betas `(0.9, 0.999)`.
    pub fn new(params: Vec<Parameter>, lr: f32) -> Self {
        Self::with_betas(params, lr, 0.9, 0.999)
    }

    /// Creates an Adam optimizer with custom betas.
    pub fn with_betas(params: Vec<Parameter>, lr: f32, beta1: f32, beta2: f32) -> Self {
        let m = params.iter().map(|p| vec![0.0; p.len()]).collect();
        let v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        Self {
            params,
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m,
            v,
            diag: None,
        }
    }

    /// Captures the mutable state (step counter and both moment buffers)
    /// for checkpointing.
    pub fn export_state(&self) -> OptimizerState {
        OptimizerState {
            kind: "adam".to_string(),
            t: self.t,
            lr: self.lr,
            slots: vec![self.m.clone(), self.v.clone()],
        }
    }

    /// Restores state captured by [`Adam::export_state`]. The buffer shapes
    /// must match this optimizer's parameters.
    pub fn import_state(&mut self, state: OptimizerState) -> Result<(), CheckpointError> {
        state.check_slots("adam", 2, &self.params)?;
        self.lr = state.lr;
        self.t = state.t;
        let mut slots = state.slots.into_iter();
        self.m = slots.next().unwrap();
        self.v = slots.next().unwrap();
        Ok(())
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        let probe = match diagnostics::pre_step(&self.params, self.diag.as_ref()) {
            StepScreen::Proceed(probe) => probe,
            // A skipped step must not advance `t` either, or the bias
            // correction would drift from the moments actually written.
            StepScreen::Skip => return,
        };
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (p, (m, v)) in self.params.iter().zip(self.m.iter_mut().zip(&mut self.v)) {
            p.apply_update(|value, grad| {
                for (((val, g), mi), vi) in value
                    .data_mut()
                    .iter_mut()
                    .zip(grad.data())
                    .zip(m.iter_mut())
                    .zip(v.iter_mut())
                {
                    *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                    *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                    let m_hat = *mi / bc1;
                    let v_hat = *vi / bc2;
                    *val -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
                }
            });
            p.zero_grad();
        }
        diagnostics::post_step(&self.params, &probe);
    }

    fn parameters(&self) -> &[Parameter] {
        &self.params
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn set_diagnostics(&mut self, diag: StepDiagnostics) {
        self.diag = Some(diag);
    }

    fn diagnostics(&self) -> Option<&StepDiagnostics> {
        self.diag.as_ref()
    }
}

/// Rescales every gradient so the global L2 norm is at most `max_norm`.
/// Returns the norm observed before clipping.
pub fn clip_grad_norm(params: &[Parameter], max_norm: f32) -> f32 {
    let mut sq_sum = 0.0f32;
    for p in params {
        for g in p.grad().data() {
            sq_sum += g * g;
        }
    }
    let norm = sq_sum.sqrt();
    if norm > max_norm && norm > 0.0 {
        let factor = max_norm / norm;
        for p in params {
            p.scale_grad(factor);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::Tensor;

    /// loss(p) = (p - 3)^2 has its minimum at p = 3.
    fn quadratic_step(p: &Parameter) -> f32 {
        let mut g = Graph::new();
        let pn = g.param(p);
        let target = g.input(Tensor::from_vec(vec![1, 1], vec![3.0]));
        let d = g.sub(pn, target);
        let sq = g.mul(d, d);
        let loss = g.sum(sq);
        let out = g.value(loss).item();
        g.backward(loss);
        out
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Parameter::new("p", Tensor::from_vec(vec![1, 1], vec![0.0]));
        let mut opt = Sgd::new(vec![p.clone()], 0.1);
        for _ in 0..100 {
            quadratic_step(&p);
            opt.step();
        }
        assert!((p.value().item() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges() {
        let p = Parameter::new("p", Tensor::from_vec(vec![1, 1], vec![0.0]));
        let mut opt = Sgd::with_momentum(vec![p.clone()], 0.05, 0.9);
        for _ in 0..200 {
            quadratic_step(&p);
            opt.step();
        }
        assert!((p.value().item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Parameter::new("p", Tensor::from_vec(vec![1, 1], vec![0.0]));
        let mut opt = Adam::new(vec![p.clone()], 0.2);
        for _ in 0..200 {
            quadratic_step(&p);
            opt.step();
        }
        assert!((p.value().item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn step_zeroes_gradients() {
        let p = Parameter::new("p", Tensor::from_vec(vec![1, 1], vec![0.0]));
        let mut opt = Adam::new(vec![p.clone()], 0.01);
        quadratic_step(&p);
        assert!(p.grad().item() != 0.0);
        opt.step();
        assert_eq!(p.grad().item(), 0.0);
    }

    #[test]
    fn clip_grad_norm_bounds_norm() {
        let p = Parameter::new("p", Tensor::from_slice(&[0.0, 0.0]));
        p.apply_update(|_, _| {});
        // Manually seed a large gradient via a graph.
        let mut g = Graph::new();
        let pn = g.param(&p);
        let scaled = g.scale(pn, 100.0);
        let loss = g.sum(scaled);
        g.backward(loss);
        let before = clip_grad_norm(&[p.clone()], 1.0);
        assert!(before > 1.0);
        let after: f32 = p.grad().data().iter().map(|g| g * g).sum::<f32>().sqrt();
        assert!((after - 1.0).abs() < 1e-4);
    }

    /// Seeds every gradient entry with NaN via a real backward pass.
    fn poison_grad(p: &Parameter) {
        let mut g = Graph::new();
        let pn = g.param(p);
        let scaled = g.scale(pn, f32::NAN);
        let loss = g.sum(scaled);
        g.backward(loss);
    }

    #[test]
    fn nan_grad_never_corrupts_weights_in_skip_mode() {
        // Even with no diagnostics attached: Skip is the default path.
        for make in [
            |p: Parameter| Box::new(Sgd::with_momentum(vec![p], 0.1, 0.9)) as Box<dyn Optimizer>,
            |p: Parameter| Box::new(Adam::new(vec![p], 0.1)) as Box<dyn Optimizer>,
        ] {
            let p = Parameter::new("p", Tensor::from_slice(&[1.0, -2.0]));
            let mut opt = make(p.clone());
            poison_grad(&p);
            opt.step();
            assert_eq!(p.value().data(), &[1.0, -2.0], "weights untouched");
            assert_eq!(p.grad().data(), &[0.0, 0.0], "poisoned grads cleared");
            // The optimizer must still work afterwards: loss = sum(p)
            // gives grad = 1 per element.
            let mut g = Graph::new();
            let pn = g.param(&p);
            let loss = g.sum(pn);
            g.backward(loss);
            opt.step();
            assert!(p.value().data()[0] != 1.0, "clean step still applies");
            assert!(p.value().data().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn adam_skipped_step_does_not_advance_bias_correction() {
        // Two optimizers over identical params; one sees a poisoned step
        // first. After one identical clean step each, the updates must be
        // bit-identical — i.e. `t`/moments were untouched by the skip.
        let a = Parameter::new("a", Tensor::from_vec(vec![1, 1], vec![0.0]));
        let b = Parameter::new("b", Tensor::from_vec(vec![1, 1], vec![0.0]));
        let mut opt_a = Adam::new(vec![a.clone()], 0.2);
        let mut opt_b = Adam::new(vec![b.clone()], 0.2);
        poison_grad(&a);
        opt_a.step(); // skipped
        quadratic_step(&a);
        opt_a.step();
        quadratic_step(&b);
        opt_b.step();
        assert_eq!(a.value().item(), b.value().item());
    }

    #[test]
    fn fatal_mode_panics_on_poisoned_step() {
        let p = Parameter::new("p", Tensor::from_slice(&[1.0]));
        let mut opt = Sgd::new(vec![p.clone()], 0.1);
        opt.set_diagnostics(
            crate::diagnostics::StepDiagnostics::named("unit")
                .with_mode(crate::diagnostics::WatchdogMode::Fatal),
        );
        poison_grad(&p);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| opt.step()));
        assert!(err.is_err());
    }

    #[test]
    fn diagnostics_accessors() {
        let p = Parameter::new("p", Tensor::from_slice(&[0.0]));
        let mut opt = Adam::new(vec![p], 0.1);
        assert!(opt.diagnostics().is_none());
        opt.set_diagnostics(crate::diagnostics::StepDiagnostics::named("actor"));
        assert_eq!(opt.diagnostics().unwrap().label(), "actor");
    }

    #[test]
    fn learning_rate_accessors() {
        let p = Parameter::new("p", Tensor::from_slice(&[0.0]));
        let mut opt = Sgd::new(vec![p], 0.1);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}

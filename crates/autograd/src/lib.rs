//! # hero-autograd
//!
//! Tape-based reverse-mode automatic differentiation with dense `f32`
//! tensors, neural-network layers, optimizers, losses, and checkpointing —
//! the numeric substrate of the HERO reproduction.
//!
//! The paper trains tiny networks (hidden dimension 32, Table I), so this
//! engine optimizes for clarity and correctness over throughput: every op's
//! analytic gradient is property-tested against central finite differences
//! (see `tests/gradcheck.rs`).
//!
//! ## Quickstart
//!
//! ```
//! use hero_autograd::nn::{Activation, Mlp, Module};
//! use hero_autograd::optim::{Adam, Optimizer};
//! use hero_autograd::{loss, Graph, Tensor};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let net = Mlp::new("regressor", &[1, 16, 1], Activation::Tanh, &mut rng);
//! let mut opt = Adam::new(net.parameters(), 1e-2);
//!
//! // Fit y = 2x on a few points.
//! let xs = Tensor::from_vec(vec![4, 1], vec![-1.0, -0.5, 0.5, 1.0]);
//! let ys = Tensor::from_vec(vec![4, 1], vec![-2.0, -1.0, 1.0, 2.0]);
//! for _ in 0..200 {
//!     let mut g = Graph::new();
//!     let x = g.input(xs.clone());
//!     let t = g.input(ys.clone());
//!     let pred = net.forward(&mut g, x);
//!     let l = loss::mse(&mut g, pred, t);
//!     g.backward(l);
//!     opt.step();
//! }
//! let check = net.infer(&Tensor::from_vec(vec![1, 1], vec![0.25]));
//! assert!((check.item() - 0.5).abs() < 0.2);
//! ```

#![warn(missing_docs)]

mod error;
mod graph;
mod tensor;

pub mod diagnostics;
pub mod fastmath;
pub mod loss;
pub mod nn;
pub mod optim;
pub mod serialize;

pub use error::{CheckpointError, TensorError};
pub use fastmath::{
    fast_math_compiled, gemm_threads, isa_name, kernel_mode, set_gemm_threads, set_kernel_mode,
    FastMathUnavailable, KernelMode,
};
pub use graph::{copy_params, zero_grads, Graph, NodeId, Parameter};
pub use optim::OptimizerState;
pub use tensor::{
    matmul, matmul_into, matmul_nt, matmul_nt_into, matmul_sparse_lhs, matmul_tn, matmul_tn_into,
    Tensor, TensorPool,
};

//! Per-parameter learning-dynamics diagnostics collected at
//! [`Optimizer::step`](crate::optim::Optimizer::step) time.
//!
//! Two concerns live here:
//!
//! * **Gradient telemetry** — when an optimizer carries a labelled
//!   [`StepDiagnostics`] and a telemetry sink is active, every step
//!   records per-layer histograms under the documented namespace:
//!   `grad_norm/<label>/<param>` (L2), `grad_linf/<label>/<param>`,
//!   `weight_norm/<label>/<param>`, and `update_ratio/<label>/<param>`
//!   (the L2 norm of the applied update divided by the pre-step weight
//!   norm — the classic "is my learning rate sane" gauge).
//! * **NaN/Inf watchdog** — every step screens the accumulated gradients
//!   for non-finite values *before* touching weights or optimizer state.
//!   [`WatchdogMode::Skip`] (the default, even with no diagnostics
//!   installed) drops the poisoned update, zeroes the gradients, and
//!   bumps the `watchdog/skipped_updates` / `watchdog/nonfinite_grads`
//!   counters; [`WatchdogMode::Fatal`] panics with a full per-layer
//!   [`GradHealth`] dump for debugging.
//!
//! The screening pass costs one read over the gradients. The paper's
//! networks are tiny (hidden dimension 32, Table I), so this is noise
//! next to the backward pass itself.

use crate::graph::{zero_grads, Parameter};
use hero_telemetry as telemetry;

/// What to do when non-finite gradients reach an optimizer step.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WatchdogMode {
    /// Skip the poisoned update (weights and optimizer state untouched),
    /// zero the gradients, and count the event. The default: long
    /// headless runs should survive one bad batch.
    #[default]
    Skip,
    /// Panic with a per-layer [`GradHealth`] dump. For debugging runs
    /// where a non-finite gradient means the experiment is already lost.
    Fatal,
}

/// Optimizer-attached diagnostics: a metric label plus a watchdog mode.
///
/// Attach with
/// [`Optimizer::set_diagnostics`](crate::optim::Optimizer::set_diagnostics):
///
/// ```
/// use hero_autograd::diagnostics::{StepDiagnostics, WatchdogMode};
/// use hero_autograd::nn::{Activation, Mlp, Module};
/// use hero_autograd::optim::{Adam, Optimizer};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = Mlp::new("actor", &[4, 8, 2], Activation::Tanh, &mut rng);
/// let mut opt = Adam::new(net.parameters(), 1e-3);
/// opt.set_diagnostics(StepDiagnostics::named("actor").with_mode(WatchdogMode::Skip));
/// ```
#[derive(Clone, Debug)]
pub struct StepDiagnostics {
    label: String,
    mode: WatchdogMode,
}

impl StepDiagnostics {
    /// Diagnostics reporting under `label` (e.g. `"actor"`), in the
    /// default [`WatchdogMode::Skip`].
    pub fn named(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            mode: WatchdogMode::default(),
        }
    }

    /// Returns the diagnostics with the given watchdog mode.
    #[must_use]
    pub fn with_mode(mut self, mode: WatchdogMode) -> Self {
        self.mode = mode;
        self
    }

    /// The metric-namespace label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The watchdog mode.
    pub fn mode(&self) -> WatchdogMode {
        self.mode
    }
}

/// Point-in-time health statistics for one parameter's gradient.
#[derive(Clone, Debug, PartialEq)]
pub struct GradHealth {
    /// Parameter name (e.g. `hero.actor.l0.weight`).
    pub name: String,
    /// Parameter shape.
    pub shape: Vec<usize>,
    /// L2 norm over the finite gradient entries.
    pub grad_l2: f64,
    /// L∞ norm (max |g|) over the finite gradient entries.
    pub grad_linf: f64,
    /// L2 norm of the current weights.
    pub weight_l2: f64,
    /// Number of NaN/Inf gradient entries.
    pub nonfinite: u64,
}

fn l2(data: &[f32]) -> f64 {
    data.iter()
        .map(|&x| {
            let x = x as f64;
            x * x
        })
        .sum::<f64>()
        .sqrt()
}

/// Computes [`GradHealth`] for one parameter. Non-finite entries are
/// counted and excluded from the norms, so the dump itself stays finite.
pub fn grad_health(p: &Parameter) -> GradHealth {
    let mut sq = 0.0f64;
    let mut linf = 0.0f64;
    let mut nonfinite = 0u64;
    for &g in p.grad().data() {
        if g.is_finite() {
            let g = g as f64;
            sq += g * g;
            linf = linf.max(g.abs());
        } else {
            nonfinite += 1;
        }
    }
    GradHealth {
        name: p.name().to_string(),
        shape: p.shape(),
        grad_l2: sq.sqrt(),
        grad_linf: linf,
        weight_l2: l2(p.value().data()),
        nonfinite,
    }
}

/// Carries pre-step weight copies from [`pre_step`] to [`post_step`] so
/// the update-to-weight ratio can be measured on the weights actually
/// written. Empty (and free) unless per-layer recording is active.
#[derive(Debug, Default)]
pub struct StepProbe {
    label: Option<String>,
    pre_weights: Vec<Vec<f32>>,
}

/// Outcome of the pre-step gradient screen.
#[derive(Debug)]
pub enum StepScreen {
    /// Gradients are finite; the optimizer must apply the update and then
    /// call [`post_step`] with the probe.
    Proceed(StepProbe),
    /// Non-finite gradients were found in [`WatchdogMode::Skip`]: the
    /// gradients have been zeroed and the counters bumped. The optimizer
    /// must return without touching weights or its own state.
    Skip,
}

fn fatal_dump(label: &str, health: &[GradHealth]) -> String {
    let mut out = format!(
        "non-finite gradient reached optimizer step (label {label:?}, WatchdogMode::Fatal); \
         per-layer dump:\n"
    );
    for h in health {
        out.push_str(&format!(
            "  {} shape={:?} grad_l2={:.6e} grad_linf={:.6e} weight_l2={:.6e} nonfinite={}\n",
            h.name, h.shape, h.grad_l2, h.grad_linf, h.weight_l2, h.nonfinite
        ));
    }
    out
}

/// Screens `params` before an optimizer applies an update.
///
/// This is the single non-finite-gradient code path shared by every
/// optimizer: even with `diag == None` a poisoned gradient is skipped
/// (never silently applied), in the default [`WatchdogMode::Skip`].
/// With a labelled `diag` and an active telemetry sink, per-layer
/// gradient/weight norms are also recorded and a [`StepProbe`] with
/// pre-step weight copies is returned for [`post_step`].
///
/// # Panics
///
/// In [`WatchdogMode::Fatal`], panics with a per-layer dump when any
/// gradient entry is NaN/Inf.
pub fn pre_step(params: &[Parameter], diag: Option<&StepDiagnostics>) -> StepScreen {
    let mode = diag.map_or(WatchdogMode::default(), StepDiagnostics::mode);
    let recording = diag.is_some() && telemetry::is_enabled();

    let mut nonfinite_total = 0u64;
    let health: Option<Vec<GradHealth>> = if recording || mode == WatchdogMode::Fatal {
        let health: Vec<GradHealth> = params.iter().map(grad_health).collect();
        nonfinite_total = health.iter().map(|h| h.nonfinite).sum();
        Some(health)
    } else {
        for p in params {
            nonfinite_total += p.grad().data().iter().filter(|g| !g.is_finite()).count() as u64;
        }
        None
    };

    if nonfinite_total > 0 {
        match mode {
            WatchdogMode::Fatal => {
                let label = diag.map_or("<none>", StepDiagnostics::label);
                panic!("{}", fatal_dump(label, health.as_deref().unwrap_or(&[])));
            }
            WatchdogMode::Skip => {
                zero_grads(params);
                telemetry::counter_add("watchdog/skipped_updates", 1);
                telemetry::counter_add("watchdog/nonfinite_grads", nonfinite_total);
                // The flight recorder wants an ordinal; the nth skip in
                // this process is the best one available this deep in the
                // optimizer (the trainer's update counter lives upstream).
                static SKIPS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                telemetry::flight_event(telemetry::FlightEventKind::WatchdogSkip {
                    update: SKIPS.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                });
                return StepScreen::Skip;
            }
        }
    }

    if !recording {
        return StepScreen::Proceed(StepProbe::default());
    }
    let label = diag.expect("recording implies diag").label().to_string();
    for h in health.as_deref().unwrap_or(&[]) {
        telemetry::observe_dyn(&format!("grad_norm/{label}/{}", h.name), h.grad_l2);
        telemetry::observe_dyn(&format!("grad_linf/{label}/{}", h.name), h.grad_linf);
        telemetry::observe_dyn(&format!("weight_norm/{label}/{}", h.name), h.weight_l2);
    }
    let pre_weights = params.iter().map(|p| p.value().data().to_vec()).collect();
    StepScreen::Proceed(StepProbe {
        label: Some(label),
        pre_weights,
    })
}

/// Records the update-to-weight ratio for each parameter after the
/// optimizer wrote the new weights. No-op for a probe from an unlabelled
/// or telemetry-disabled [`pre_step`].
pub fn post_step(params: &[Parameter], probe: &StepProbe) {
    let Some(label) = &probe.label else { return };
    for (p, pre) in params.iter().zip(&probe.pre_weights) {
        let value = p.value();
        let post = value.data();
        let mut delta_sq = 0.0f64;
        for (&after, &before) in post.iter().zip(pre.iter()) {
            let d = after as f64 - before as f64;
            delta_sq += d * d;
        }
        let ratio = delta_sq.sqrt() / (l2(pre) + 1e-12);
        drop(value);
        telemetry::observe_dyn(&format!("update_ratio/{label}/{}", p.name()), ratio);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::tensor::Tensor;

    /// Seeds every gradient entry of `p` with NaN via a real backward pass.
    fn poison_grad(p: &Parameter) {
        let mut g = Graph::new();
        let pn = g.param(p);
        let scaled = g.scale(pn, f32::NAN);
        let loss = g.sum(scaled);
        g.backward(loss);
    }

    /// Seeds grad = each entry of `seed` via d/dp sum(p * seed).
    fn seed_grad(p: &Parameter, seed: &[f32]) {
        let mut g = Graph::new();
        let pn = g.param(p);
        let x = g.input(Tensor::from_slice(seed));
        let prod = g.mul(pn, x);
        let loss = g.sum(prod);
        g.backward(loss);
    }

    #[test]
    fn grad_health_matches_reference() {
        let p = Parameter::new("w", Tensor::from_slice(&[3.0, 4.0]));
        seed_grad(&p, &[1.0, -2.0]);
        let h = grad_health(&p);
        assert_eq!(h.name, "w");
        assert!((h.grad_l2 - (5.0f64).sqrt()).abs() < 1e-6);
        assert!((h.grad_linf - 2.0).abs() < 1e-6);
        assert!((h.weight_l2 - 5.0).abs() < 1e-6);
        assert_eq!(h.nonfinite, 0);
    }

    #[test]
    fn grad_health_counts_nonfinite_and_stays_finite() {
        let p = Parameter::new("w", Tensor::from_slice(&[1.0, 1.0, 1.0]));
        poison_grad(&p);
        let h = grad_health(&p);
        assert_eq!(h.nonfinite, 3);
        assert!(h.grad_l2.is_finite());
        assert!(h.grad_linf.is_finite());
    }

    #[test]
    fn skip_screen_zeroes_grads_and_counts() {
        let _t = telemetry::scoped(telemetry::TelemetryConfig::default());
        let p = Parameter::new("w", Tensor::from_slice(&[1.0, 2.0]));
        poison_grad(&p);
        match pre_step(std::slice::from_ref(&p), None) {
            StepScreen::Skip => {}
            other => panic!("expected Skip, got {other:?}"),
        }
        assert!(p.grad().data().iter().all(|&g| g == 0.0));
        let snap = telemetry::snapshot().unwrap();
        assert_eq!(snap.counters["watchdog/skipped_updates"].total, 1);
        assert_eq!(snap.counters["watchdog/nonfinite_grads"].total, 2);
    }

    #[test]
    fn fatal_screen_panics_with_dump() {
        let p = Parameter::new("hero.actor.l0.weight", Tensor::from_slice(&[1.0]));
        poison_grad(&p);
        let diag = StepDiagnostics::named("actor").with_mode(WatchdogMode::Fatal);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pre_step(std::slice::from_ref(&p), Some(&diag));
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("hero.actor.l0.weight"), "{msg}");
        assert!(msg.contains("nonfinite=1"), "{msg}");
        assert!(msg.contains("label \"actor\""), "{msg}");
    }

    #[test]
    fn labelled_step_records_per_layer_histograms() {
        let t = telemetry::scoped(telemetry::TelemetryConfig::default());
        let p = Parameter::new("w", Tensor::from_slice(&[3.0, 4.0]));
        seed_grad(&p, &[0.6, 0.8]);
        let diag = StepDiagnostics::named("actor");
        let probe = match pre_step(std::slice::from_ref(&p), Some(&diag)) {
            StepScreen::Proceed(probe) => probe,
            StepScreen::Skip => panic!("clean grads must proceed"),
        };
        // Emulate an optimizer writing an update of known L2 norm 0.5.
        p.apply_update(|value, _| {
            value.data_mut()[0] += 0.3;
            value.data_mut()[1] -= 0.4;
        });
        post_step(std::slice::from_ref(&p), &probe);
        let snap = t.snapshot();
        assert!((snap.values["grad_norm/actor/w"].mean - 1.0).abs() < 1e-6);
        assert!((snap.values["grad_linf/actor/w"].mean - 0.8).abs() < 1e-6);
        assert!((snap.values["weight_norm/actor/w"].mean - 5.0).abs() < 1e-6);
        assert!((snap.values["update_ratio/actor/w"].mean - 0.1).abs() < 1e-6);
    }

    #[test]
    fn unlabelled_probe_is_free_and_silent() {
        let t = telemetry::scoped(telemetry::TelemetryConfig::default());
        let p = Parameter::new("w", Tensor::from_slice(&[1.0]));
        seed_grad(&p, &[1.0]);
        let probe = match pre_step(std::slice::from_ref(&p), None) {
            StepScreen::Proceed(probe) => probe,
            StepScreen::Skip => panic!("clean grads must proceed"),
        };
        assert!(probe.pre_weights.is_empty());
        post_step(std::slice::from_ref(&p), &probe);
        assert!(t.snapshot().values.is_empty());
    }
}

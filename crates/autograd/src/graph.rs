//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a per-forward-pass tape. Leaves are either constants
//! ([`Graph::input`]) or trainable [`Parameter`]s ([`Graph::param`]); every
//! operation appends a node holding its computed value and enough structure
//! to propagate gradients. [`Graph::backward`] walks the tape in reverse,
//! accumulating parameter gradients into the shared [`Parameter`] storage so
//! an optimizer can apply them afterwards.
//!
//! # Examples
//!
//! ```
//! use hero_autograd::{Graph, Parameter, Tensor};
//!
//! let w = Parameter::new("w", Tensor::from_vec(vec![1, 1], vec![3.0]));
//! let mut g = Graph::new();
//! let x = g.input(Tensor::from_vec(vec![1, 1], vec![2.0]));
//! let wn = g.param(&w);
//! let y = g.matmul(x, wn); // y = w * x = 6
//! let loss = g.sum(y);
//! g.backward(loss);
//! assert_eq!(g.value(y).item(), 6.0);
//! assert_eq!(w.grad().item(), 2.0); // dy/dw = x
//! ```

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use parking_lot::{MappedRwLockReadGuard, RwLock, RwLockReadGuard};

use crate::tensor::{
    matmul_into as tensor_matmul_into, matmul_nt_into as tensor_matmul_nt_into,
    matmul_tn_into as tensor_matmul_tn_into, Tensor, TensorPool,
};

/// Identifier of a node on a [`Graph`] tape.
///
/// Only meaningful for the graph that produced it; using it with another
/// graph panics or yields nonsense values.
pub type NodeId = usize;

struct ParamInner {
    value: Tensor,
    grad: Tensor,
}

/// A trainable tensor shared between graphs and an optimizer.
///
/// Cloning a `Parameter` is cheap and yields a handle to the *same*
/// underlying storage (like `Arc`). Gradients accumulate across
/// [`Graph::backward`] calls until [`Parameter::zero_grad`] resets them.
/// Parameters are `Send + Sync`, so whole agents can be trained on worker
/// threads (the paper trains the low-level skills in parallel
/// environments).
#[derive(Clone)]
pub struct Parameter {
    // The name is immutable after construction and read on every per-step
    // diagnostics call, so it lives outside the value/grad lock.
    name: Arc<str>,
    inner: Arc<RwLock<ParamInner>>,
}

impl Parameter {
    /// Creates a parameter with an initial value and a zeroed gradient.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().to_vec());
        Self {
            name: Arc::from(name.into()),
            inner: Arc::new(RwLock::new(ParamInner { value, grad })),
        }
    }

    /// The human-readable name given at construction. Lock-free and
    /// allocation-free; use [`Parameter::name_arc`] to hold on to it.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// A cheaply clonable handle to the name.
    pub fn name_arc(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// The parameter's shape.
    pub fn shape(&self) -> Vec<usize> {
        self.inner.read().value.shape().to_vec()
    }

    /// Number of scalar elements.
    pub fn len(&self) -> usize {
        self.inner.read().value.len()
    }

    /// Whether the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read-locks the current value.
    pub fn value(&self) -> MappedRwLockReadGuard<'_, Tensor> {
        RwLockReadGuard::map(self.inner.read(), |p| &p.value)
    }

    /// Read-locks the accumulated gradient.
    pub fn grad(&self) -> MappedRwLockReadGuard<'_, Tensor> {
        RwLockReadGuard::map(self.inner.read(), |p| &p.grad)
    }

    /// Replaces the value, keeping the gradient buffer (re-shaped to match).
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.inner.write();
        inner.grad = Tensor::zeros(value.shape().to_vec());
        inner.value = value;
    }

    /// Runs `f` with mutable access to the value and shared access to the
    /// gradient — the hook used by optimizers.
    pub fn apply_update(&self, f: impl FnOnce(&mut Tensor, &Tensor)) {
        let inner = &mut *self.inner.write();
        f(&mut inner.value, &inner.grad);
    }

    /// Scales the accumulated gradient in place (used for gradient clipping).
    pub fn scale_grad(&self, factor: f32) {
        self.inner.write().grad.scale_assign(factor);
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        self.inner.write().grad.zero_();
    }

    /// Whether two handles refer to the same underlying parameter storage.
    pub fn same_storage(&self, other: &Parameter) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// Adds `g` element-wise into the accumulated gradient (what
    /// [`Graph::backward`] does internally). Public so external harnesses
    /// can accumulate manual gradients — e.g. the fault-injection harness
    /// poisons a gradient with NaN to exercise the optimizer watchdog.
    pub fn accumulate_grad(&self, g: &Tensor) {
        self.inner.write().grad.add_assign(g);
    }
}

impl fmt::Debug for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Parameter(name={:?}, shape={:?})",
            self.name,
            self.inner.read().value.shape()
        )
    }
}

/// Zeroes the gradients of every parameter in a slice.
pub fn zero_grads(params: &[Parameter]) {
    for p in params {
        p.zero_grad();
    }
}

/// Copies the values of `src` into `dst` element-wise (hard update, used to
/// initialize target networks).
///
/// # Panics
///
/// Panics when the slices differ in length or any pair differs in shape.
pub fn copy_params(src: &[Parameter], dst: &[Parameter]) {
    assert_eq!(src.len(), dst.len(), "parameter count mismatch");
    for (s, d) in src.iter().zip(dst) {
        d.set_value(s.value().clone());
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Conv2dSpec {
    batch: usize,
    in_channels: usize,
    in_h: usize,
    in_w: usize,
    out_channels: usize,
    k_h: usize,
    k_w: usize,
    stride: usize,
    padding: usize,
    out_h: usize,
    out_w: usize,
}

enum Op {
    Input,
    Param(Parameter),
    Add(NodeId, NodeId),
    AddBias(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Neg(NodeId),
    Scale(NodeId, f32),
    AddScalar(NodeId),
    MatMul(NodeId, NodeId),
    MatMulNT(NodeId, NodeId),
    MatMulTN(NodeId, NodeId),
    Transpose(NodeId),
    Relu(NodeId),
    Tanh(NodeId),
    Sigmoid(NodeId),
    Exp(NodeId),
    Ln(NodeId),
    Softplus(NodeId),
    Clamp(NodeId, f32, f32),
    Softmax(NodeId),
    LogSoftmax(NodeId),
    Sum(NodeId),
    Mean(NodeId),
    SumRows(NodeId),
    ConcatCols(NodeId, NodeId),
    SliceCols(NodeId, Range<usize>),
    RowScale(NodeId, NodeId),
    Minimum(NodeId, NodeId),
    Reshape(NodeId),
    Conv2d(NodeId, NodeId, NodeId, Conv2dSpec),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// A reusable autodiff tape.
///
/// A `Graph` records one forward pass at a time. Calling [`Graph::reset`]
/// between minibatches returns every node's storage to an internal
/// [`TensorPool`], so a long-lived graph stops allocating once the largest
/// minibatch shape has been seen — the arena lifecycle described in
/// DESIGN.md. See the [module docs](self) for a usage example.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
    pool: TensorPool,
    grad_slots: Vec<Option<Tensor>>,
    requires: Vec<bool>,
}

const LN_EPS: f32 = 1e-12;

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears the tape for reuse, recycling every node's buffer into the
    /// graph's [`TensorPool`]. Node ids from before the reset are invalid
    /// afterwards.
    pub fn reset(&mut self) {
        for node in self.nodes.drain(..) {
            self.pool.put(node.value.into_data());
        }
    }

    /// `(hits, misses)` of the graph's buffer pool: after the shapes of a
    /// training step have been seen once, steady-state iterations should
    /// only add hits.
    pub fn pool_stats(&self) -> (u64, u64) {
        self.pool.stats()
    }

    /// Buffers currently parked in the graph's pool. Capped per capacity
    /// class (see [`TensorPool::MAX_PER_BUCKET`]) so repeated minibatches
    /// cannot grow the heap without bound.
    pub fn pool_held(&self) -> usize {
        self.pool.held()
    }

    /// The computed value of a node.
    ///
    /// # Panics
    ///
    /// Panics when `id` was not produced by this graph.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node { value, op });
        self.nodes.len() - 1
    }

    /// Records a constant leaf (no gradient flows into it).
    pub fn input(&mut self, value: Tensor) -> NodeId {
        self.push(value, Op::Input)
    }

    /// Records a trainable leaf; [`Graph::backward`] accumulates its
    /// gradient into the [`Parameter`].
    pub fn param(&mut self, p: &Parameter) -> NodeId {
        let mut data = self.pool.take(p.len());
        let value = {
            let v = p.value();
            data.extend_from_slice(v.data());
            Tensor::from_vec(v.shape().to_vec(), data)
        };
        self.push(value, Op::Param(p.clone()))
    }

    /// Element-wise addition of two same-shaped nodes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
        assert_eq!(va.shape(), vb.shape(), "add shape mismatch");
        data.extend(va.data().iter().zip(vb.data()).map(|(x, y)| x + y));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Add(a, b))
    }

    /// Adds a rank-1 bias `[n]` to every row of a `[m, n]` matrix.
    ///
    /// # Panics
    ///
    /// Panics unless `a` is rank-2, `bias` is rank-1, and widths match.
    pub fn add_bias(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let (va, vb) = (&self.nodes[a].value, &self.nodes[bias].value);
        assert_eq!(va.rank(), 2, "add_bias lhs must be rank-2");
        assert_eq!(vb.rank(), 1, "add_bias bias must be rank-1");
        let (m, n) = (va.shape()[0], va.shape()[1]);
        assert_eq!(vb.len(), n, "add_bias width mismatch");
        for i in 0..m {
            for j in 0..n {
                data.push(va.data()[i * n + j] + vb.data()[j]);
            }
        }
        let value = Tensor::from_vec(vec![m, n], data);
        self.push(value, Op::AddBias(a, bias))
    }

    /// Element-wise subtraction `a - b` of two same-shaped nodes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
        assert_eq!(va.shape(), vb.shape(), "sub shape mismatch");
        data.extend(va.data().iter().zip(vb.data()).map(|(x, y)| x - y));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Sub(a, b))
    }

    /// Element-wise (Hadamard) product of two same-shaped nodes.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
        assert_eq!(va.shape(), vb.shape(), "mul shape mismatch");
        data.extend(va.data().iter().zip(vb.data()).map(|(x, y)| x * y));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Mul(a, b))
    }

    /// Element-wise negation.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        data.extend(va.data().iter().map(|x| -x));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Neg(a))
    }

    /// Multiplication by a compile-time constant scalar.
    pub fn scale(&mut self, a: NodeId, factor: f32) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        data.extend(va.data().iter().map(|x| x * factor));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Scale(a, factor))
    }

    /// Addition of a constant scalar to every element.
    pub fn add_scalar(&mut self, a: NodeId, constant: f32) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        data.extend(va.data().iter().map(|x| x + constant));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::AddScalar(a))
    }

    /// Matrix product of a `[m, k]` node and a `[k, n]` node.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching inner dims.
    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut data = self
            .pool
            .take(self.nodes[a].value.shape()[0] * self.nodes[b].value.shape()[1]);
        let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
        tensor_matmul_into(va, vb, &mut data);
        let value = Tensor::from_vec(vec![va.shape()[0], vb.shape()[1]], data);
        self.push(value, Op::MatMul(a, b))
    }

    /// Fused product `A · Bᵀ` of a `[m, k]` node and an `[n, k]` node,
    /// producing `[m, n]` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching `k` dims.
    pub fn matmul_nt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut data = self
            .pool
            .take(self.nodes[a].value.shape()[0] * self.nodes[b].value.shape()[0]);
        let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
        tensor_matmul_nt_into(va, vb, &mut data);
        let value = Tensor::from_vec(vec![va.shape()[0], vb.shape()[0]], data);
        self.push(value, Op::MatMulNT(a, b))
    }

    /// Fused product `Aᵀ · B` of a `[k, m]` node and a `[k, n]` node,
    /// producing `[m, n]` without materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with matching `k` dims.
    pub fn matmul_tn(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut data = self
            .pool
            .take(self.nodes[a].value.shape()[1] * self.nodes[b].value.shape()[1]);
        let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
        tensor_matmul_tn_into(va, vb, &mut data);
        let value = Tensor::from_vec(vec![va.shape()[1], vb.shape()[1]], data);
        self.push(value, Op::MatMulTN(a, b))
    }

    /// Matrix transpose of a rank-2 node.
    ///
    /// # Panics
    ///
    /// Panics unless the operand is rank-2.
    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let value = self.nodes[a].value.transposed();
        self.push(value, Op::Transpose(a))
    }

    /// Rectified linear unit, `max(x, 0)`.
    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        data.extend(va.data().iter().map(|x| x.max(0.0)));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Relu(a))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        data.extend(va.data().iter().map(|x| x.tanh()));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Tanh(a))
    }

    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        data.extend(va.data().iter().map(|x| sigmoid(*x)));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Sigmoid(a))
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        data.extend(va.data().iter().map(|x| x.exp()));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Exp(a))
    }

    /// Element-wise natural logarithm, clamped below at `1e-12` for
    /// numerical safety.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        data.extend(va.data().iter().map(|x| x.max(LN_EPS).ln()));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Ln(a))
    }

    /// Numerically stable softplus `ln(1 + e^x)`.
    pub fn softplus(&mut self, a: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        data.extend(va.data().iter().map(|x| softplus(*x)));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Softplus(a))
    }

    /// Element-wise clamp into `[lo, hi]`; gradients pass only where the
    /// input lies strictly inside the range.
    ///
    /// # Panics
    ///
    /// Panics when `lo > hi`.
    pub fn clamp(&mut self, a: NodeId, lo: f32, hi: f32) -> NodeId {
        assert!(lo <= hi, "clamp requires lo <= hi");
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        data.extend(va.data().iter().map(|x| x.clamp(lo, hi)));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Clamp(a, lo, hi))
    }

    /// Row-wise softmax of a `[m, n]` node.
    ///
    /// # Panics
    ///
    /// Panics unless the operand is rank-2.
    pub fn softmax(&mut self, a: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        assert_eq!(va.rank(), 2, "softmax expects rank-2 input");
        data.resize(va.len(), 0.0);
        rowwise_into(va, &mut data, softmax_row);
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Softmax(a))
    }

    /// Row-wise log-softmax of a `[m, n]` node (numerically stable).
    ///
    /// # Panics
    ///
    /// Panics unless the operand is rank-2.
    pub fn log_softmax(&mut self, a: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let va = &self.nodes[a].value;
        assert_eq!(va.rank(), 2, "log_softmax expects rank-2 input");
        data.resize(va.len(), 0.0);
        rowwise_into(va, &mut data, log_softmax_row);
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::LogSoftmax(a))
    }

    /// Sum of all elements, producing a scalar node.
    pub fn sum(&mut self, a: NodeId) -> NodeId {
        let value = Tensor::scalar(self.nodes[a].value.sum());
        self.push(value, Op::Sum(a))
    }

    /// Mean of all elements, producing a scalar node.
    ///
    /// # Panics
    ///
    /// Panics on empty operands.
    pub fn mean(&mut self, a: NodeId) -> NodeId {
        let va = &self.nodes[a].value;
        assert!(!va.is_empty(), "mean of empty tensor");
        let value = Tensor::scalar(va.mean());
        self.push(value, Op::Mean(a))
    }

    /// Per-row sum of a `[m, n]` node, producing `[m, 1]`.
    ///
    /// # Panics
    ///
    /// Panics unless the operand is rank-2.
    pub fn sum_rows(&mut self, a: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.shape()[0]);
        let va = &self.nodes[a].value;
        assert_eq!(va.rank(), 2, "sum_rows expects rank-2 input");
        let (m, n) = (va.shape()[0], va.shape()[1]);
        for i in 0..m {
            data.push(va.data()[i * n..(i + 1) * n].iter().sum());
        }
        let value = Tensor::from_vec(vec![m, 1], data);
        self.push(value, Op::SumRows(a))
    }

    /// Concatenates two rank-2 nodes with equal row counts along columns.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank-2 with equal row counts.
    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut data = self
            .pool
            .take(self.nodes[a].value.len() + self.nodes[b].value.len());
        let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
        assert_eq!(va.rank(), 2, "concat_cols lhs must be rank-2");
        assert_eq!(vb.rank(), 2, "concat_cols rhs must be rank-2");
        assert_eq!(va.shape()[0], vb.shape()[0], "concat_cols row mismatch");
        let (m, na, nb) = (va.shape()[0], va.shape()[1], vb.shape()[1]);
        for i in 0..m {
            data.extend_from_slice(&va.data()[i * na..(i + 1) * na]);
            data.extend_from_slice(&vb.data()[i * nb..(i + 1) * nb]);
        }
        let value = Tensor::from_vec(vec![m, na + nb], data);
        self.push(value, Op::ConcatCols(a, b))
    }

    /// Concatenates any number of rank-2 nodes along columns.
    ///
    /// # Panics
    ///
    /// Panics when `parts` is empty or shapes are incompatible.
    pub fn concat_cols_many(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty(), "concat_cols_many requires >= 1 part");
        let mut acc = parts[0];
        for &p in &parts[1..] {
            acc = self.concat_cols(acc, p);
        }
        acc
    }

    /// Column slice `[m, cols]` → `[m, range.len()]` of a rank-2 node.
    ///
    /// # Panics
    ///
    /// Panics unless the operand is rank-2 and the range is in bounds.
    pub fn slice_cols(&mut self, a: NodeId, range: Range<usize>) -> NodeId {
        let mut data = self
            .pool
            .take(self.nodes[a].value.shape()[0] * (range.end - range.start));
        let va = &self.nodes[a].value;
        assert_eq!(va.rank(), 2, "slice_cols expects rank-2 input");
        let (m, n) = (va.shape()[0], va.shape()[1]);
        assert!(range.end <= n, "slice_cols range out of bounds");
        let width = range.end - range.start;
        for i in 0..m {
            data.extend_from_slice(&va.data()[i * n + range.start..i * n + range.end]);
        }
        let value = Tensor::from_vec(vec![m, width], data);
        self.push(value, Op::SliceCols(a, range))
    }

    /// Scales each row `i` of a `[m, n]` node by the scalar `w[i]` from a
    /// `[m, 1]` node (broadcast multiply along columns).
    ///
    /// # Panics
    ///
    /// Panics unless `a` is `[m, n]` and `w` is `[m, 1]`.
    pub fn row_scale(&mut self, a: NodeId, w: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let (va, vw) = (&self.nodes[a].value, &self.nodes[w].value);
        assert_eq!(va.rank(), 2, "row_scale lhs must be rank-2");
        assert_eq!(vw.shape(), &[va.shape()[0], 1], "row_scale weights must be [m, 1]");
        let (m, n) = (va.shape()[0], va.shape()[1]);
        for i in 0..m {
            let wi = vw.data()[i];
            for j in 0..n {
                data.push(va.data()[i * n + j] * wi);
            }
        }
        let value = Tensor::from_vec(vec![m, n], data);
        self.push(value, Op::RowScale(a, w))
    }

    /// Element-wise minimum of two same-shaped nodes; on ties the gradient
    /// flows to the first operand.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn minimum(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let mut data = self.pool.take(self.nodes[a].value.len());
        let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
        assert_eq!(va.shape(), vb.shape(), "minimum shape mismatch");
        data.extend(va.data().iter().zip(vb.data()).map(|(x, y)| x.min(*y)));
        let value = Tensor::from_vec(va.shape().to_vec(), data);
        self.push(value, Op::Minimum(a, b))
    }

    /// Reshapes a node to a new shape with the same element count.
    ///
    /// # Panics
    ///
    /// Panics when the element counts differ.
    pub fn reshape(&mut self, a: NodeId, shape: Vec<usize>) -> NodeId {
        let value = self.nodes[a].value.reshaped(shape).expect("reshape element count mismatch");
        self.push(value, Op::Reshape(a))
    }

    /// 2D convolution of a `[N, C, H, W]` input with `[F, C, KH, KW]`
    /// filters and a `[F]` bias.
    ///
    /// # Panics
    ///
    /// Panics on rank or channel mismatches, or when the kernel (with
    /// padding) does not fit the input.
    pub fn conv2d(
        &mut self,
        input: NodeId,
        weight: NodeId,
        bias: NodeId,
        stride: usize,
        padding: usize,
    ) -> NodeId {
        assert!(stride > 0, "conv2d stride must be positive");
        let (vi, vw, vb) = (
            &self.nodes[input].value,
            &self.nodes[weight].value,
            &self.nodes[bias].value,
        );
        assert_eq!(vi.rank(), 4, "conv2d input must be [N, C, H, W]");
        assert_eq!(vw.rank(), 4, "conv2d weight must be [F, C, KH, KW]");
        assert_eq!(vb.rank(), 1, "conv2d bias must be [F]");
        let (batch, in_channels, in_h, in_w) =
            (vi.shape()[0], vi.shape()[1], vi.shape()[2], vi.shape()[3]);
        let (out_channels, w_c, k_h, k_w) =
            (vw.shape()[0], vw.shape()[1], vw.shape()[2], vw.shape()[3]);
        assert_eq!(in_channels, w_c, "conv2d channel mismatch");
        assert_eq!(vb.len(), out_channels, "conv2d bias length mismatch");
        let padded_h = in_h + 2 * padding;
        let padded_w = in_w + 2 * padding;
        assert!(
            padded_h >= k_h && padded_w >= k_w,
            "conv2d kernel larger than padded input"
        );
        let out_h = (padded_h - k_h) / stride + 1;
        let out_w = (padded_w - k_w) / stride + 1;
        let spec = Conv2dSpec {
            batch,
            in_channels,
            in_h,
            in_w,
            out_channels,
            k_h,
            k_w,
            stride,
            padding,
            out_h,
            out_w,
        };
        let value = conv2d_forward(vi, vw, vb, spec);
        self.push(value, Op::Conv2d(input, weight, bias, spec))
    }

    /// Runs reverse-mode differentiation from a scalar `loss` node,
    /// accumulating into every reachable [`Parameter`]'s gradient buffer.
    ///
    /// # Panics
    ///
    /// Panics when `loss` is not a single-element node.
    pub fn backward(&mut self, loss: NodeId) {
        assert_eq!(
            self.nodes[loss].value.len(),
            1,
            "backward requires a scalar loss node"
        );
        // Both the slot vector and every gradient buffer are checked out of
        // the graph's pool and returned before this call finishes, so
        // steady-state backward passes allocate nothing. Gradients are
        // moved into slots (not cloned) whenever they have a single
        // pending consumer.
        let mut pool = std::mem::take(&mut self.pool);
        let mut grads = std::mem::take(&mut self.grad_slots);
        grads.clear();
        grads.resize_with(self.nodes.len(), || None);
        // Requires-grad sweep: a node needs a gradient only if a Parameter
        // is somewhere beneath it. Gradients headed for pure-input subtrees
        // (e.g. dLoss/dX of the first layer's minibatch) are never computed
        // or stored. The buffer lives on the graph so steady state stays
        // allocation-free.
        let mut requires = std::mem::take(&mut self.requires);
        requires.clear();
        for node in &self.nodes {
            let req = match &node.op {
                Op::Input => false,
                Op::Param(_) => true,
                Op::Add(a, b)
                | Op::AddBias(a, b)
                | Op::Sub(a, b)
                | Op::Mul(a, b)
                | Op::MatMul(a, b)
                | Op::MatMulNT(a, b)
                | Op::MatMulTN(a, b)
                | Op::ConcatCols(a, b)
                | Op::RowScale(a, b)
                | Op::Minimum(a, b) => requires[*a] || requires[*b],
                Op::Neg(a)
                | Op::Scale(a, _)
                | Op::AddScalar(a)
                | Op::Transpose(a)
                | Op::Relu(a)
                | Op::Tanh(a)
                | Op::Sigmoid(a)
                | Op::Exp(a)
                | Op::Ln(a)
                | Op::Softplus(a)
                | Op::Clamp(a, _, _)
                | Op::Softmax(a)
                | Op::LogSoftmax(a)
                | Op::Sum(a)
                | Op::Mean(a)
                | Op::SumRows(a)
                | Op::SliceCols(a, _)
                | Op::Reshape(a) => requires[*a],
                Op::Conv2d(i, w, b, _) => requires[*i] || requires[*w] || requires[*b],
            };
            requires.push(req);
        }
        {
            let mut seed = pool.take(1);
            seed.push(1.0);
            grads[loss] = Some(Tensor::from_vec(
                self.nodes[loss].value.shape().to_vec(),
                seed,
            ));
        }

        for id in (0..self.nodes.len()).rev() {
            let Some(mut g) = grads[id].take() else { continue };
            match &self.nodes[id].op {
                Op::Input => pool.put(g.into_data()),
                Op::Param(p) => {
                    p.accumulate_grad(&g);
                    pool.put(g.into_data());
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    if a == b {
                        // Bit-identical to adding g twice: x * 2.0 == x + x.
                        g.scale_assign(2.0);
                        accumulate(&mut grads, &mut pool, &requires, a, g);
                    } else if grads[a].is_none() && grads[b].is_some() {
                        if let Some(gb) = grads[b].as_mut() {
                            gb.add_assign(&g);
                        }
                        grads[a] = Some(g);
                    } else {
                        if let Some(ga) = grads[a].as_mut() {
                            ga.add_assign(&g);
                        } else {
                            let mut data = pool.take(g.len());
                            data.extend_from_slice(g.data());
                            grads[a] = Some(Tensor::from_vec(g.shape().to_vec(), data));
                        }
                        accumulate(&mut grads, &mut pool, &requires, b, g);
                    }
                }
                Op::AddBias(a, bias) => {
                    let (a, bias) = (*a, *bias);
                    let n = self.nodes[id].value.shape()[1];
                    let m = self.nodes[id].value.shape()[0];
                    let mut gb = pool.take(n);
                    gb.resize(n, 0.0);
                    for i in 0..m {
                        for (gbj, &gv) in gb.iter_mut().zip(&g.data()[i * n..(i + 1) * n]) {
                            *gbj += gv;
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                    accumulate(&mut grads, &mut pool, &requires, bias, Tensor::from_vec(vec![n], gb));
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    let mut gneg = pool.take(g.len());
                    gneg.extend(g.data().iter().map(|x| -x));
                    let gneg = Tensor::from_vec(g.shape().to_vec(), gneg);
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                    accumulate(&mut grads, &mut pool, &requires, b, gneg);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let gb = elementwise_pooled(&mut pool, &g, &self.nodes[a].value, |g, x| g * x);
                    {
                        let vb = &self.nodes[b].value;
                        for (gv, &y) in g.data_mut().iter_mut().zip(vb.data()) {
                            *gv *= y;
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                    accumulate(&mut grads, &mut pool, &requires, b, gb);
                }
                Op::Neg(a) => {
                    let a = *a;
                    for gv in g.data_mut() {
                        *gv = -*gv;
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::Scale(a, f) => {
                    let (a, f) = (*a, *f);
                    for gv in g.data_mut() {
                        *gv *= f;
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::AddScalar(a) => {
                    let a = *a;
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::MatMul(a, b) => {
                    // dA = g · Bᵀ and dB = Aᵀ · g via the fused kernels —
                    // no transposes are materialized, and a side with no
                    // Parameter beneath it skips its kernel entirely.
                    let (a, b) = (*a, *b);
                    if requires[a] {
                        let ga = {
                            let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
                            let mut ga_data = pool.take(va.len());
                            tensor_matmul_nt_into(&g, vb, &mut ga_data);
                            Tensor::from_vec(va.shape().to_vec(), ga_data)
                        };
                        accumulate(&mut grads, &mut pool, &requires, a, ga);
                    }
                    if requires[b] {
                        let gb = {
                            let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
                            let mut gb_data = pool.take(vb.len());
                            tensor_matmul_tn_into(va, &g, &mut gb_data);
                            Tensor::from_vec(vb.shape().to_vec(), gb_data)
                        };
                        accumulate(&mut grads, &mut pool, &requires, b, gb);
                    }
                    pool.put(g.into_data());
                }
                Op::MatMulNT(a, b) => {
                    // C = A · Bᵀ: dA = g · B, dB = gᵀ · A.
                    let (a, b) = (*a, *b);
                    if requires[a] {
                        let ga = {
                            let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
                            let mut ga_data = pool.take(va.len());
                            tensor_matmul_into(&g, vb, &mut ga_data);
                            Tensor::from_vec(va.shape().to_vec(), ga_data)
                        };
                        accumulate(&mut grads, &mut pool, &requires, a, ga);
                    }
                    if requires[b] {
                        let gb = {
                            let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
                            let mut gb_data = pool.take(vb.len());
                            tensor_matmul_tn_into(&g, va, &mut gb_data);
                            Tensor::from_vec(vb.shape().to_vec(), gb_data)
                        };
                        accumulate(&mut grads, &mut pool, &requires, b, gb);
                    }
                    pool.put(g.into_data());
                }
                Op::MatMulTN(a, b) => {
                    // C = Aᵀ · B: dA = B · gᵀ, dB = A · g.
                    let (a, b) = (*a, *b);
                    if requires[a] {
                        let ga = {
                            let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
                            let mut ga_data = pool.take(va.len());
                            tensor_matmul_nt_into(vb, &g, &mut ga_data);
                            Tensor::from_vec(va.shape().to_vec(), ga_data)
                        };
                        accumulate(&mut grads, &mut pool, &requires, a, ga);
                    }
                    if requires[b] {
                        let gb = {
                            let (va, vb) = (&self.nodes[a].value, &self.nodes[b].value);
                            let mut gb_data = pool.take(vb.len());
                            tensor_matmul_into(va, &g, &mut gb_data);
                            Tensor::from_vec(vb.shape().to_vec(), gb_data)
                        };
                        accumulate(&mut grads, &mut pool, &requires, b, gb);
                    }
                    pool.put(g.into_data());
                }
                Op::Transpose(a) => {
                    let a = *a;
                    let (p, q) = (g.shape()[0], g.shape()[1]);
                    let mut ga = pool.take(g.len());
                    ga.resize(g.len(), 0.0);
                    for i in 0..p {
                        for j in 0..q {
                            ga[j * p + i] = g.data()[i * q + j];
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, Tensor::from_vec(vec![q, p], ga));
                    pool.put(g.into_data());
                }
                Op::Relu(a) => {
                    let a = *a;
                    {
                        let va = &self.nodes[a].value;
                        for (gv, &x) in g.data_mut().iter_mut().zip(va.data()) {
                            if x <= 0.0 {
                                *gv = 0.0;
                            }
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::Tanh(a) => {
                    let a = *a;
                    {
                        let y = &self.nodes[id].value;
                        for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
                            *gv *= 1.0 - yv * yv;
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::Sigmoid(a) => {
                    let a = *a;
                    {
                        let y = &self.nodes[id].value;
                        for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
                            *gv = *gv * yv * (1.0 - yv);
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::Exp(a) => {
                    let a = *a;
                    {
                        let y = &self.nodes[id].value;
                        for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
                            *gv *= yv;
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::Ln(a) => {
                    let a = *a;
                    {
                        let va = &self.nodes[a].value;
                        for (gv, &x) in g.data_mut().iter_mut().zip(va.data()) {
                            *gv /= x.max(LN_EPS);
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::Softplus(a) => {
                    let a = *a;
                    {
                        let va = &self.nodes[a].value;
                        for (gv, &x) in g.data_mut().iter_mut().zip(va.data()) {
                            *gv *= sigmoid(x);
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::Clamp(a, lo, hi) => {
                    let (a, lo, hi) = (*a, *lo, *hi);
                    {
                        let va = &self.nodes[a].value;
                        for (gv, &x) in g.data_mut().iter_mut().zip(va.data()) {
                            if !(x > lo && x < hi) {
                                *gv = 0.0;
                            }
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::Softmax(a) => {
                    let a = *a;
                    {
                        let y = &self.nodes[id].value;
                        let (m, n) = (y.shape()[0], y.shape()[1]);
                        for i in 0..m {
                            let yr = &y.data()[i * n..(i + 1) * n];
                            let gr = &mut g.data_mut()[i * n..(i + 1) * n];
                            let dot: f32 = yr.iter().zip(gr.iter()).map(|(y, g)| y * g).sum();
                            for (gv, &yv) in gr.iter_mut().zip(yr) {
                                *gv = yv * (*gv - dot);
                            }
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::LogSoftmax(a) => {
                    let a = *a;
                    {
                        let y = &self.nodes[id].value;
                        let (m, n) = (y.shape()[0], y.shape()[1]);
                        for i in 0..m {
                            let yr = &y.data()[i * n..(i + 1) * n];
                            let gr = &mut g.data_mut()[i * n..(i + 1) * n];
                            let gsum: f32 = gr.iter().sum();
                            for (gv, &yv) in gr.iter_mut().zip(yr) {
                                *gv -= yv.exp() * gsum;
                            }
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                }
                Op::Sum(a) => {
                    let a = *a;
                    let shape = self.nodes[a].value.shape().to_vec();
                    let len = self.nodes[a].value.len();
                    let mut ga = pool.take(len);
                    ga.resize(len, g.item());
                    accumulate(&mut grads, &mut pool, &requires, a, Tensor::from_vec(shape, ga));
                    pool.put(g.into_data());
                }
                Op::Mean(a) => {
                    let a = *a;
                    let shape = self.nodes[a].value.shape().to_vec();
                    let len = self.nodes[a].value.len();
                    let mut ga = pool.take(len);
                    ga.resize(len, g.item() / len as f32);
                    accumulate(&mut grads, &mut pool, &requires, a, Tensor::from_vec(shape, ga));
                    pool.put(g.into_data());
                }
                Op::SumRows(a) => {
                    let a = *a;
                    let (m, n) = {
                        let s = self.nodes[a].value.shape();
                        (s[0], s[1])
                    };
                    let mut ga = pool.take(m * n);
                    for i in 0..m {
                        let gi = g.data()[i];
                        ga.extend(std::iter::repeat(gi).take(n));
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, Tensor::from_vec(vec![m, n], ga));
                    pool.put(g.into_data());
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let na = self.nodes[a].value.shape()[1];
                    let nb = self.nodes[b].value.shape()[1];
                    let m = self.nodes[a].value.shape()[0];
                    let mut ga = pool.take(m * na);
                    let mut gb = pool.take(m * nb);
                    let n = na + nb;
                    for i in 0..m {
                        ga.extend_from_slice(&g.data()[i * n..i * n + na]);
                        gb.extend_from_slice(&g.data()[i * n + na..(i + 1) * n]);
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, Tensor::from_vec(vec![m, na], ga));
                    accumulate(&mut grads, &mut pool, &requires, b, Tensor::from_vec(vec![m, nb], gb));
                    pool.put(g.into_data());
                }
                Op::SliceCols(a, range) => {
                    let (a, range) = (*a, range.clone());
                    let (m, n) = {
                        let s = self.nodes[a].value.shape();
                        (s[0], s[1])
                    };
                    let width = range.end - range.start;
                    let mut ga = pool.take(m * n);
                    ga.resize(m * n, 0.0);
                    for i in 0..m {
                        for j in 0..width {
                            ga[i * n + range.start + j] = g.data()[i * width + j];
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, Tensor::from_vec(vec![m, n], ga));
                    pool.put(g.into_data());
                }
                Op::RowScale(a, w) => {
                    let (a, w) = (*a, *w);
                    let (m, n) = {
                        let s = self.nodes[a].value.shape();
                        (s[0], s[1])
                    };
                    let mut gw = pool.take(m);
                    gw.resize(m, 0.0);
                    {
                        let va = &self.nodes[a].value;
                        let vw = &self.nodes[w].value;
                        for i in 0..m {
                            let wi = vw.data()[i];
                            let grow = &mut g.data_mut()[i * n..(i + 1) * n];
                            let varow = &va.data()[i * n..(i + 1) * n];
                            for (gv, &xv) in grow.iter_mut().zip(varow) {
                                let gij = *gv;
                                *gv = gij * wi;
                                gw[i] += gij * xv;
                            }
                        }
                    }
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                    accumulate(&mut grads, &mut pool, &requires, w, Tensor::from_vec(vec![m, 1], gw));
                }
                Op::Minimum(a, b) => {
                    let (a, b) = (*a, *b);
                    let mut gb = pool.take(g.len());
                    gb.resize(g.len(), 0.0);
                    {
                        let va = &self.nodes[a].value;
                        let vb = &self.nodes[b].value;
                        let gd = g.data_mut();
                        for i in 0..gd.len() {
                            if va.data()[i] > vb.data()[i] {
                                gb[i] = gd[i];
                                gd[i] = 0.0;
                            }
                        }
                    }
                    let shape = g.shape().to_vec();
                    accumulate(&mut grads, &mut pool, &requires, a, g);
                    accumulate(&mut grads, &mut pool, &requires, b, Tensor::from_vec(shape, gb));
                }
                Op::Reshape(a) => {
                    let a = *a;
                    let shape = self.nodes[a].value.shape().to_vec();
                    let ga = Tensor::from_vec(shape, g.into_data());
                    accumulate(&mut grads, &mut pool, &requires, a, ga);
                }
                Op::Conv2d(input, weight, bias, spec) => {
                    let (input, weight, bias, spec) = (*input, *weight, *bias, *spec);
                    let (gi, gw, gb) = conv2d_backward(
                        &g,
                        &self.nodes[input].value,
                        &self.nodes[weight].value,
                        spec,
                    );
                    accumulate(&mut grads, &mut pool, &requires, input, gi);
                    accumulate(&mut grads, &mut pool, &requires, weight, gw);
                    accumulate(&mut grads, &mut pool, &requires, bias, gb);
                    pool.put(g.into_data());
                }
            }
        }

        self.grad_slots = grads;
        self.pool = pool;
        self.requires = requires;
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph({} nodes)", self.nodes.len())
    }
}

/// Accumulate `g` into `grads[id]`. Takes ownership: the tensor is moved
/// into an empty slot, and its buffer returns to the pool when the slot is
/// already occupied (the common two-consumer case adds in place).
///
/// Gradients headed for nodes with no Parameter beneath them (`requires[id]`
/// false — Inputs and pure-input subtrees) are recycled instead of stored:
/// nothing downstream will ever read them.
fn accumulate(
    grads: &mut [Option<Tensor>],
    pool: &mut TensorPool,
    requires: &[bool],
    id: NodeId,
    g: Tensor,
) {
    if !requires[id] {
        pool.put(g.into_data());
        return;
    }
    match &mut grads[id] {
        Some(existing) => {
            existing.add_assign(&g);
            pool.put(g.into_data());
        }
        slot => *slot = Some(g),
    }
}

fn elementwise_pooled(
    pool: &mut TensorPool,
    g: &Tensor,
    other: &Tensor,
    f: impl Fn(f32, f32) -> f32,
) -> Tensor {
    debug_assert_eq!(g.shape(), other.shape());
    let mut data = pool.take(g.len());
    data.extend(g.data().iter().zip(other.data()).map(|(&a, &b)| f(a, b)));
    Tensor::from_vec(g.shape().to_vec(), data)
}

fn rowwise_into(t: &Tensor, out: &mut [f32], f: impl Fn(&[f32], &mut [f32])) {
    let (m, n) = (t.shape()[0], t.shape()[1]);
    for i in 0..m {
        f(&t.data()[i * n..(i + 1) * n], &mut out[i * n..(i + 1) * n]);
    }
}

fn softmax_row(row: &[f32], out: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (o, &x) in out.iter_mut().zip(row) {
        *o = (x - max).exp();
        sum += *o;
    }
    for o in out.iter_mut() {
        *o /= sum;
    }
}

fn log_softmax_row(row: &[f32], out: &mut [f32]) {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    for (o, &x) in out.iter_mut().zip(row) {
        *o = x - max - log_sum;
    }
}

pub(crate) fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

fn softplus(x: f32) -> f32 {
    x.max(0.0) + (-x.abs()).exp().ln_1p()
}

fn conv2d_forward(input: &Tensor, weight: &Tensor, bias: &Tensor, s: Conv2dSpec) -> Tensor {
    let mut out = vec![0.0f32; s.batch * s.out_channels * s.out_h * s.out_w];
    let in_plane = s.in_h * s.in_w;
    let out_plane = s.out_h * s.out_w;
    for n in 0..s.batch {
        for f in 0..s.out_channels {
            for oy in 0..s.out_h {
                for ox in 0..s.out_w {
                    let mut acc = bias.data()[f];
                    for c in 0..s.in_channels {
                        for ky in 0..s.k_h {
                            let iy = (oy * s.stride + ky) as isize - s.padding as isize;
                            if iy < 0 || iy >= s.in_h as isize {
                                continue;
                            }
                            for kx in 0..s.k_w {
                                let ix = (ox * s.stride + kx) as isize - s.padding as isize;
                                if ix < 0 || ix >= s.in_w as isize {
                                    continue;
                                }
                                let ival = input.data()[n * s.in_channels * in_plane
                                    + c * in_plane
                                    + iy as usize * s.in_w
                                    + ix as usize];
                                let wval = weight.data()[f * s.in_channels * s.k_h * s.k_w
                                    + c * s.k_h * s.k_w
                                    + ky * s.k_w
                                    + kx];
                                acc += ival * wval;
                            }
                        }
                    }
                    out[n * s.out_channels * out_plane + f * out_plane + oy * s.out_w + ox] = acc;
                }
            }
        }
    }
    Tensor::from_vec(vec![s.batch, s.out_channels, s.out_h, s.out_w], out)
}

fn conv2d_backward(
    g: &Tensor,
    input: &Tensor,
    weight: &Tensor,
    s: Conv2dSpec,
) -> (Tensor, Tensor, Tensor) {
    let in_plane = s.in_h * s.in_w;
    let out_plane = s.out_h * s.out_w;
    let mut gi = vec![0.0f32; input.len()];
    let mut gw = vec![0.0f32; weight.len()];
    let mut gb = vec![0.0f32; s.out_channels];
    for n in 0..s.batch {
        for f in 0..s.out_channels {
            for oy in 0..s.out_h {
                for ox in 0..s.out_w {
                    let go =
                        g.data()[n * s.out_channels * out_plane + f * out_plane + oy * s.out_w + ox];
                    if go == 0.0 {
                        continue;
                    }
                    gb[f] += go;
                    for c in 0..s.in_channels {
                        for ky in 0..s.k_h {
                            let iy = (oy * s.stride + ky) as isize - s.padding as isize;
                            if iy < 0 || iy >= s.in_h as isize {
                                continue;
                            }
                            for kx in 0..s.k_w {
                                let ix = (ox * s.stride + kx) as isize - s.padding as isize;
                                if ix < 0 || ix >= s.in_w as isize {
                                    continue;
                                }
                                let i_idx = n * s.in_channels * in_plane
                                    + c * in_plane
                                    + iy as usize * s.in_w
                                    + ix as usize;
                                let w_idx = f * s.in_channels * s.k_h * s.k_w
                                    + c * s.k_h * s.k_w
                                    + ky * s.k_w
                                    + kx;
                                gi[i_idx] += go * weight.data()[w_idx];
                                gw[w_idx] += go * input.data()[i_idx];
                            }
                        }
                    }
                }
            }
        }
    }
    (
        Tensor::from_vec(input.shape().to_vec(), gi),
        Tensor::from_vec(weight.shape().to_vec(), gw),
        Tensor::from_vec(vec![s.out_channels], gb),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_input(g: &mut Graph, v: f32) -> NodeId {
        g.input(Tensor::from_vec(vec![1, 1], vec![v]))
    }

    #[test]
    fn add_and_backward_through_param() {
        let p = Parameter::new("p", Tensor::from_vec(vec![1, 1], vec![5.0]));
        let mut g = Graph::new();
        let x = scalar_input(&mut g, 2.0);
        let pn = g.param(&p);
        let y = g.add(x, pn);
        let loss = g.sum(y);
        g.backward(loss);
        assert_eq!(g.value(y).item(), 7.0);
        assert_eq!(p.grad().item(), 1.0);
    }

    #[test]
    fn grads_accumulate_across_backward_calls() {
        let p = Parameter::new("p", Tensor::from_vec(vec![1, 1], vec![1.0]));
        for _ in 0..3 {
            let mut g = Graph::new();
            let pn = g.param(&p);
            let loss = g.sum(pn);
            g.backward(loss);
        }
        assert_eq!(p.grad().item(), 3.0);
        p.zero_grad();
        assert_eq!(p.grad().item(), 0.0);
    }

    #[test]
    fn shared_param_used_twice_accumulates_both_paths() {
        // loss = p * p => dloss/dp = 2p
        let p = Parameter::new("p", Tensor::from_vec(vec![1, 1], vec![3.0]));
        let mut g = Graph::new();
        let a = g.param(&p);
        let b = g.param(&p);
        let y = g.mul(a, b);
        let loss = g.sum(y);
        g.backward(loss);
        assert_eq!(p.grad().item(), 6.0);
    }

    #[test]
    fn matmul_gradients_match_manual() {
        // loss = sum(A @ B); dA = 1 @ B^T, dB = A^T @ 1
        let a = Parameter::new("a", Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]));
        let b = Parameter::new("b", Tensor::from_vec(vec![2, 2], vec![5.0, 6.0, 7.0, 8.0]));
        let mut g = Graph::new();
        let an = g.param(&a);
        let bn = g.param(&b);
        let y = g.matmul(an, bn);
        let loss = g.sum(y);
        g.backward(loss);
        assert_eq!(a.grad().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(b.grad().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]));
        let y = g.softmax(x);
        for i in 0..2 {
            let s: f32 = g.value(y).row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let mut g = Graph::new();
        let t = Tensor::from_vec(vec![1, 4], vec![0.5, -1.0, 2.0, 0.0]);
        let x = g.input(t.clone());
        let x2 = g.input(t);
        let ls = g.log_softmax(x);
        let sm = g.softmax(x2);
        for j in 0..4 {
            assert!((g.value(ls).data()[j] - g.value(sm).data()[j].ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn minimum_routes_gradient_to_smaller() {
        let a = Parameter::new("a", Tensor::from_vec(vec![1, 2], vec![1.0, 5.0]));
        let b = Parameter::new("b", Tensor::from_vec(vec![1, 2], vec![2.0, 4.0]));
        let mut g = Graph::new();
        let an = g.param(&a);
        let bn = g.param(&b);
        let m = g.minimum(an, bn);
        let loss = g.sum(m);
        g.backward(loss);
        assert_eq!(a.grad().data(), &[1.0, 0.0]);
        assert_eq!(b.grad().data(), &[0.0, 1.0]);
    }

    #[test]
    fn concat_and_slice_roundtrip_gradients() {
        let a = Parameter::new("a", Tensor::from_vec(vec![2, 2], vec![1.0; 4]));
        let b = Parameter::new("b", Tensor::from_vec(vec![2, 1], vec![1.0; 2]));
        let mut g = Graph::new();
        let an = g.param(&a);
        let bn = g.param(&b);
        let c = g.concat_cols(an, bn);
        assert_eq!(g.value(c).shape(), &[2, 3]);
        let right = g.slice_cols(c, 2..3);
        let loss = g.sum(right);
        g.backward(loss);
        assert_eq!(a.grad().data(), &[0.0; 4]);
        assert_eq!(b.grad().data(), &[1.0, 1.0]);
    }

    #[test]
    fn row_scale_weights_gradient() {
        let a = Parameter::new("a", Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]));
        let w = Parameter::new("w", Tensor::from_vec(vec![2, 1], vec![10.0, 20.0]));
        let mut g = Graph::new();
        let an = g.param(&a);
        let wn = g.param(&w);
        let y = g.row_scale(an, wn);
        let loss = g.sum(y);
        g.backward(loss);
        assert_eq!(a.grad().data(), &[10.0, 10.0, 20.0, 20.0]);
        assert_eq!(w.grad().data(), &[3.0, 7.0]);
    }

    #[test]
    fn clamp_blocks_gradient_outside_range() {
        let p = Parameter::new("p", Tensor::from_vec(vec![1, 3], vec![-5.0, 0.5, 5.0]));
        let mut g = Graph::new();
        let pn = g.param(&p);
        let c = g.clamp(pn, -1.0, 1.0);
        let loss = g.sum(c);
        g.backward(loss);
        assert_eq!(p.grad().data(), &[0.0, 1.0, 0.0]);
        assert_eq!(g.value(c).data(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn conv2d_known_values() {
        // 1x1x3x3 input, single 2x2 filter of ones, stride 1, no padding:
        // each output is the sum of a 2x2 patch.
        let mut g = Graph::new();
        let input = g.input(Tensor::from_vec(
            vec![1, 1, 3, 3],
            (1..=9).map(|v| v as f32).collect(),
        ));
        let weight = g.input(Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]));
        let bias = g.input(Tensor::from_vec(vec![1], vec![0.0]));
        let y = g.conv2d(input, weight, bias, 1, 0);
        assert_eq!(g.value(y).shape(), &[1, 1, 2, 2]);
        assert_eq!(g.value(y).data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv2d_padding_preserves_size() {
        let mut g = Graph::new();
        let input = g.input(Tensor::ones(vec![2, 1, 4, 4]));
        let weight = g.input(Tensor::ones(vec![3, 1, 3, 3]));
        let bias = g.input(Tensor::zeros(vec![3]));
        let y = g.conv2d(input, weight, bias, 1, 1);
        assert_eq!(g.value(y).shape(), &[2, 3, 4, 4]);
        // Center cells see the full 3x3 = 9 ones.
        assert_eq!(g.value(y).get(&[0, 0, 1, 1]), 9.0);
        // Corner cells see a 2x2 patch.
        assert_eq!(g.value(y).get(&[0, 0, 0, 0]), 4.0);
    }

    #[test]
    fn conv2d_bias_gradient_counts_outputs() {
        let w = Parameter::new("w", Tensor::ones(vec![1, 1, 2, 2]));
        let b = Parameter::new("b", Tensor::zeros(vec![1]));
        let mut g = Graph::new();
        let input = g.input(Tensor::ones(vec![1, 1, 3, 3]));
        let wn = g.param(&w);
        let bn = g.param(&b);
        let y = g.conv2d(input, wn, bn, 1, 0);
        let loss = g.sum(y);
        g.backward(loss);
        // 2x2 output positions each contribute 1 to the bias gradient.
        assert_eq!(b.grad().item(), 4.0);
        // Every weight sees 4 patches of ones.
        assert_eq!(w.grad().data(), &[4.0; 4]);
    }

    #[test]
    fn copy_params_hard_update() {
        let src = vec![Parameter::new("s", Tensor::from_slice(&[1.0, 2.0]))];
        let dst = vec![Parameter::new("d", Tensor::from_slice(&[0.0, 0.0]))];
        copy_params(&src, &dst);
        assert_eq!(dst[0].value().data(), &[1.0, 2.0]);
        assert!(!src[0].same_storage(&dst[0]));
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1, 2], vec![1.0, 2.0]));
        g.backward(x);
    }
}

//! Error types for tensor construction and checkpoint I/O.

use std::error::Error;
use std::fmt;
use std::io;

/// Error constructing or reshaping a [`Tensor`](crate::Tensor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The product of the dimensions does not match the data length.
    ShapeDataMismatch {
        /// The requested shape.
        shape: Vec<usize>,
        /// The actual number of elements supplied.
        len: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { shape, len } => write!(
                f,
                "shape {shape:?} requires {} elements but {len} were supplied",
                shape.iter().product::<usize>()
            ),
        }
    }
}

impl Error for TensorError {}

/// Error while saving or loading model parameters.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file does not start with the expected magic bytes.
    BadMagic,
    /// The file's parameter count or shapes do not match the model.
    ParameterMismatch {
        /// What the model expects.
        expected: String,
        /// What the file contains.
        found: String,
    },
    /// The file ended before all declared data was read.
    Truncated,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The CRC32 footer does not match the file contents.
    CorruptedCrc {
        /// CRC computed over the bytes actually read.
        computed: u32,
        /// CRC stored in the footer.
        stored: u32,
    },
    /// A section the reader requires is absent from the file.
    MissingSection(String),
    /// A structural invariant of the format is violated (bad lengths,
    /// impossible counts, non-UTF-8 names, ...).
    Malformed(String),
    /// The checkpoint was written under a different GEMM kernel mode
    /// (strict vs fast-math) than the one active in this process. Resuming
    /// across modes would silently diverge from both baselines, so the
    /// trainer refuses instead of falling back to a fresh run.
    KernelModeMismatch {
        /// Mode recorded in the checkpoint (`strict` or `fast`).
        saved: String,
        /// Mode active in the resuming process.
        active: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a hero checkpoint file"),
            CheckpointError::ParameterMismatch { expected, found } => {
                write!(f, "checkpoint mismatch: expected {expected}, found {found}")
            }
            CheckpointError::Truncated => write!(f, "checkpoint file is truncated"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "checkpoint format version {v} is not supported")
            }
            CheckpointError::CorruptedCrc { computed, stored } => write!(
                f,
                "checkpoint crc mismatch: computed {computed:#010x}, stored {stored:#010x}"
            ),
            CheckpointError::MissingSection(name) => {
                write!(f, "checkpoint is missing required section `{name}`")
            }
            CheckpointError::Malformed(what) => write!(f, "malformed checkpoint: {what}"),
            CheckpointError::KernelModeMismatch { saved, active } => write!(
                f,
                "checkpoint was written under kernel mode `{saved}` but this run uses \
                 `{active}`; rerun with `--kernel-mode {saved}` or start a fresh run"
            ),
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_error_display_mentions_counts() {
        let e = TensorError::ShapeDataMismatch {
            shape: vec![2, 3],
            len: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains('6') && msg.contains('5'), "{msg}");
    }

    #[test]
    fn checkpoint_error_wraps_io() {
        let e = CheckpointError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
        assert_send_sync::<CheckpointError>();
    }
}

//! Neural-network building blocks on top of the autodiff [`Graph`].
//!
//! Layers own [`Parameter`]s; their `forward` methods record ops on a
//! caller-supplied [`Graph`]. The [`Module`] trait exposes the parameter
//! list so optimizers, target-network updates, and checkpointing can treat
//! every network uniformly.

use rand::Rng;

use crate::graph::{Graph, NodeId, Parameter};
use crate::tensor::{Tensor, TensorPool};

/// Anything that owns trainable parameters.
pub trait Module {
    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<Parameter>;

    /// Total number of scalar weights.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(Parameter::len).sum()
    }

    /// Zeroes the gradient of every parameter.
    fn zero_grad(&self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }
}

/// Activation applied between layers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Activation {
    /// `max(x, 0)` — the default hidden activation.
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No activation (identity).
    Identity,
}

impl Activation {
    /// Records this activation applied to `x` on the graph.
    pub fn apply(self, g: &mut Graph, x: NodeId) -> NodeId {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Sigmoid => g.sigmoid(x),
            Activation::Identity => x,
        }
    }
}

/// Xavier/Glorot uniform initialization bound for a `fan_in × fan_out`
/// weight matrix.
pub fn xavier_bound(fan_in: usize, fan_out: usize) -> f32 {
    (6.0 / (fan_in + fan_out) as f32).sqrt()
}

/// He (Kaiming) normal standard deviation for a `fan_in` weight matrix.
pub fn he_std(fan_in: usize) -> f32 {
    (2.0 / fan_in as f32).sqrt()
}

/// A fully-connected layer `y = x W + b` with `W: [in, out]`, `b: [out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Parameter,
    bias: Parameter,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new<R: Rng + ?Sized>(name: &str, in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let bound = xavier_bound(in_dim, out_dim);
        let weight = Parameter::new(
            format!("{name}.weight"),
            Tensor::uniform(vec![in_dim, out_dim], -bound, bound, rng),
        );
        let bias = Parameter::new(format!("{name}.bias"), Tensor::zeros(vec![out_dim]));
        Self {
            weight,
            bias,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Records `x W + b` for a `[batch, in]` node.
    ///
    /// # Panics
    ///
    /// Panics when `x` is not `[batch, in_dim]`.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let w = g.param(&self.weight);
        let b = g.param(&self.bias);
        let xw = g.matmul(x, w);
        g.add_bias(xw, b)
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<Parameter> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// A 2D convolution layer over `[N, C, H, W]` inputs.
#[derive(Debug, Clone)]
pub struct Conv2d {
    weight: Parameter,
    bias: Parameter,
    stride: usize,
    padding: usize,
}

impl Conv2d {
    /// Creates a conv layer with He-normal weights and zero bias.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_channels * kernel * kernel;
        let weight = Parameter::new(
            format!("{name}.weight"),
            Tensor::randn(
                vec![out_channels, in_channels, kernel, kernel],
                he_std(fan_in),
                rng,
            ),
        );
        let bias = Parameter::new(format!("{name}.bias"), Tensor::zeros(vec![out_channels]));
        Self {
            weight,
            bias,
            stride,
            padding,
        }
    }

    /// Records the convolution of a `[N, C, H, W]` node.
    ///
    /// # Panics
    ///
    /// Panics on rank/channel mismatch (see [`Graph::conv2d`]).
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let w = g.param(&self.weight);
        let b = g.param(&self.bias);
        g.conv2d(x, w, b, self.stride, self.padding)
    }
}

impl Module for Conv2d {
    fn parameters(&self) -> Vec<Parameter> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// A multi-layer perceptron: `Linear → act → … → Linear` with an identity
/// output head.
///
/// # Examples
///
/// ```
/// use hero_autograd::nn::{Mlp, Activation, Module};
/// use hero_autograd::{Graph, Tensor};
/// use rand::{SeedableRng, rngs::StdRng};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let net = Mlp::new("q", &[4, 32, 2], Activation::Relu, &mut rng);
/// let mut g = Graph::new();
/// let x = g.input(Tensor::zeros(vec![3, 4]));
/// let y = net.forward(&mut g, x);
/// assert_eq!(g.value(y).shape(), &[3, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Creates an MLP from a list of layer widths (`dims[0]` is the input
    /// width, `dims.last()` the output width).
    ///
    /// # Panics
    ///
    /// Panics when fewer than two widths are supplied.
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        dims: &[usize],
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least input and output widths");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(&format!("{name}.l{i}"), w[0], w[1], rng))
            .collect();
        Self { layers, activation }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].out_dim()
    }

    /// Records the full forward pass for a `[batch, in]` node.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, h);
            if i < last {
                h = self.activation.apply(g, h);
            }
        }
        h
    }

    /// Convenience inference: runs a single `[batch, in]` tensor through a
    /// throwaway graph and returns the output tensor.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut g = Graph::new();
        let xn = g.input(x.clone());
        let y = self.forward(&mut g, xn);
        g.value(y).clone()
    }

    /// Inference-only forward pass: no graph, no tape, no gradient buffers.
    ///
    /// Activations are checked out of `pool` and returned as each layer
    /// completes, so a warm pool makes repeated calls allocation-free
    /// (hand the returned tensor's buffer back with
    /// `pool.put(out.into_data())` to keep it that way). Every arithmetic
    /// step matches the graph ops exactly — the same [`matmul_into`]
    /// kernel dispatch, the same `x·W + b` addition order, the same
    /// activation formulas — so under strict kernels the result is bitwise
    /// identical to [`Mlp::infer`], and because each output element of the
    /// matmul accumulates independently, row `r` of a `[batch, in]` call
    /// is bitwise identical to a `[1, in]` call on that row alone.
    ///
    /// [`matmul_into`]: crate::tensor::matmul_into
    ///
    /// # Panics
    ///
    /// Panics when `x` is not `[batch, in_dim]`.
    pub fn infer_in(&self, x: &Tensor, pool: &mut TensorPool) -> Tensor {
        assert_eq!(x.rank(), 2, "mlp input must be rank-2");
        assert_eq!(x.shape()[1], self.in_dim(), "mlp input width mismatch");
        let m = x.shape()[0];
        let last = self.layers.len() - 1;
        let mut cur: Option<Tensor> = None;
        for (i, layer) in self.layers.iter().enumerate() {
            let input = cur.as_ref().unwrap_or(x);
            let n = layer.out_dim;
            let mut data = pool.take(m * n);
            {
                let w = layer.weight.value();
                crate::tensor::matmul_into(input, &w, &mut data);
            }
            {
                let b = layer.bias.value();
                let bv = b.data();
                for r in 0..m {
                    let row = &mut data[r * n..(r + 1) * n];
                    for (o, &bj) in row.iter_mut().zip(bv) {
                        *o += bj;
                    }
                }
            }
            if i < last {
                match self.activation {
                    Activation::Relu => data.iter_mut().for_each(|v| *v = v.max(0.0)),
                    Activation::Tanh => data.iter_mut().for_each(|v| *v = v.tanh()),
                    Activation::Sigmoid => {
                        data.iter_mut().for_each(|v| *v = crate::graph::sigmoid(*v));
                    }
                    Activation::Identity => {}
                }
            }
            if let Some(prev) = cur.take() {
                pool.put(prev.into_data());
            }
            cur = Some(Tensor::from_vec(vec![m, n], data));
        }
        cur.expect("an MLP has at least one layer")
    }
}

impl Module for Mlp {
    fn parameters(&self) -> Vec<Parameter> {
        self.layers.iter().flat_map(Module::parameters).collect()
    }
}

/// A small convolutional encoder for the simulator's occupancy-grid
/// "camera" images: two stride-2 conv layers followed by a flatten, mapping
/// `[N, C, H, W]` to `[N, out_dim]` features.
#[derive(Debug, Clone)]
pub struct ConvEncoder {
    conv1: Conv2d,
    conv2: Conv2d,
    channels: (usize, usize, usize),
    input_hw: (usize, usize),
    out_dim: usize,
}

impl ConvEncoder {
    /// Creates an encoder for `[N, in_channels, h, w]` inputs.
    ///
    /// # Panics
    ///
    /// Panics when `h` or `w` is smaller than 4 (two stride-2 3×3 convs
    /// need at least that).
    pub fn new<R: Rng + ?Sized>(
        name: &str,
        in_channels: usize,
        h: usize,
        w: usize,
        rng: &mut R,
    ) -> Self {
        assert!(h >= 4 && w >= 4, "ConvEncoder needs inputs of at least 4x4");
        let c1 = 4;
        let c2 = 8;
        let conv1 = Conv2d::new(&format!("{name}.conv1"), in_channels, c1, 3, 2, 1, rng);
        let conv2 = Conv2d::new(&format!("{name}.conv2"), c1, c2, 3, 2, 1, rng);
        let h1 = (h + 2 - 3) / 2 + 1;
        let w1 = (w + 2 - 3) / 2 + 1;
        let h2 = (h1 + 2 - 3) / 2 + 1;
        let w2 = (w1 + 2 - 3) / 2 + 1;
        Self {
            conv1,
            conv2,
            channels: (in_channels, c1, c2),
            input_hw: (h, w),
            out_dim: c2 * h2 * w2,
        }
    }

    /// Width of the flattened feature vector.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Expected input channel count.
    pub fn in_channels(&self) -> usize {
        self.channels.0
    }

    /// Expected input spatial size `(h, w)`.
    pub fn input_hw(&self) -> (usize, usize) {
        self.input_hw
    }

    /// Records the encoder on a `[N, C, H, W]` node, returning `[N, out_dim]`.
    pub fn forward(&self, g: &mut Graph, x: NodeId) -> NodeId {
        let h1 = self.conv1.forward(g, x);
        let h1 = g.relu(h1);
        let h2 = self.conv2.forward(g, h1);
        let h2 = g.relu(h2);
        let batch = g.value(h2).shape()[0];
        g.reshape(h2, vec![batch, self.out_dim])
    }
}

impl Module for ConvEncoder {
    fn parameters(&self) -> Vec<Parameter> {
        let mut p = self.conv1.parameters();
        p.extend(self.conv2.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes_and_param_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let l = Linear::new("l", 3, 5, &mut rng);
        assert_eq!(l.num_parameters(), 3 * 5 + 5);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(vec![7, 3]));
        let y = l.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[7, 5]);
    }

    #[test]
    fn mlp_trains_toward_constant_target() {
        // One gradient step on MSE must reduce the loss.
        let mut rng = StdRng::seed_from_u64(2);
        let net = Mlp::new("n", &[2, 16, 1], Activation::Tanh, &mut rng);
        let x = Tensor::from_vec(vec![4, 2], vec![0.1, 0.2, -0.3, 0.4, 0.5, -0.6, 0.7, 0.8]);
        let target = Tensor::from_vec(vec![4, 1], vec![1.0, -1.0, 0.5, 0.0]);

        let loss_of = |net: &Mlp| {
            let mut g = Graph::new();
            let xn = g.input(x.clone());
            let t = g.input(target.clone());
            let y = net.forward(&mut g, xn);
            let d = g.sub(y, t);
            let sq = g.mul(d, d);
            let l = g.mean(sq);
            g.value(l).item()
        };

        let before = loss_of(&net);
        let mut g = Graph::new();
        let xn = g.input(x.clone());
        let t = g.input(target.clone());
        let y = net.forward(&mut g, xn);
        let d = g.sub(y, t);
        let sq = g.mul(d, d);
        let l = g.mean(sq);
        g.backward(l);
        for p in net.parameters() {
            p.apply_update(|v, grad| {
                for (vi, gi) in v.data_mut().iter_mut().zip(grad.data()) {
                    *vi -= 0.5 * gi;
                }
            });
        }
        let after = loss_of(&net);
        assert!(after < before, "loss did not decrease: {before} -> {after}");
    }

    #[test]
    fn mlp_infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = Mlp::new("n", &[3, 8, 2], Activation::Relu, &mut rng);
        let x = Tensor::from_vec(vec![1, 3], vec![0.3, -0.2, 0.9]);
        let via_infer = net.infer(&x);
        let mut g = Graph::new();
        let xn = g.input(x);
        let y = net.forward(&mut g, xn);
        assert_eq!(&via_infer, g.value(y));
    }

    #[test]
    fn conv_encoder_output_dim_consistent() {
        let mut rng = StdRng::seed_from_u64(4);
        let enc = ConvEncoder::new("e", 1, 12, 12, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Tensor::zeros(vec![2, 1, 12, 12]));
        let y = enc.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, enc.out_dim()]);
    }

    #[test]
    fn activations_apply() {
        let mut g = Graph::new();
        let x = g.input(Tensor::from_vec(vec![1, 2], vec![-1.0, 1.0]));
        let relu = Activation::Relu.apply(&mut g, x);
        assert_eq!(g.value(relu).data(), &[0.0, 1.0]);
        let x2 = g.input(Tensor::from_vec(vec![1, 1], vec![0.0]));
        let sig = Activation::Sigmoid.apply(&mut g, x2);
        assert_eq!(g.value(sig).data(), &[0.5]);
        assert_eq!(Activation::Identity.apply(&mut g, x2), x2);
    }

    #[test]
    fn xavier_and_he_bounds_positive() {
        assert!(xavier_bound(10, 20) > 0.0);
        assert!(he_std(10) > 0.0);
    }
}

//! Dense, row-major, `f32` tensors.
//!
//! [`Tensor`] is the value type flowing through the autodiff [`Graph`]: a
//! shape plus a flat `Vec<f32>` in row-major (C) order. It is deliberately
//! simple — the HERO networks are tiny (hidden dimension 32 in the paper's
//! Table I) so clarity beats cleverness here.
//!
//! [`Graph`]: crate::graph::Graph

use std::fmt;

use rand::Rng;

use crate::error::TensorError;

/// A dense, row-major `f32` tensor of arbitrary rank.
///
/// # Examples
///
/// ```
/// use hero_autograd::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.get(&[1, 2]), 6.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and flat row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when the product of the
    /// dimensions does not equal `data.len()`.
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape,
                len: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor from a shape and flat row-major data.
    ///
    /// # Panics
    ///
    /// Panics when the product of the dimensions does not equal
    /// `data.len()`. Use [`Tensor::new`] for a fallible variant.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        Self::new(shape, data).expect("tensor shape must match data length")
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// Creates a `[rows, cols]` tensor from nested rows.
    ///
    /// # Panics
    ///
    /// Panics when rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            shape: vec![n_rows, n_cols],
            data,
        }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: Vec<usize>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: vec![],
            data: vec![value],
        }
    }

    /// A tensor with entries drawn i.i.d. from `N(0, std^2)` using the
    /// Box–Muller transform (keeps the dependency surface to `rand` alone).
    pub fn randn<R: Rng + ?Sized>(shape: Vec<usize>, std: f32, rng: &mut R) -> Self {
        let len: usize = shape.iter().product();
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mag * theta.cos() * std);
            if data.len() < len {
                data.push(mag * theta.sin() * std);
            }
        }
        Self { shape, data }
    }

    /// A tensor with entries drawn i.i.d. from `U(lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(shape: Vec<usize>, lo: f32, hi: f32, rng: &mut R) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.gen_range(lo..hi)).collect();
        Self { shape, data }
    }

    /// A `[rows, classes]` one-hot matrix: row `i` has a single `1.0` at
    /// column `indices[i]`.
    ///
    /// # Panics
    ///
    /// Panics when any index is `>= classes`.
    pub fn one_hot(indices: &[usize], classes: usize) -> Self {
        let mut data = vec![0.0; indices.len() * classes];
        for (row, &idx) in indices.iter().enumerate() {
            assert!(idx < classes, "one-hot index {idx} out of range {classes}");
            data[row * classes + idx] = 1.0;
        }
        Self {
            shape: vec![indices.len(), classes],
            data,
        }
    }

    /// The shape as a slice of dimension sizes.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The rank (number of dimensions). Scalars have rank 0.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires exactly one element");
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank or any coordinate is out of bounds.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let flat = self.flat_index(index);
        self.data[flat] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (dim, (&i, &size)) in index.iter().zip(&self.shape).enumerate() {
            assert!(i < size, "index {i} out of bounds for dim {dim} ({size})");
            flat = flat * size + i;
        }
        flat
    }

    /// Returns a copy with a new shape holding the same number of elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when the element counts
    /// differ.
    pub fn reshaped(&self, shape: Vec<usize>) -> Result<Self, TensorError> {
        Self::new(shape, self.data.clone())
    }

    /// Row `r` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank-2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Number of rows of a rank-2 tensor (or the batch dimension of any
    /// tensor of rank >= 1).
    ///
    /// # Panics
    ///
    /// Panics on scalars.
    pub fn rows(&self) -> usize {
        assert!(!self.shape.is_empty(), "rows() requires rank >= 1");
        self.shape[0]
    }

    /// Index of the maximum element of a rank-1 tensor or of one row of a
    /// rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`0.0` for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest absolute element (`0.0` for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Whether every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// In-place element-wise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale: `self *= factor`.
    pub fn scale_assign(&mut self, factor: f32) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Resets every element to zero, keeping the shape.
    pub fn zero_(&mut self) {
        for a in &mut self.data {
            *a = 0.0;
        }
    }

    /// Matrix transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank-2.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transposed() requires a rank-2 tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(vec![0])
    }
}

/// A bucketed free-list of `f32` buffers keyed by capacity.
///
/// The autodiff [`Graph`](crate::graph::Graph) checks buffers out for node
/// values and gradients and returns them on `reset`, so steady-state
/// training iterations reuse the same allocations minibatch after
/// minibatch. The pool never allocates itself — a `take` that finds no
/// buffer of sufficient capacity falls back to a fresh `Vec` and counts a
/// miss, so `stats()` going quiet is the signal that the arena has warmed
/// up. Total held memory is bounded by the peak working set of the graphs
/// that feed it.
#[derive(Debug, Default)]
pub struct TensorPool {
    buckets: std::collections::BTreeMap<usize, Vec<Vec<f32>>>,
    hits: u64,
    misses: u64,
}

impl TensorPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a cleared buffer with capacity for at least `len`
    /// elements, preferring the smallest adequate bucket.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        for (_, bucket) in self.buckets.range_mut(len..) {
            if let Some(mut v) = bucket.pop() {
                self.hits += 1;
                v.clear();
                return v;
            }
        }
        self.misses += 1;
        Vec::with_capacity(len)
    }

    /// Returns a buffer to the pool for reuse. Each capacity class keeps at
    /// most [`TensorPool::MAX_PER_BUCKET`] buffers; surplus buffers are
    /// dropped. Without the cap, a graph whose inputs are cloned in fresh
    /// every minibatch returns more buffers per reset than the next
    /// forward pass checks out, and the pool grows without bound.
    pub fn put(&mut self, mut v: Vec<f32>) {
        let cap = v.capacity();
        if cap == 0 {
            return;
        }
        let bucket = self.buckets.entry(cap).or_default();
        if bucket.len() < Self::MAX_PER_BUCKET {
            v.clear();
            bucket.push(v);
        }
    }

    /// Upper bound on buffers retained per capacity class.
    pub const MAX_PER_BUCKET: usize = 8;

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Total buffers currently held across all capacity classes — the
    /// quantity that must plateau across minibatches for the arena to be
    /// leak-free.
    pub fn held(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_SHOWN: usize = 8;
        write!(f, "Tensor{:?} [", self.shape)?;
        for (i, v) in self.data.iter().take(MAX_SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > MAX_SHOWN {
            write!(f, ", … {} more", self.data.len() - MAX_SHOWN)?;
        }
        write!(f, "]")
    }
}

/// Rows of A processed per register tile of the dense kernel.
const MR: usize = 4;
/// Output columns per register tile: two 512-bit (or eight 128-bit)
/// vectors wide, so an `MR`×`NR` tile's accumulators live entirely in
/// vector registers across the whole `p` loop.
const NR: usize = 32;

std::thread_local! {
    /// Scratch buffer for packed panels of B, reused across calls so the
    /// kernel allocates nothing after warm-up.
    static PACK: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Whether the AVX-512F instantiations of the register-tiled kernels are
/// usable on this CPU. Checked once; the kernels themselves are plain Rust
/// compiled under `#[target_feature]`, so lane width is the only difference
/// between the two instantiations — results are bitwise identical (strict
/// FP: no FMA contraction, and each output element keeps its ascending-`p`
/// accumulation chain in every lane).
#[cfg(target_arch = "x86_64")]
fn avx512_available() -> bool {
    static AVX512: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX512.get_or_init(|| std::arch::is_x86_feature_detected!("avx512f"))
}

#[cfg(not(target_arch = "x86_64"))]
fn avx512_available() -> bool {
    false
}

/// Defines one instantiation of the register-tiled `C = A·B` driver.
///
/// The body is plain safe Rust over fixed-size `MR`×`NR` tiles; the
/// `#[target_feature]` variant only widens the vectors the autovectorizer
/// may use. Accumulators live in registers for the entire `p` loop (the
/// old implementation round-tripped partial sums through memory every
/// iteration, which capped it at store throughput). Edge rows/columns fall
/// back to the same ascending-`p` scalar loops, so every element is
/// accumulated in the same order no matter which path computed it.
macro_rules! define_matmul_nn {
    ($fname:ident $(, #[$attr:meta])?) => {
        $(#[$attr])?
        unsafe fn $fname(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
            let mt = m - m % MR;
            let nt = n - n % NR;
            for i in (0..mt).step_by(MR) {
                for j0 in (0..nt).step_by(NR) {
                    let mut acc = [[0.0f32; NR]; MR];
                    for p in 0..k {
                        let b_row: &[f32; NR] =
                            (&b[p * n + j0..p * n + j0 + NR]).try_into().unwrap();
                        for r in 0..MR {
                            let a_rp = a[(i + r) * k + p];
                            for j in 0..NR {
                                acc[r][j] += a_rp * b_row[j];
                            }
                        }
                    }
                    for (r, row) in acc.iter().enumerate() {
                        out[(i + r) * n + j0..(i + r) * n + j0 + NR].copy_from_slice(row);
                    }
                }
                // Column tail: same ascending-p axpy, scalar width.
                if nt < n {
                    for p in 0..k {
                        let b_row = &b[p * n + nt..(p + 1) * n];
                        for r in 0..MR {
                            let a_rp = a[(i + r) * k + p];
                            let o_row = &mut out[(i + r) * n + nt..(i + r + 1) * n];
                            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                                *o += a_rp * bv;
                            }
                        }
                    }
                }
            }
            // Row tail: naive ikj rows.
            for i in mt..m {
                for p in 0..k {
                    let a_ip = a[i * k + p];
                    let b_row = &b[p * n..(p + 1) * n];
                    let o_row = &mut out[i * n..(i + 1) * n];
                    for (o, &bv) in o_row.iter_mut().zip(b_row) {
                        *o += a_ip * bv;
                    }
                }
            }
        }
    };
}

define_matmul_nn!(matmul_nn_portable);
#[cfg(target_arch = "x86_64")]
define_matmul_nn!(matmul_nn_avx512, #[target_feature(enable = "avx512f")]);

/// Defines one instantiation of the register-tiled `C = Aᵀ·B` driver
/// (`a` is `[k, m]`). Identical tile structure to the NN driver; only the
/// A-element addressing differs (column-major walk, which is contiguous
/// per `p` — no transpose materialization needed).
macro_rules! define_matmul_tn {
    ($fname:ident $(, #[$attr:meta])?) => {
        $(#[$attr])?
        unsafe fn $fname(a: &[f32], b: &[f32], out: &mut [f32], k: usize, m: usize, n: usize) {
            let mt = m - m % MR;
            let nt = n - n % NR;
            for i in (0..mt).step_by(MR) {
                for j0 in (0..nt).step_by(NR) {
                    let mut acc = [[0.0f32; NR]; MR];
                    for p in 0..k {
                        let b_row: &[f32; NR] =
                            (&b[p * n + j0..p * n + j0 + NR]).try_into().unwrap();
                        let a_col: &[f32; MR] =
                            (&a[p * m + i..p * m + i + MR]).try_into().unwrap();
                        for r in 0..MR {
                            let a_rp = a_col[r];
                            for j in 0..NR {
                                acc[r][j] += a_rp * b_row[j];
                            }
                        }
                    }
                    for (r, row) in acc.iter().enumerate() {
                        out[(i + r) * n + j0..(i + r) * n + j0 + NR].copy_from_slice(row);
                    }
                }
                if nt < n {
                    for p in 0..k {
                        let b_row = &b[p * n + nt..(p + 1) * n];
                        for r in 0..MR {
                            let a_rp = a[p * m + i + r];
                            let o_row = &mut out[(i + r) * n + nt..(i + r + 1) * n];
                            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                                *o += a_rp * bv;
                            }
                        }
                    }
                }
            }
            for p in 0..k {
                let b_row = &b[p * n..(p + 1) * n];
                for i in mt..m {
                    let a_ip = a[p * m + i];
                    let o_row = &mut out[i * n..(i + 1) * n];
                    for (o, &bv) in o_row.iter_mut().zip(b_row) {
                        *o += a_ip * bv;
                    }
                }
            }
        }
    };
}

define_matmul_tn!(matmul_tn_portable);
#[cfg(target_arch = "x86_64")]
define_matmul_tn!(matmul_tn_avx512, #[target_feature(enable = "avx512f")]);

/// Register-tiled matrix multiplication used by the graph ops. `a` is
/// `[m, k]`, `b` is `[k, n]`; the result is `[m, n]`.
///
/// `MR`×`NR` output tiles are accumulated entirely in vector registers
/// across the whole inner dimension, so B is loaded once per `MR` rows of A
/// and the outputs are stored exactly once (the naive `ikj` loop stores
/// every partial sum). On x86-64 with AVX-512F an identically-shaped
/// instantiation with 512-bit lanes is dispatched at runtime. Every output
/// element is accumulated over `p` in strictly ascending order in every
/// path, so results are bit-identical to the naive kernel on dense inputs.
///
/// # Panics
///
/// Panics when either operand is not rank-2 or the inner dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Vec::new();
    matmul_into(a, b, &mut out);
    Tensor {
        shape: vec![a.shape[0], b.shape[1]],
        data: out,
    }
}

/// [`matmul`] writing into a caller-supplied buffer (cleared and resized),
/// so pooled graphs can reuse allocations across minibatches.
///
/// # Panics
///
/// Panics when either operand is not rank-2 or the inner dimensions differ.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Vec<f32>) {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.shape[0], a.shape[1]);
    let (k2, n) = (b.shape[0], b.shape[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    out.clear();
    out.resize(m * n, 0.0);
    #[cfg(feature = "fast-math")]
    if crate::fastmath::kernel_mode() == crate::fastmath::KernelMode::Fast {
        crate::fastmath::gemm(crate::fastmath::Layout::Nn, &a.data, &b.data, out, m, k, n);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx512_available() {
        // SAFETY: avx512f support was verified at runtime.
        unsafe { matmul_nn_avx512(&a.data, &b.data, out, m, k, n) };
        return;
    }
    // SAFETY: the portable instantiation carries no target-feature
    // requirement; `unsafe` only mirrors the macro-shared signature.
    unsafe { matmul_nn_portable(&a.data, &b.data, out, m, k, n) };
}

/// `A·Bᵀ` without materializing the transpose: `a` is `[m, k]`, `b` is
/// `[n, k]`; the result is `[m, n]`. Each output element is a dot product
/// of two contiguous rows, accumulated over `p` in ascending order —
/// bit-identical to `matmul(a, &b.transposed())` on dense inputs.
///
/// # Panics
///
/// Panics when either operand is not rank-2 or the `k` dimensions differ.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Vec::new();
    matmul_nt_into(a, b, &mut out);
    Tensor {
        shape: vec![a.shape[0], b.shape[0]],
        data: out,
    }
}

/// [`matmul_nt`] writing into a caller-supplied buffer (cleared and resized).
///
/// # Panics
///
/// Panics when either operand is not rank-2 or the `k` dimensions differ.
pub fn matmul_nt_into(a: &Tensor, b: &Tensor, out: &mut Vec<f32>) {
    assert_eq!(a.rank(), 2, "matmul_nt lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul_nt rhs must be rank-2");
    let (m, k) = (a.shape[0], a.shape[1]);
    let (n, k2) = (b.shape[0], b.shape[1]);
    assert_eq!(k, k2, "matmul_nt inner dimension mismatch: {k} vs {k2}");
    out.clear();
    out.resize(m * n, 0.0);
    #[cfg(feature = "fast-math")]
    if crate::fastmath::kernel_mode() == crate::fastmath::KernelMode::Fast {
        // The fast tier packs B's rows directly into NR-column panels —
        // no transpose materialization even in NT form.
        crate::fastmath::gemm(crate::fastmath::Layout::Nt, &a.data, &b.data, out, m, k, n);
        return;
    }
    if k == 0 {
        return;
    }
    // Dot-product form (`out[i][j] = a_row_i · b_row_j`) defeats strict-FP
    // vectorization (a horizontal reduction would reorder the sum), so
    // transpose B into the thread-local scratch panel once and run the
    // axpy-structured NN kernel instead. B here is the small operand in
    // every graph use (a weight matrix or a loss gradient), so the pack is
    // cheap relative to the multiply. Accumulation order per output element
    // stays ascending in `p` — bit-identical to the dot-product form.
    PACK.with(|pack| {
        let mut bt = pack.borrow_mut();
        bt.clear();
        bt.resize(k * n, 0.0);
        for (j, row) in b.data.chunks_exact(k).enumerate() {
            for (p, &v) in row.iter().enumerate() {
                bt[p * n + j] = v;
            }
        }
        #[cfg(target_arch = "x86_64")]
        if avx512_available() {
            // SAFETY: avx512f support was verified at runtime.
            unsafe { matmul_nn_avx512(&a.data, &bt, out, m, k, n) };
            return;
        }
        // SAFETY: no target-feature requirement on the portable instance.
        unsafe { matmul_nn_portable(&a.data, &bt, out, m, k, n) };
    });
}

/// `Aᵀ·B` without materializing the transpose: `a` is `[k, m]`, `b` is
/// `[k, n]`; the result is `[m, n]`. Accumulation over `p` is ascending per
/// output element — bit-identical to `matmul(&a.transposed(), b)` on dense
/// inputs.
///
/// # Panics
///
/// Panics when either operand is not rank-2 or the `k` dimensions differ.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Vec::new();
    matmul_tn_into(a, b, &mut out);
    Tensor {
        shape: vec![a.shape[1], b.shape[1]],
        data: out,
    }
}

/// [`matmul_tn`] writing into a caller-supplied buffer (cleared and resized).
///
/// # Panics
///
/// Panics when either operand is not rank-2 or the `k` dimensions differ.
pub fn matmul_tn_into(a: &Tensor, b: &Tensor, out: &mut Vec<f32>) {
    assert_eq!(a.rank(), 2, "matmul_tn lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul_tn rhs must be rank-2");
    let (k, m) = (a.shape[0], a.shape[1]);
    let (k2, n) = (b.shape[0], b.shape[1]);
    assert_eq!(k, k2, "matmul_tn inner dimension mismatch: {k} vs {k2}");
    out.clear();
    out.resize(m * n, 0.0);
    #[cfg(feature = "fast-math")]
    if crate::fastmath::kernel_mode() == crate::fastmath::KernelMode::Fast {
        crate::fastmath::gemm(crate::fastmath::Layout::Tn, &a.data, &b.data, out, m, k, n);
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx512_available() {
        // SAFETY: avx512f support was verified at runtime.
        unsafe { matmul_tn_avx512(&a.data, &b.data, out, k, m, n) };
        return;
    }
    // SAFETY: no target-feature requirement on the portable instance.
    unsafe { matmul_tn_portable(&a.data, &b.data, out, k, m, n) };
}

/// The pre-tiling naive `ikj` kernel with the per-element zero-skip on the
/// left operand. Only worthwhile when `a` is genuinely sparse (e.g. one-hot
/// selector matrices); on dense activations the branch costs more than it
/// saves, which is why the graph ops use [`matmul`] instead. Also serves as
/// the reference baseline for kernel benchmarks.
///
/// # Panics
///
/// Panics when either operand is not rank-2 or the inner dimensions differ.
pub fn matmul_sparse_lhs(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.shape[0], a.shape[1]);
    let (k2, n) = (b.shape[0], b.shape[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let a_ip = a.data[i * k + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b.data[p * n..(p + 1) * n];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += a_ip * bv;
            }
        }
    }
    Tensor {
        shape: vec![m, n],
        data: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_rejects_mismatched_data() {
        assert!(Tensor::new(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::new(vec![2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn scalar_roundtrip() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.item(), 3.5);
    }

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|v| v as f32).collect());
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[0, 2]), 2.0);
        assert_eq!(t.get(&[1, 0]), 3.0);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn one_hot_rows() {
        let t = Tensor::one_hot(&[2, 0], 3);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_out_of_range() {
        let _ = Tensor::one_hot(&[3], 3);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_variants_agree_with_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 64, 4), (17, 33, 65), (130, 70, 9)] {
            let a = Tensor::randn(vec![m, k], 1.0, &mut rng);
            let b = Tensor::randn(vec![k, n], 1.0, &mut rng);
            let reference = matmul_sparse_lhs(&a, &b);
            assert_eq!(matmul(&a, &b), reference, "tiled mismatch at {m}x{k}x{n}");
            assert_eq!(
                matmul_nt(&a, &b.transposed()),
                reference,
                "nt mismatch at {m}x{k}x{n}"
            );
            assert_eq!(
                matmul_tn(&a.transposed(), &b),
                reference,
                "tn mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn matmul_into_reuses_buffer() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let mut buf = Vec::with_capacity(16);
        let ptr = buf.as_ptr();
        matmul_into(&a, &b, &mut buf);
        assert_eq!(buf, vec![58.0, 64.0, 139.0, 154.0]);
        assert_eq!(buf.as_ptr(), ptr, "matmul_into must not reallocate a large-enough buffer");
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let id = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &id), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![2, 3], (0..6).map(|v| v as f32).collect());
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed().shape(), &[3, 2]);
        assert_eq!(a.transposed().get(&[2, 1]), a.get(&[1, 2]));
    }

    #[test]
    fn randn_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(vec![10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::uniform(vec![1000], -0.5, 0.25, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..0.25).contains(&v)));
    }

    #[test]
    fn argmax_picks_largest() {
        let t = Tensor::from_slice(&[0.1, -3.0, 7.5, 2.0]);
        assert_eq!(t.argmax(), 2);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        a.add_assign(&Tensor::from_slice(&[3.0, 4.0]));
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[8.0, 12.0]);
    }

    #[test]
    fn debug_is_never_empty() {
        let rendered = format!("{:?}", Tensor::zeros(vec![0]));
        assert!(!rendered.is_empty());
    }
}

//! Dense, row-major, `f32` tensors.
//!
//! [`Tensor`] is the value type flowing through the autodiff [`Graph`]: a
//! shape plus a flat `Vec<f32>` in row-major (C) order. It is deliberately
//! simple — the HERO networks are tiny (hidden dimension 32 in the paper's
//! Table I) so clarity beats cleverness here.
//!
//! [`Graph`]: crate::graph::Graph

use std::fmt;

use rand::Rng;

use crate::error::TensorError;

/// A dense, row-major `f32` tensor of arbitrary rank.
///
/// # Examples
///
/// ```
/// use hero_autograd::Tensor;
///
/// let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.get(&[1, 2]), 6.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and flat row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when the product of the
    /// dimensions does not equal `data.len()`.
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, TensorError> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(TensorError::ShapeDataMismatch {
                shape,
                len: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor from a shape and flat row-major data.
    ///
    /// # Panics
    ///
    /// Panics when the product of the dimensions does not equal
    /// `data.len()`. Use [`Tensor::new`] for a fallible variant.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Self {
        Self::new(shape, data).expect("tensor shape must match data length")
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// Creates a `[rows, cols]` tensor from nested rows.
    ///
    /// # Panics
    ///
    /// Panics when rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            shape: vec![n_rows, n_cols],
            data,
        }
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// A tensor filled with ones.
    pub fn ones(shape: Vec<usize>) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: vec![],
            data: vec![value],
        }
    }

    /// A tensor with entries drawn i.i.d. from `N(0, std^2)` using the
    /// Box–Muller transform (keeps the dependency surface to `rand` alone).
    pub fn randn<R: Rng + ?Sized>(shape: Vec<usize>, std: f32, rng: &mut R) -> Self {
        let len: usize = shape.iter().product();
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let mag = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(mag * theta.cos() * std);
            if data.len() < len {
                data.push(mag * theta.sin() * std);
            }
        }
        Self { shape, data }
    }

    /// A tensor with entries drawn i.i.d. from `U(lo, hi)`.
    pub fn uniform<R: Rng + ?Sized>(shape: Vec<usize>, lo: f32, hi: f32, rng: &mut R) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.gen_range(lo..hi)).collect();
        Self { shape, data }
    }

    /// A `[rows, classes]` one-hot matrix: row `i` has a single `1.0` at
    /// column `indices[i]`.
    ///
    /// # Panics
    ///
    /// Panics when any index is `>= classes`.
    pub fn one_hot(indices: &[usize], classes: usize) -> Self {
        let mut data = vec![0.0; indices.len() * classes];
        for (row, &idx) in indices.iter().enumerate() {
            assert!(idx < classes, "one-hot index {idx} out of range {classes}");
            data[row * classes + idx] = 1.0;
        }
        Self {
            shape: vec![indices.len(), classes],
            data,
        }
    }

    /// The shape as a slice of dimension sizes.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The rank (number of dimensions). Scalars have rank 0.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// The total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// A view of the flat row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// A mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() requires exactly one element");
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank or any coordinate is out of bounds.
    pub fn get(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics when the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let flat = self.flat_index(index);
        self.data[flat] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (dim, (&i, &size)) in index.iter().zip(&self.shape).enumerate() {
            assert!(i < size, "index {i} out of bounds for dim {dim} ({size})");
            flat = flat * size + i;
        }
        flat
    }

    /// Returns a copy with a new shape holding the same number of elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeDataMismatch`] when the element counts
    /// differ.
    pub fn reshaped(&self, shape: Vec<usize>) -> Result<Self, TensorError> {
        Self::new(shape, self.data.clone())
    }

    /// Row `r` of a rank-2 tensor as a slice.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank-2 or `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Number of rows of a rank-2 tensor (or the batch dimension of any
    /// tensor of rank >= 1).
    ///
    /// # Panics
    ///
    /// Panics on scalars.
    pub fn rows(&self) -> usize {
        assert!(!self.shape.is_empty(), "rows() requires rank >= 1");
        self.shape[0]
    }

    /// Index of the maximum element of a rank-1 tensor or of one row of a
    /// rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (`0.0` for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest absolute element (`0.0` for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Whether every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// In-place element-wise `self += other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale: `self *= factor`.
    pub fn scale_assign(&mut self, factor: f32) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Resets every element to zero, keeping the shape.
    pub fn zero_(&mut self) {
        for a in &mut self.data {
            *a = 0.0;
        }
    }

    /// Matrix transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not rank-2.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transposed() requires a rank-2 tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Self::zeros(vec![0])
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_SHOWN: usize = 8;
        write!(f, "Tensor{:?} [", self.shape)?;
        for (i, v) in self.data.iter().take(MAX_SHOWN).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > MAX_SHOWN {
            write!(f, ", … {} more", self.data.len() - MAX_SHOWN)?;
        }
        write!(f, "]")
    }
}

/// Naive (but cache-friendly, `ikj`-ordered) matrix multiplication used by
/// the graph ops. `a` is `[m, k]`, `b` is `[k, n]`; the result is `[m, n]`.
///
/// # Panics
///
/// Panics when either operand is not rank-2 or the inner dimensions differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank-2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank-2");
    let (m, k) = (a.shape[0], a.shape[1]);
    let (k2, n) = (b.shape[0], b.shape[1]);
    assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let a_ip = a.data[i * k + p];
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b.data[p * n..(p + 1) * n];
            let o_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += a_ip * bv;
            }
        }
    }
    Tensor {
        shape: vec![m, n],
        data: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_rejects_mismatched_data() {
        assert!(Tensor::new(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::new(vec![2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn scalar_roundtrip() {
        let s = Tensor::scalar(3.5);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.item(), 3.5);
    }

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|v| v as f32).collect());
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[0, 2]), 2.0);
        assert_eq!(t.get(&[1, 0]), 3.0);
        assert_eq!(t.row(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn one_hot_rows() {
        let t = Tensor::one_hot(&[2, 0], 3);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.data(), &[0.0, 0.0, 1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_hot_rejects_out_of_range() {
        let _ = Tensor::one_hot(&[3], 3);
    }

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Tensor::from_vec(vec![3, 2], vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let id = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &id), a);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![2, 3], (0..6).map(|v| v as f32).collect());
        assert_eq!(a.transposed().transposed(), a);
        assert_eq!(a.transposed().shape(), &[3, 2]);
        assert_eq!(a.transposed().get(&[2, 1]), a.get(&[1, 2]));
    }

    #[test]
    fn randn_is_roughly_standard() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn(vec![10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::uniform(vec![1000], -0.5, 0.25, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..0.25).contains(&v)));
    }

    #[test]
    fn argmax_picks_largest() {
        let t = Tensor::from_slice(&[0.1, -3.0, 7.5, 2.0]);
        assert_eq!(t.argmax(), 2);
    }

    #[test]
    fn add_assign_and_scale() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        a.add_assign(&Tensor::from_slice(&[3.0, 4.0]));
        a.scale_assign(2.0);
        assert_eq!(a.data(), &[8.0, 12.0]);
    }

    #[test]
    fn debug_is_never_empty() {
        let rendered = format!("{:?}", Tensor::zeros(vec![0]));
        assert!(!rendered.is_empty());
    }
}

//! Opt-in fast-math GEMM tier and the process-wide kernel-mode switch.
//!
//! The default (strict) kernels in [`crate::tensor`] keep a bitwise
//! determinism contract: no FMA contraction, ascending-`p` accumulation,
//! identical results on every ISA. That contract caps throughput — the
//! compiler may never fuse a multiply-add, and one thread owns the whole
//! product. This module reintroduces the speed behind an explicit opt-in
//! (`--kernel-mode fast`, requiring the `fast-math` cargo feature):
//!
//! - **Explicit-FMA microkernels** (`f32::mul_add`): one rounding per
//!   multiply-add instead of two, and the hardware FMA ports double the
//!   peak FLOP rate.
//! - **Cache-blocked packing**: both operands are repacked into
//!   L1/L2-sized panels (`MR`-row panels of A, `NR`-column panels of B) so
//!   the microkernel streams contiguous memory regardless of the logical
//!   layout (`NN`, `NT`, `TN`) — large GEMMs stop being cache-bound.
//! - **Row-parallel macro-kernel** over the vendored crossbeam
//!   scoped-thread shim: the row dimension is split into `MC`-aligned
//!   chunks with a fixed, deterministic partition schedule.
//!
//! ## Determinism contract of the fast tier
//!
//! Fast-math results differ from strict results at the ULP (fused
//! rounding, blocked `k` traversal), but they are **run-to-run
//! reproducible on a given machine**: the inner (`k`) dimension is never
//! split across threads, every output element is accumulated by exactly
//! one thread in a fixed ascending-`p` order within fixed `KC` blocks, and
//! block ownership is a pure function of the shape and thread count. The
//! same build on the same CPU produces the same bytes every run — and the
//! partition schedule keeps results identical across *thread counts* too
//! (threads only change who computes a row, never the order of its
//! accumulation chain).
//!
//! Cross-machine reproducibility is reduced from "always" (strict) to
//! "same detected ISA": the FMA microkernel is instantiated per target
//! feature set and the pick is recorded in [`isa_name`].

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Which GEMM tier the process dispatches to.
///
/// The mode is process-global (an atomic, see [`set_kernel_mode`]) because
/// the kernels are reached from graph ops, scoped worker threads, and
/// inference paths that cannot thread a config handle through every call
/// site — and because *mixing* modes within one run would produce results
/// reproducible under neither contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Bitwise-deterministic register-tiled kernels (the default): no FMA
    /// contraction, identical bytes on every ISA and thread count.
    #[default]
    Strict,
    /// Cache-blocked packed FMA kernels, optionally row-parallel.
    /// Run-to-run reproducible on one machine; differs from `Strict` at
    /// the ULP. Requires the `fast-math` cargo feature.
    Fast,
}

impl KernelMode {
    /// Stable lowercase name, used by CLI flags, telemetry, and the
    /// checkpoint `kernel_mode` section.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelMode::Strict => "strict",
            KernelMode::Fast => "fast",
        }
    }

    /// Single-byte encoding for checkpoint metadata.
    pub fn to_byte(self) -> u8 {
        match self {
            KernelMode::Strict => 0,
            KernelMode::Fast => 1,
        }
    }

    /// Inverse of [`KernelMode::to_byte`].
    pub fn from_byte(b: u8) -> Option<KernelMode> {
        match b {
            0 => Some(KernelMode::Strict),
            1 => Some(KernelMode::Fast),
            _ => None,
        }
    }
}

impl fmt::Display for KernelMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for KernelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "strict" => Ok(KernelMode::Strict),
            "fast" => Ok(KernelMode::Fast),
            other => Err(format!(
                "unknown kernel mode `{other}` (expected `strict` or `fast`)"
            )),
        }
    }
}

/// Requested [`KernelMode::Fast`] in a build compiled without the
/// `fast-math` cargo feature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastMathUnavailable;

impl fmt::Display for FastMathUnavailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fast-math kernels are not compiled into this build \
             (rebuild with `--features fast-math`)"
        )
    }
}

impl std::error::Error for FastMathUnavailable {}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);
static GEMM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Upper bound on [`set_gemm_threads`]; a partition into more chunks than
/// this never helps the matrix sizes this engine sees.
pub const MAX_GEMM_THREADS: usize = 64;

/// The GEMM tier currently dispatched by [`crate::matmul`] and friends.
pub fn kernel_mode() -> KernelMode {
    KernelMode::from_byte(KERNEL_MODE.load(Ordering::Relaxed)).unwrap_or(KernelMode::Strict)
}

/// Whether this build carries the fast-math kernel tier.
pub fn fast_math_compiled() -> bool {
    cfg!(feature = "fast-math")
}

/// Switches the process-wide GEMM tier. Selecting [`KernelMode::Fast`] in
/// a build without the `fast-math` feature fails loudly instead of
/// silently staying strict — a run that *thinks* it is fast but is not
/// would corrupt the bench trajectory.
pub fn set_kernel_mode(mode: KernelMode) -> Result<(), FastMathUnavailable> {
    if mode == KernelMode::Fast && !fast_math_compiled() {
        return Err(FastMathUnavailable);
    }
    KERNEL_MODE.store(mode.to_byte(), Ordering::Relaxed);
    Ok(())
}

/// Thread budget for the fast-tier macro-kernel (clamped to
/// `1..=`[`MAX_GEMM_THREADS`]). `1` (the default) keeps the fast tier
/// single-threaded; strict mode ignores this entirely. Because the
/// partition schedule is deterministic and never splits the inner
/// dimension, changing the budget changes wall-clock only — never bytes.
pub fn set_gemm_threads(n: usize) {
    GEMM_THREADS.store(n.clamp(1, MAX_GEMM_THREADS), Ordering::Relaxed);
}

/// Current fast-tier thread budget (see [`set_gemm_threads`]).
pub fn gemm_threads() -> usize {
    GEMM_THREADS.load(Ordering::Relaxed).max(1)
}

/// Name of the widest kernel instantiation this CPU dispatches to, for
/// telemetry and `BENCH_history.jsonl` (`avx512f`, `avx2+fma`, or
/// `portable`). Detection is cached; the answer is a pure function of the
/// machine, so recording it makes bench entries comparable across hosts.
pub fn isa_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return "avx512f";
        }
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return "avx2+fma";
        }
    }
    "portable"
}

#[cfg(feature = "fast-math")]
pub use kernels::{fast_matmul, fast_matmul_nt, fast_matmul_threaded, fast_matmul_tn};
#[cfg(feature = "fast-math")]
pub(crate) use kernels::{gemm, Layout};

#[cfg(feature = "fast-math")]
mod kernels {
    use super::gemm_threads;
    use crate::Tensor;

    /// Rows of A per microkernel tile. Matches the strict tier: 4 rows ×
    /// 32 columns of f32 accumulators fit the vector register file on
    /// both AVX2 (16×256-bit) and AVX-512 (32×512-bit).
    const MR: usize = 4;
    /// Output columns per microkernel tile.
    const NR: usize = 32;
    /// Inner-dimension block: one packed `KC`×`NR` B-panel (32 KiB) plus
    /// one `MC`×`KC` A-block stay L2-resident.
    const KC: usize = 256;
    /// Row block: unit of thread ownership and A-packing (64×256×4 B =
    /// 64 KiB per packed A-block).
    const MC: usize = 64;
    /// Column block bounding the packed B panel (`KC`×`NC`×4 B = 256 KiB).
    const NC: usize = 256;
    /// Minimum FLOP count (2·m·k·n) before the macro-kernel fans out to
    /// threads; below this the scoped-spawn overhead dominates.
    const PAR_MIN_FLOPS: usize = 1 << 22;

    /// Operand layout of the product. `A` is `[m, k]` except `Tn` (where
    /// it is `[k, m]`); `B` is `[k, n]` except `Nt` (where it is `[n, k]`).
    /// Packing absorbs the difference — the microkernel only ever sees
    /// panels.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub(crate) enum Layout {
        /// `C = A·B`
        Nn,
        /// `C = A·Bᵀ`
        Nt,
        /// `C = Aᵀ·B`
        Tn,
    }

    type Microkernel = unsafe fn(&[f32], &[f32], &mut [f32], usize, usize, usize, usize, usize);

    /// One instantiation of the packed FMA microkernel. `apanel` is
    /// `kc`×`MR` (row index fastest), `bpanel` is `kc`×`NR` (column index
    /// fastest); both are zero-padded to full tile width, so the `p` loop
    /// always runs at full `MR`×`NR` width and only the C load/store is
    /// guarded. The existing C tile seeds the accumulators, so `KC`
    /// blocks extend one ascending-`p` fused chain per element —
    /// deterministic for a fixed blocking, regardless of which thread
    /// runs the tile.
    macro_rules! define_fm_microkernel {
        ($fname:ident $(, #[$attr:meta])?) => {
            $(#[$attr])?
            unsafe fn $fname(
                apanel: &[f32],
                bpanel: &[f32],
                c: &mut [f32],
                c_off: usize,
                n: usize,
                kc: usize,
                mr: usize,
                nr: usize,
            ) {
                let mut acc = [[0.0f32; NR]; MR];
                for (r, row) in acc.iter_mut().enumerate().take(mr) {
                    row[..nr].copy_from_slice(&c[c_off + r * n..c_off + r * n + nr]);
                }
                for p in 0..kc {
                    let a_col: &[f32; MR] =
                        (&apanel[p * MR..p * MR + MR]).try_into().unwrap();
                    let b_row: &[f32; NR] =
                        (&bpanel[p * NR..p * NR + NR]).try_into().unwrap();
                    for r in 0..MR {
                        let a_rp = a_col[r];
                        for j in 0..NR {
                            acc[r][j] = a_rp.mul_add(b_row[j], acc[r][j]);
                        }
                    }
                }
                for (r, row) in acc.iter().enumerate().take(mr) {
                    c[c_off + r * n..c_off + r * n + nr].copy_from_slice(&row[..nr]);
                }
            }
        };
    }

    #[cfg(target_arch = "x86_64")]
    define_fm_microkernel!(fm_ukr_fma, #[target_feature(enable = "avx2,fma")]);
    #[cfg(target_arch = "x86_64")]
    define_fm_microkernel!(fm_ukr_avx512, #[target_feature(enable = "avx512f,fma")]);

    /// Portable fallback for CPUs without hardware FMA: `mul_add` would
    /// lower to a libm soft-fma call per element (slower than strict), so
    /// this variant keeps separate multiply/add — the packed blocking
    /// still pays, and the fast tier stays deterministic on such hosts.
    unsafe fn fm_ukr_portable(
        apanel: &[f32],
        bpanel: &[f32],
        c: &mut [f32],
        c_off: usize,
        n: usize,
        kc: usize,
        mr: usize,
        nr: usize,
    ) {
        let mut acc = [[0.0f32; NR]; MR];
        for (r, row) in acc.iter_mut().enumerate().take(mr) {
            row[..nr].copy_from_slice(&c[c_off + r * n..c_off + r * n + nr]);
        }
        for p in 0..kc {
            let a_col: &[f32; MR] = (&apanel[p * MR..p * MR + MR]).try_into().unwrap();
            let b_row: &[f32; NR] = (&bpanel[p * NR..p * NR + NR]).try_into().unwrap();
            for r in 0..MR {
                let a_rp = a_col[r];
                for j in 0..NR {
                    acc[r][j] += a_rp * b_row[j];
                }
            }
        }
        for (r, row) in acc.iter().enumerate().take(mr) {
            c[c_off + r * n..c_off + r * n + nr].copy_from_slice(&row[..nr]);
        }
    }

    /// Picks the widest microkernel this CPU supports. Cached: the choice
    /// must be stable for the life of the process (mixing instantiations
    /// across calls would break run-to-run reproducibility).
    fn select_ukr() -> Microkernel {
        static UKR: std::sync::OnceLock<Microkernel> = std::sync::OnceLock::new();
        *UKR.get_or_init(|| {
            #[cfg(target_arch = "x86_64")]
            {
                if std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("fma")
                {
                    return fm_ukr_avx512 as Microkernel;
                }
                if std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("fma")
                {
                    return fm_ukr_fma as Microkernel;
                }
            }
            fm_ukr_portable as Microkernel
        })
    }

    /// Packs rows `[i0, i0+mc)` × inner `[p0, p0+kc)` of A into `MR`-row
    /// panels (`buf[panel*kc*MR + p*MR + r]`), zero-padding the last
    /// partial panel so the microkernel never branches on row count.
    fn pack_a(
        a_trans: bool,
        a: &[f32],
        m: usize,
        k: usize,
        i0: usize,
        mc: usize,
        p0: usize,
        kc: usize,
        buf: &mut Vec<f32>,
    ) {
        let panels = mc.div_ceil(MR);
        buf.clear();
        buf.resize(panels * kc * MR, 0.0);
        for pi in 0..panels {
            let base = pi * kc * MR;
            let rows = MR.min(mc - pi * MR);
            for p in 0..kc {
                for r in 0..rows {
                    let i = i0 + pi * MR + r;
                    buf[base + p * MR + r] = if a_trans {
                        a[(p0 + p) * m + i] // A is [k, m]
                    } else {
                        a[i * k + (p0 + p)] // A is [m, k]
                    };
                }
            }
        }
    }

    /// Packs inner `[p0, p0+kc)` × columns `[j0, j0+nc)` of B into
    /// `NR`-column panels (`buf[panel*kc*NR + p*NR + j]`), zero-padded.
    fn pack_b(
        b_trans: bool,
        b: &[f32],
        k: usize,
        n: usize,
        p0: usize,
        kc: usize,
        j0: usize,
        nc: usize,
        buf: &mut Vec<f32>,
    ) {
        let panels = nc.div_ceil(NR);
        buf.clear();
        buf.resize(panels * kc * NR, 0.0);
        for pj in 0..panels {
            let base = pj * kc * NR;
            let cols = NR.min(nc - pj * NR);
            for p in 0..kc {
                for j in 0..cols {
                    let jj = j0 + pj * NR + j;
                    buf[base + p * NR + j] = if b_trans {
                        b[jj * k + (p0 + p)] // B is [n, k]
                    } else {
                        b[(p0 + p) * n + jj] // B is [k, n]
                    };
                }
            }
        }
    }

    /// The blocked macro-kernel over one contiguous row range.
    /// `c_rows` is `out[row0*n .. (row0+rows)*n]`; each thread of a
    /// parallel product runs this exact loop nest over its own range, so
    /// per-element accumulation order is independent of the partition.
    #[allow(clippy::too_many_arguments)]
    fn gemm_rows(
        ukr: Microkernel,
        a_trans: bool,
        b_trans: bool,
        a: &[f32],
        b: &[f32],
        c_rows: &mut [f32],
        row0: usize,
        rows: usize,
        m: usize,
        k: usize,
        n: usize,
        apack: &mut Vec<f32>,
        bpack: &mut Vec<f32>,
    ) {
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                pack_b(b_trans, b, k, n, pc, kc, jc, nc, bpack);
                for ic in (0..rows).step_by(MC) {
                    let mc = MC.min(rows - ic);
                    pack_a(a_trans, a, m, k, row0 + ic, mc, pc, kc, apack);
                    for j0 in (0..nc).step_by(NR) {
                        let nr = NR.min(nc - j0);
                        let bpanel = &bpack[(j0 / NR) * kc * NR..][..kc * NR];
                        for i0 in (0..mc).step_by(MR) {
                            let mr = MR.min(mc - i0);
                            let apanel = &apack[(i0 / MR) * kc * MR..][..kc * MR];
                            let c_off = (ic + i0) * n + jc + j0;
                            // SAFETY: select_ukr verified the target
                            // features of the chosen instantiation; all
                            // slice accesses are in-bounds by blocking.
                            unsafe { ukr(apanel, bpanel, c_rows, c_off, n, kc, mr, nr) };
                        }
                    }
                }
            }
        }
    }

    std::thread_local! {
        /// Pack scratch for the single-threaded path (spawned workers use
        /// their own locals; the per-call allocation is amortized by the
        /// threading threshold).
        static FM_PACK: std::cell::RefCell<(Vec<f32>, Vec<f32>)> =
            const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
    }

    /// Threads actually used for an `m`×`k`×`n` product: the requested
    /// budget, capped by the number of `MC` row blocks, gated by a
    /// deterministic size threshold. A pure function of shape and budget —
    /// part of the reproducibility contract.
    fn effective_threads(threads: usize, m: usize, k: usize, n: usize) -> usize {
        if threads <= 1 || 2 * m * k * n < PAR_MIN_FLOPS {
            return 1;
        }
        threads.min(m.div_ceil(MC)).max(1)
    }

    /// Fast-tier `C = op(A)·op(B)` into a zeroed `out` of length `m*n`.
    pub(crate) fn gemm(
        layout: Layout,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        gemm_with_threads(layout, a, b, out, m, k, n, gemm_threads());
    }

    #[allow(clippy::too_many_arguments)]
    fn gemm_with_threads(
        layout: Layout,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
        threads: usize,
    ) {
        debug_assert_eq!(out.len(), m * n);
        if m == 0 || n == 0 || k == 0 {
            return; // out is already zeroed by the caller
        }
        let ukr = select_ukr();
        let (a_trans, b_trans) = match layout {
            Layout::Nn => (false, false),
            Layout::Nt => (false, true),
            Layout::Tn => (true, false),
        };
        let t = effective_threads(threads, m, k, n);
        if t <= 1 {
            FM_PACK.with(|bufs| {
                let (apack, bpack) = &mut *bufs.borrow_mut();
                gemm_rows(ukr, a_trans, b_trans, a, b, out, 0, m, m, k, n, apack, bpack);
            });
            return;
        }
        // Deterministic partition: MC-aligned row blocks, contiguous
        // ownership, fixed by (m, t) alone. split_at_mut hands each
        // thread a disjoint slice of C.
        let blocks = m.div_ceil(MC);
        crossbeam::thread::scope(|s| {
            let mut rest = out;
            let mut row0 = 0usize;
            for th in 0..t {
                let b1 = blocks * (th + 1) / t;
                let end = (b1 * MC).min(m);
                let rows = end - row0;
                if rows == 0 {
                    continue;
                }
                let (chunk, tail) = rest.split_at_mut(rows * n);
                rest = tail;
                let start = row0;
                s.spawn(move || {
                    let (mut apack, mut bpack) = (Vec::new(), Vec::new());
                    gemm_rows(
                        ukr, a_trans, b_trans, a, b, chunk, start, rows, m, k, n, &mut apack,
                        &mut bpack,
                    );
                });
                row0 = end;
            }
        });
    }

    fn check_shapes(
        layout: Layout,
        a: &Tensor,
        b: &Tensor,
        op: &str,
    ) -> (usize, usize, usize) {
        assert_eq!(a.rank(), 2, "{op} lhs must be rank-2");
        assert_eq!(b.rank(), 2, "{op} rhs must be rank-2");
        let (m, k) = match layout {
            Layout::Tn => (a.shape()[1], a.shape()[0]),
            _ => (a.shape()[0], a.shape()[1]),
        };
        let (k2, n) = match layout {
            Layout::Nt => (b.shape()[1], b.shape()[0]),
            _ => (b.shape()[0], b.shape()[1]),
        };
        assert_eq!(k, k2, "{op} inner dimension mismatch: {k} vs {k2}");
        (m, k, n)
    }

    fn fast_product(layout: Layout, a: &Tensor, b: &Tensor, op: &str, threads: usize) -> Tensor {
        let (m, k, n) = check_shapes(layout, a, b, op);
        let mut out = vec![0.0f32; m * n];
        gemm_with_threads(layout, a.data(), b.data(), &mut out, m, k, n, threads);
        Tensor::from_vec(vec![m, n], out)
    }

    /// Fast-tier `A·B` (`a` is `[m, k]`, `b` is `[k, n]`) honoring the
    /// global [`gemm_threads`] budget. Public so property tests and
    /// benches can exercise the tier without flipping the process-wide
    /// [`KernelMode`].
    pub fn fast_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        fast_product(Layout::Nn, a, b, "matmul", gemm_threads())
    }

    /// Fast-tier `A·Bᵀ` (`b` is `[n, k]`).
    pub fn fast_matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
        fast_product(Layout::Nt, a, b, "matmul_nt", gemm_threads())
    }

    /// Fast-tier `Aᵀ·B` (`a` is `[k, m]`).
    pub fn fast_matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
        fast_product(Layout::Tn, a, b, "matmul_tn", gemm_threads())
    }

    /// [`fast_matmul`] with an explicit thread budget, bypassing the
    /// global setting — the reproducibility tests compare byte-identical
    /// results across budgets without racing on process state.
    pub fn fast_matmul_threaded(a: &Tensor, b: &Tensor, threads: usize) -> Tensor {
        fast_product(Layout::Nn, a, b, "matmul", threads.clamp(1, super::MAX_GEMM_THREADS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrips_through_byte_and_str() {
        for mode in [KernelMode::Strict, KernelMode::Fast] {
            assert_eq!(KernelMode::from_byte(mode.to_byte()), Some(mode));
            assert_eq!(mode.as_str().parse::<KernelMode>().unwrap(), mode);
        }
        assert_eq!(KernelMode::from_byte(7), None);
        assert!("loose".parse::<KernelMode>().is_err());
    }

    #[test]
    fn gemm_threads_clamps() {
        set_gemm_threads(0);
        assert_eq!(gemm_threads(), 1);
        set_gemm_threads(1_000_000);
        assert_eq!(gemm_threads(), MAX_GEMM_THREADS);
        set_gemm_threads(1);
        assert_eq!(gemm_threads(), 1);
    }

    #[test]
    fn isa_name_is_stable() {
        assert_eq!(isa_name(), isa_name());
        assert!(["avx512f", "avx2+fma", "portable"].contains(&isa_name()));
    }

    #[cfg(not(feature = "fast-math"))]
    #[test]
    fn fast_mode_refused_without_feature() {
        assert_eq!(set_kernel_mode(KernelMode::Fast), Err(FastMathUnavailable));
        assert_eq!(kernel_mode(), KernelMode::Strict);
        assert!(!fast_math_compiled());
    }

    #[cfg(feature = "fast-math")]
    #[test]
    fn fast_mode_accepted_with_feature() {
        assert!(fast_math_compiled());
        set_kernel_mode(KernelMode::Fast).unwrap();
        assert_eq!(kernel_mode(), KernelMode::Fast);
        set_kernel_mode(KernelMode::Strict).unwrap();
        assert_eq!(kernel_mode(), KernelMode::Strict);
    }
}

//! Loss-function subgraph builders.
//!
//! Each helper records the loss on a caller-supplied [`Graph`] and returns
//! the scalar node; gradients then flow through [`Graph::backward`].

use crate::graph::{Graph, NodeId};
use crate::tensor::Tensor;

/// Mean-squared error `mean((pred - target)^2)` between same-shaped nodes.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(g: &mut Graph, pred: NodeId, target: NodeId) -> NodeId {
    let d = g.sub(pred, target);
    let sq = g.mul(d, d);
    g.mean(sq)
}

/// Huber (smooth-L1) loss with threshold `delta`, averaged over elements.
///
/// Realized as `mean(0.5 * clip(d)^2 + delta * (|d| - |clip(d)|))` where
/// `clip(d) = clamp(d, -delta, delta)` — identical values and gradients to
/// the usual piecewise definition.
///
/// # Panics
///
/// Panics on shape mismatch or non-positive `delta`.
pub fn huber(g: &mut Graph, pred: NodeId, target: NodeId, delta: f32) -> NodeId {
    assert!(delta > 0.0, "huber delta must be positive");
    let d = g.sub(pred, target);
    let clipped = g.clamp(d, -delta, delta);
    let quad = g.mul(clipped, clipped);
    let quad = g.scale(quad, 0.5);
    // |d| via d * sign(d) is not differentiable at 0 in a helpful way, so
    // use d^2 monotonicity: |d| - |clip| = relu(|d| - delta); build |d| from
    // relu(d) + relu(-d).
    let dn = g.neg(d);
    let rp = g.relu(d);
    let rn = g.relu(dn);
    let abs_d = g.add(rp, rn);
    let abs_minus = g.add_scalar(abs_d, -delta);
    let lin = g.relu(abs_minus);
    let lin = g.scale(lin, delta);
    let total = g.add(quad, lin);
    g.mean(total)
}

/// Negative log-likelihood of one-hot targets under `logits`:
/// `-mean(sum(one_hot * log_softmax(logits)))`.
///
/// `targets` must be a `[batch, classes]` one-hot (or soft-label) input
/// node matching the logits' shape.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn cross_entropy(g: &mut Graph, logits: NodeId, targets: NodeId) -> NodeId {
    let logp = g.log_softmax(logits);
    let picked = g.mul(logp, targets);
    let per_row = g.sum_rows(picked);
    let mean = g.mean(per_row);
    g.neg(mean)
}

/// Mean entropy of the categorical distributions given by row-wise
/// `logits`: `mean_i H(softmax(logits_i))`.
pub fn categorical_entropy(g: &mut Graph, logits: NodeId) -> NodeId {
    let p = g.softmax(logits);
    let logp = g.log_softmax(logits);
    let plogp = g.mul(p, logp);
    let row = g.sum_rows(plogp);
    let mean = g.mean(row);
    g.neg(mean)
}

/// Builds a `[batch, classes]` one-hot input node from class indices.
///
/// # Panics
///
/// Panics when any index is `>= classes`.
pub fn one_hot_input(g: &mut Graph, indices: &[usize], classes: usize) -> NodeId {
    g.input(Tensor::one_hot(indices, classes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Parameter;

    #[test]
    fn mse_zero_when_equal() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(vec![2, 1], vec![1.0, 2.0]));
        let b = g.input(Tensor::from_vec(vec![2, 1], vec![1.0, 2.0]));
        let l = mse(&mut g, a, b);
        assert_eq!(g.value(l).item(), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let mut g = Graph::new();
        let a = g.input(Tensor::from_vec(vec![2, 1], vec![1.0, 2.0]));
        let b = g.input(Tensor::from_vec(vec![2, 1], vec![3.0, 2.0]));
        let l = mse(&mut g, a, b);
        assert_eq!(g.value(l).item(), 2.0); // ((2)^2 + 0)/2
    }

    #[test]
    fn huber_quadratic_inside_linear_outside() {
        let mut g = Graph::new();
        let pred = g.input(Tensor::from_vec(vec![2, 1], vec![0.5, 3.0]));
        let target = g.input(Tensor::zeros(vec![2, 1]));
        let l = huber(&mut g, pred, target, 1.0);
        // element 1: 0.5 * 0.25 = 0.125; element 2: 0.5 + 1*(3-1) = 2.5
        assert!((g.value(l).item() - (0.125 + 2.5) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn huber_gradient_is_clamped() {
        let p = Parameter::new("p", Tensor::from_vec(vec![1, 1], vec![10.0]));
        let mut g = Graph::new();
        let pn = g.param(&p);
        let t = g.input(Tensor::zeros(vec![1, 1]));
        let l = huber(&mut g, pn, t, 1.0);
        g.backward(l);
        // d/dp of huber at d=10 with delta=1 is exactly 1 (linear region).
        assert!((p.grad().item() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let mut g = Graph::new();
        let good = g.input(Tensor::from_vec(vec![1, 3], vec![10.0, 0.0, 0.0]));
        let bad = g.input(Tensor::from_vec(vec![1, 3], vec![0.0, 10.0, 0.0]));
        let targets = one_hot_input(&mut g, &[0], 3);
        let lg = cross_entropy(&mut g, good, targets);
        let targets2 = one_hot_input(&mut g, &[0], 3);
        let lb = cross_entropy(&mut g, bad, targets2);
        assert!(g.value(lg).item() < g.value(lb).item());
    }

    #[test]
    fn entropy_max_for_uniform_logits() {
        let mut g = Graph::new();
        let uniform = g.input(Tensor::zeros(vec![1, 4]));
        let peaked = g.input(Tensor::from_vec(vec![1, 4], vec![10.0, 0.0, 0.0, 0.0]));
        let hu = categorical_entropy(&mut g, uniform);
        let hp = categorical_entropy(&mut g, peaked);
        assert!((g.value(hu).item() - (4.0f32).ln()).abs() < 1e-4);
        assert!(g.value(hp).item() < g.value(hu).item());
    }
}

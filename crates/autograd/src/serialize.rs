//! Checkpointing: save/load parameter lists in a tiny little-endian binary
//! format (`HERO` magic, version, parameter count, then per-parameter name,
//! shape, and `f32` data).
//!
//! The format is deliberately self-describing so loading validates the file
//! against the model before touching any weights.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::CheckpointError;
use crate::graph::Parameter;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"HERO";
const VERSION: u32 = 1;

/// Writes `params` to `path`, creating or truncating the file.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on any filesystem failure.
pub fn save_params(path: impl AsRef<Path>, params: &[Parameter]) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let name = p.name();
        let bytes = name.as_bytes();
        w.write_all(&(bytes.len() as u32).to_le_bytes())?;
        w.write_all(bytes)?;
        let value = p.value();
        w.write_all(&(value.rank() as u32).to_le_bytes())?;
        for &dim in value.shape() {
            w.write_all(&(dim as u64).to_le_bytes())?;
        }
        for &x in value.data() {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads a checkpoint written by [`save_params`] into `params`, matching by
/// position and validating shapes.
///
/// # Errors
///
/// Returns [`CheckpointError::BadMagic`] for foreign files,
/// [`CheckpointError::ParameterMismatch`] when counts or shapes differ, and
/// [`CheckpointError::Truncated`]/[`CheckpointError::Io`] on short reads.
pub fn load_params(path: impl AsRef<Path>, params: &[Parameter]) -> Result<(), CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    read_exact(&mut r, &mut magic)?;
    if &magic != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(CheckpointError::ParameterMismatch {
            expected: format!("version {VERSION}"),
            found: format!("version {version}"),
        });
    }
    let count = read_u32(&mut r)? as usize;
    if count != params.len() {
        return Err(CheckpointError::ParameterMismatch {
            expected: format!("{} parameters", params.len()),
            found: format!("{count} parameters"),
        });
    }
    for p in params {
        let name_len = read_u32(&mut r)? as usize;
        let mut name_bytes = vec![0u8; name_len];
        read_exact(&mut r, &mut name_bytes)?;
        let rank = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u64(&mut r)? as usize);
        }
        if shape != p.shape() {
            return Err(CheckpointError::ParameterMismatch {
                expected: format!("{} with shape {:?}", p.name(), p.shape()),
                found: format!(
                    "{} with shape {:?}",
                    String::from_utf8_lossy(&name_bytes),
                    shape
                ),
            });
        }
        let len: usize = shape.iter().product();
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(read_f32(&mut r)?);
        }
        p.set_value(Tensor::from_vec(shape, data));
    }
    Ok(())
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), CheckpointError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            CheckpointError::Truncated
        } else {
            CheckpointError::Io(e)
        }
    })
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, CheckpointError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_f32<R: Read>(r: &mut R) -> Result<f32, CheckpointError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b)?;
    Ok(f32::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hero_autograd_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_values() {
        let a = Parameter::new("a", Tensor::from_vec(vec![2, 2], vec![1.0, -2.5, 3.25, 0.0]));
        let b = Parameter::new("b", Tensor::from_slice(&[9.0]));
        let path = temp_path("roundtrip.bin");
        save_params(&path, &[a.clone(), b.clone()]).unwrap();

        let a2 = Parameter::new("a", Tensor::zeros(vec![2, 2]));
        let b2 = Parameter::new("b", Tensor::zeros(vec![1]));
        load_params(&path, &[a2.clone(), b2.clone()]).unwrap();
        assert_eq!(&*a.value(), &*a2.value());
        assert_eq!(&*b.value(), &*b2.value());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let a = Parameter::new("a", Tensor::zeros(vec![2, 2]));
        let path = temp_path("mismatch.bin");
        save_params(&path, &[a]).unwrap();
        let wrong = Parameter::new("a", Tensor::zeros(vec![3]));
        let err = load_params(&path, &[wrong]).unwrap_err();
        assert!(matches!(err, CheckpointError::ParameterMismatch { .. }));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_wrong_count() {
        let a = Parameter::new("a", Tensor::zeros(vec![1]));
        let path = temp_path("count.bin");
        save_params(&path, &[a.clone()]).unwrap();
        let err = load_params(&path, &[a.clone(), a]).unwrap_err();
        assert!(matches!(err, CheckpointError::ParameterMismatch { .. }));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_foreign_file() {
        let path = temp_path("foreign.bin");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let p = Parameter::new("p", Tensor::zeros(vec![1]));
        let err = load_params(&path, &[p]).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
        std::fs::remove_file(path).ok();
    }
}

//! Checkpointing: a small, self-describing little-endian binary format.
//!
//! Two on-disk versions exist:
//!
//! - **v1** (legacy): `HERO` magic, version, parameter count, then
//!   per-parameter name, shape, and `f32` data. Still readable.
//! - **v2** (current): `HERO` magic, version, then named byte *sections*
//!   followed by a CRC32 footer over the whole body. Sections carry
//!   parameter tables, optimizer state (moments + step counter), or opaque
//!   user blobs, so one file can hold a complete trainer snapshot.
//!
//! All writes are atomic: bytes go to a temp file in the same directory,
//! are fsynced, and the temp file is renamed over the destination. A crash
//! mid-write can never corrupt an existing checkpoint.
//!
//! All reads are bounded: every length field is validated against the
//! bytes actually present before any allocation, so a truncated or
//! bit-flipped file yields a typed [`CheckpointError`] — never a panic,
//! an OOM, or silently wrong weights (v2 is additionally CRC-checked).

use std::collections::BTreeMap;
use std::fs;
use std::fs::File;
use std::io::Write;
use std::path::Path;

use crate::error::CheckpointError;
use crate::graph::Parameter;
use crate::optim::OptimizerState;
use crate::tensor::Tensor;

const MAGIC: &[u8; 4] = b"HERO";
const VERSION_V1: u32 = 1;
const VERSION_V2: u32 = 2;

/// Hard caps on structural fields; anything larger is [`CheckpointError::Malformed`].
const MAX_NAME_LEN: usize = 4096;
const MAX_RANK: usize = 8;
const MAX_PARAM_COUNT: usize = 1 << 20;
const MAX_SECTION_COUNT: usize = 1 << 16;
const MAX_SLOT_COUNT: usize = 16;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected) — hand-rolled, no dependencies.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE) of `bytes`, as used by the v2 checkpoint footer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Atomic file replacement.
// ---------------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the destination, then best-effort directory fsync.
/// The previous file content (if any) survives any mid-write crash.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), CheckpointError> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| CheckpointError::Malformed("checkpoint path has no file name".into()))?;
    let mut tmp = path.to_path_buf();
    tmp.set_file_name(format!(
        ".{}.tmp{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let write_result: Result<(), std::io::Error> = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)?;
        Ok(())
    })();
    if write_result.is_err() {
        fs::remove_file(&tmp).ok();
    }
    write_result?;
    // Make the rename itself durable. Failure here is non-fatal: the data
    // file is already synced and the rename is atomic on the filesystem.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        }) {
            d.sync_all().ok();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Bounds-checked slice cursor.
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if n > self.remaining() {
            return Err(CheckpointError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn name(&mut self, what: &str) -> Result<String, CheckpointError> {
        let len = self.u32()? as usize;
        if len > MAX_NAME_LEN {
            return Err(CheckpointError::Malformed(format!(
                "{what} name length {len} exceeds cap {MAX_NAME_LEN}"
            )));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed(format!("{what} name is not utf-8")))
    }
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name.as_bytes());
}

// ---------------------------------------------------------------------------
// Parameter-table codec (shared by the v1 body and v2 `params` sections).
// ---------------------------------------------------------------------------

/// Encodes a parameter table: count, then per-parameter name, shape, data.
pub fn encode_params(params: &[Parameter]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        put_name(&mut out, &p.name());
        let value = p.value();
        out.extend_from_slice(&(value.rank() as u32).to_le_bytes());
        for &dim in value.shape() {
            out.extend_from_slice(&(dim as u64).to_le_bytes());
        }
        for &x in value.data() {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

/// Decodes a parameter table produced by [`encode_params`] into `params`,
/// matching by position and validating shapes before touching any weights.
pub fn decode_params(bytes: &[u8], params: &[Parameter]) -> Result<(), CheckpointError> {
    let mut c = Cursor::new(bytes);
    decode_params_cursor(&mut c, params)?;
    if c.remaining() != 0 {
        return Err(CheckpointError::Malformed(format!(
            "{} trailing bytes after parameter table",
            c.remaining()
        )));
    }
    Ok(())
}

fn decode_params_cursor(c: &mut Cursor<'_>, params: &[Parameter]) -> Result<(), CheckpointError> {
    let count = c.u32()? as usize;
    if count > MAX_PARAM_COUNT {
        return Err(CheckpointError::Malformed(format!(
            "parameter count {count} exceeds cap {MAX_PARAM_COUNT}"
        )));
    }
    if count != params.len() {
        return Err(CheckpointError::ParameterMismatch {
            expected: format!("{} parameters", params.len()),
            found: format!("{count} parameters"),
        });
    }
    // Validate every entry and stage the new tensors before mutating any
    // parameter, so a corrupt tail can never leave the model half-loaded.
    let mut staged = Vec::with_capacity(params.len());
    for p in params {
        let name = c.name("parameter")?;
        let rank = c.u32()? as usize;
        if rank > MAX_RANK {
            return Err(CheckpointError::Malformed(format!(
                "parameter rank {rank} exceeds cap {MAX_RANK}"
            )));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(c.u64()? as usize);
        }
        if shape != p.shape() {
            return Err(CheckpointError::ParameterMismatch {
                expected: format!("{} with shape {:?}", p.name(), p.shape()),
                found: format!("{name} with shape {shape:?}"),
            });
        }
        let len: usize = shape.iter().product();
        let raw = c.take(len.checked_mul(4).ok_or_else(|| {
            CheckpointError::Malformed("parameter data length overflows".into())
        })?)?;
        let mut data = Vec::with_capacity(len);
        for chunk in raw.chunks_exact(4) {
            data.push(f32::from_le_bytes(chunk.try_into().unwrap()));
        }
        staged.push(Tensor::from_vec(shape, data));
    }
    for (p, t) in params.iter().zip(staged) {
        p.set_value(t);
    }
    Ok(())
}

/// One entry decoded from a parameter table without a model template:
/// the stored name, shape, and raw weights.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamEntry {
    /// Parameter name as written by [`encode_params`] (e.g. `actor.l0.weight`).
    pub name: String,
    /// Tensor shape.
    pub shape: Vec<usize>,
    /// Row-major `f32` data; length is the product of `shape`.
    pub data: Vec<f32>,
}

/// Decodes a parameter table produced by [`encode_params`] without a
/// matching model, returning every entry's name, shape, and data.
///
/// [`decode_params`] is positional — it needs a live model with the same
/// parameter list to load into. Consumers that must *discover* a model's
/// architecture from a checkpoint (the serving daemon infers layer widths
/// and agent counts from stored shapes) use this reader instead and build
/// the template afterwards.
///
/// # Errors
///
/// [`CheckpointError::Truncated`] or [`CheckpointError::Malformed`] on a
/// table that violates the format or its caps.
pub fn decode_param_table(bytes: &[u8]) -> Result<Vec<ParamEntry>, CheckpointError> {
    let mut c = Cursor::new(bytes);
    let count = c.u32()? as usize;
    if count > MAX_PARAM_COUNT {
        return Err(CheckpointError::Malformed(format!(
            "parameter count {count} exceeds cap {MAX_PARAM_COUNT}"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name = c.name("parameter")?;
        let rank = c.u32()? as usize;
        if rank > MAX_RANK {
            return Err(CheckpointError::Malformed(format!(
                "parameter rank {rank} exceeds cap {MAX_RANK}"
            )));
        }
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(c.u64()? as usize);
        }
        let len: usize = shape.iter().try_fold(1usize, |acc, &d| acc.checked_mul(d)).ok_or_else(
            || CheckpointError::Malformed("parameter element count overflows".into()),
        )?;
        let raw = c.take(len.checked_mul(4).ok_or_else(|| {
            CheckpointError::Malformed("parameter data length overflows".into())
        })?)?;
        let mut data = Vec::with_capacity(len);
        for chunk in raw.chunks_exact(4) {
            data.push(f32::from_le_bytes(chunk.try_into().unwrap()));
        }
        entries.push(ParamEntry { name, shape, data });
    }
    if c.remaining() != 0 {
        return Err(CheckpointError::Malformed(format!(
            "{} trailing bytes after parameter table",
            c.remaining()
        )));
    }
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Optimizer-state codec.
// ---------------------------------------------------------------------------

/// Encodes an [`OptimizerState`]: kind, step counter, learning rate, and
/// per-slot per-parameter `f32` buffers (SGD velocity; Adam `m`/`v`).
pub fn encode_optimizer(state: &OptimizerState) -> Vec<u8> {
    let mut out = Vec::new();
    put_name(&mut out, &state.kind);
    out.extend_from_slice(&state.t.to_le_bytes());
    out.extend_from_slice(&state.lr.to_le_bytes());
    out.extend_from_slice(&(state.slots.len() as u32).to_le_bytes());
    for slot in &state.slots {
        out.extend_from_slice(&(slot.len() as u32).to_le_bytes());
        for buf in slot {
            out.extend_from_slice(&(buf.len() as u64).to_le_bytes());
            for &x in buf {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    out
}

/// Decodes an optimizer state produced by [`encode_optimizer`].
pub fn decode_optimizer(bytes: &[u8]) -> Result<OptimizerState, CheckpointError> {
    let mut c = Cursor::new(bytes);
    let kind = c.name("optimizer kind")?;
    let t = c.u64()?;
    let lr = c.f32()?;
    let n_slots = c.u32()? as usize;
    if n_slots > MAX_SLOT_COUNT {
        return Err(CheckpointError::Malformed(format!(
            "optimizer slot count {n_slots} exceeds cap {MAX_SLOT_COUNT}"
        )));
    }
    let mut slots = Vec::with_capacity(n_slots);
    for _ in 0..n_slots {
        let n_params = c.u32()? as usize;
        if n_params > MAX_PARAM_COUNT {
            return Err(CheckpointError::Malformed(format!(
                "optimizer parameter count {n_params} exceeds cap {MAX_PARAM_COUNT}"
            )));
        }
        let mut slot = Vec::with_capacity(n_params);
        for _ in 0..n_params {
            let len = c.u64()? as usize;
            let raw = c.take(len.checked_mul(4).ok_or_else(|| {
                CheckpointError::Malformed("optimizer buffer length overflows".into())
            })?)?;
            let mut buf = Vec::with_capacity(len);
            for chunk in raw.chunks_exact(4) {
                buf.push(f32::from_le_bytes(chunk.try_into().unwrap()));
            }
            slot.push(buf);
        }
        slots.push(slot);
    }
    if c.remaining() != 0 {
        return Err(CheckpointError::Malformed(format!(
            "{} trailing bytes after optimizer state",
            c.remaining()
        )));
    }
    Ok(OptimizerState { kind, t, lr, slots })
}

// ---------------------------------------------------------------------------
// v2 sectioned container.
// ---------------------------------------------------------------------------

/// Serializes named sections into the v2 container byte layout:
/// magic, version, section count, `(name, u64 length, payload)` per
/// section, and a trailing CRC32 over everything before the footer.
pub fn encode_sections(sections: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION_V2.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (name, payload) in sections {
        put_name(&mut out, name);
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parses a v2 container produced by [`encode_sections`], validating magic,
/// version, CRC footer, and every length field.
pub fn decode_sections(bytes: &[u8]) -> Result<Vec<(String, Vec<u8>)>, CheckpointError> {
    if bytes.len() < 12 {
        return Err(CheckpointError::Truncated);
    }
    if &bytes[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION_V2 {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let body = &bytes[..bytes.len() - 4];
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    let computed = crc32(body);
    if computed != stored {
        return Err(CheckpointError::CorruptedCrc { computed, stored });
    }
    let mut c = Cursor::new(&body[8..]);
    let count = c.u32()? as usize;
    if count > MAX_SECTION_COUNT {
        return Err(CheckpointError::Malformed(format!(
            "section count {count} exceeds cap {MAX_SECTION_COUNT}"
        )));
    }
    let mut sections = Vec::with_capacity(count.min(1024));
    let mut seen = BTreeMap::new();
    for _ in 0..count {
        let name = c.name("section")?;
        let len = c.u64()? as usize;
        let payload = c.take(len)?.to_vec();
        if seen.insert(name.clone(), ()).is_some() {
            return Err(CheckpointError::Malformed(format!(
                "duplicate section `{name}`"
            )));
        }
        sections.push((name, payload));
    }
    if c.remaining() != 0 {
        return Err(CheckpointError::Malformed(format!(
            "{} trailing bytes after last section",
            c.remaining()
        )));
    }
    Ok(sections)
}

/// Atomically writes a v2 checkpoint holding `sections` to `path`.
pub fn save_sections(
    path: impl AsRef<Path>,
    sections: &[(String, Vec<u8>)],
) -> Result<(), CheckpointError> {
    write_atomic(path, &encode_sections(sections))
}

/// Reads and validates a v2 checkpoint written by [`save_sections`].
pub fn load_sections(path: impl AsRef<Path>) -> Result<Vec<(String, Vec<u8>)>, CheckpointError> {
    decode_sections(&fs::read(path)?)
}

/// Looks up one section by name in a decoded section list.
pub fn find_section<'a>(sections: &'a [(String, Vec<u8>)], name: &str) -> Option<&'a [u8]> {
    sections
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, p)| p.as_slice())
}

/// Like [`find_section`] but a missing section is a typed error.
pub fn require_section<'a>(
    sections: &'a [(String, Vec<u8>)],
    name: &str,
) -> Result<&'a [u8], CheckpointError> {
    find_section(sections, name).ok_or_else(|| CheckpointError::MissingSection(name.to_string()))
}

// ---------------------------------------------------------------------------
// Parameter-list entry points (v2 writer, v1+v2 reader).
// ---------------------------------------------------------------------------

/// Writes `params` to `path` as a v2 checkpoint with a single `params`
/// section. The write is atomic: an existing checkpoint at `path` is never
/// truncated before the replacement is durable.
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on any filesystem failure.
pub fn save_params(path: impl AsRef<Path>, params: &[Parameter]) -> Result<(), CheckpointError> {
    save_sections(path, &[("params".to_string(), encode_params(params))])
}

/// Writes `params` in the legacy v1 layout (atomically). Kept so the
/// v1 reading path stays covered by tests.
pub fn save_params_v1(path: impl AsRef<Path>, params: &[Parameter]) -> Result<(), CheckpointError> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION_V1.to_le_bytes());
    out.extend_from_slice(&encode_params(params));
    write_atomic(path, &out)
}

/// Loads a checkpoint written by [`save_params`] (v2) or by the legacy v1
/// writer into `params`, matching by position and validating shapes.
///
/// # Errors
///
/// Returns [`CheckpointError::BadMagic`] for foreign files,
/// [`CheckpointError::UnsupportedVersion`] for unknown versions,
/// [`CheckpointError::ParameterMismatch`] when counts or shapes differ,
/// [`CheckpointError::CorruptedCrc`] when a v2 footer fails validation, and
/// [`CheckpointError::Truncated`]/[`CheckpointError::Malformed`] on short or
/// structurally invalid files — never a panic.
pub fn load_params(path: impl AsRef<Path>, params: &[Parameter]) -> Result<(), CheckpointError> {
    let bytes = fs::read(path)?;
    if bytes.len() < 8 {
        return Err(if bytes.len() >= 4 && &bytes[..4] != MAGIC {
            CheckpointError::BadMagic
        } else {
            CheckpointError::Truncated
        });
    }
    if &bytes[..4] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    match version {
        VERSION_V1 => {
            let mut c = Cursor::new(&bytes[8..]);
            decode_params_cursor(&mut c, params)?;
            if c.remaining() != 0 {
                return Err(CheckpointError::Malformed(format!(
                    "{} trailing bytes after v1 parameter table",
                    c.remaining()
                )));
            }
            Ok(())
        }
        VERSION_V2 => {
            let sections = decode_sections(&bytes)?;
            decode_params(require_section(&sections, "params")?, params)
        }
        other => Err(CheckpointError::UnsupportedVersion(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer, Sgd};
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hero_autograd_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_values() {
        let a = Parameter::new("a", Tensor::from_vec(vec![2, 2], vec![1.0, -2.5, 3.25, 0.0]));
        let b = Parameter::new("b", Tensor::from_slice(&[9.0]));
        let path = temp_path("roundtrip.bin");
        save_params(&path, &[a.clone(), b.clone()]).unwrap();

        let a2 = Parameter::new("a", Tensor::zeros(vec![2, 2]));
        let b2 = Parameter::new("b", Tensor::zeros(vec![1]));
        load_params(&path, &[a2.clone(), b2.clone()]).unwrap();
        assert_eq!(&*a.value(), &*a2.value());
        assert_eq!(&*b.value(), &*b2.value());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn v1_files_still_load() {
        let a = Parameter::new("a", Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]));
        let path = temp_path("v1_compat.bin");
        save_params_v1(&path, &[a.clone()]).unwrap();
        let a2 = Parameter::new("a", Tensor::zeros(vec![3]));
        load_params(&path, &[a2.clone()]).unwrap();
        assert_eq!(&*a.value(), &*a2.value());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_shape_mismatch() {
        let a = Parameter::new("a", Tensor::zeros(vec![2, 2]));
        let path = temp_path("mismatch.bin");
        save_params(&path, &[a]).unwrap();
        let wrong = Parameter::new("a", Tensor::zeros(vec![3]));
        let err = load_params(&path, &[wrong]).unwrap_err();
        assert!(matches!(err, CheckpointError::ParameterMismatch { .. }));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_wrong_count() {
        let a = Parameter::new("a", Tensor::zeros(vec![1]));
        let path = temp_path("count.bin");
        save_params(&path, &[a.clone()]).unwrap();
        let err = load_params(&path, &[a.clone(), a]).unwrap_err();
        assert!(matches!(err, CheckpointError::ParameterMismatch { .. }));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_foreign_file() {
        let path = temp_path("foreign.bin");
        std::fs::write(&path, b"definitely not a checkpoint").unwrap();
        let p = Parameter::new("p", Tensor::zeros(vec![1]));
        let err = load_params(&path, &[p]).unwrap_err();
        assert!(matches!(err, CheckpointError::BadMagic));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn load_rejects_future_version() {
        let path = temp_path("future.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let p = Parameter::new("p", Tensor::zeros(vec![1]));
        let err = load_params(&path, &[p]).unwrap_err();
        assert!(matches!(err, CheckpointError::UnsupportedVersion(99)));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_file_is_typed_error_not_panic() {
        let a = Parameter::new("a", Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]));
        let path = temp_path("truncated.bin");
        save_params(&path, &[a]).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [0, 3, 7, 9, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let fresh = Parameter::new("a", Tensor::zeros(vec![4]));
            assert!(
                load_params(&path, &[fresh]).is_err(),
                "cut at {cut} must fail cleanly"
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn huge_declared_lengths_do_not_allocate() {
        // A v1 header claiming a 4-billion-byte name must be rejected by
        // the caps, not attempted.
        let path = temp_path("hostile.bin");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION_V1.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one parameter
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd name length
        std::fs::write(&path, bytes).unwrap();
        let p = Parameter::new("p", Tensor::zeros(vec![1]));
        let err = load_params(&path, &[p]).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bitflip_in_v2_is_caught_by_crc() {
        let a = Parameter::new("a", Tensor::from_vec(vec![2], vec![5.0, -5.0]));
        let path = temp_path("bitflip.bin");
        save_params(&path, &[a]).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let fresh = Parameter::new("a", Tensor::zeros(vec![2]));
        let err = load_params(&path, &[fresh]).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::CorruptedCrc { .. }
                    | CheckpointError::BadMagic
                    | CheckpointError::UnsupportedVersion(_)
            ),
            "{err}"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn failed_load_leaves_params_untouched() {
        let a = Parameter::new("a", Tensor::from_vec(vec![2], vec![1.0, 2.0]));
        let b = Parameter::new("b", Tensor::from_vec(vec![2], vec![3.0, 4.0]));
        let path = temp_path("staged.bin");
        save_params(&path, &[a, b]).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut inside the second parameter's data: the first decoded fine,
        // but neither may be written.
        std::fs::write(&path, &full[..full.len() - 6]).unwrap();
        let a2 = Parameter::new("a", Tensor::from_vec(vec![2], vec![-1.0, -1.0]));
        let b2 = Parameter::new("b", Tensor::from_vec(vec![2], vec![-1.0, -1.0]));
        assert!(load_params(&path, &[a2.clone(), b2.clone()]).is_err());
        assert_eq!(a2.value().data(), &[-1.0, -1.0], "no partial load");
        assert_eq!(b2.value().data(), &[-1.0, -1.0], "no partial load");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn sections_roundtrip_with_blobs() {
        let path = temp_path("sections.bin");
        let sections = vec![
            ("meta".to_string(), vec![1, 2, 3]),
            ("blob/raw".to_string(), vec![0u8; 257]),
            ("empty".to_string(), Vec::new()),
        ];
        save_sections(&path, &sections).unwrap();
        let loaded = load_sections(&path).unwrap();
        assert_eq!(loaded, sections);
        assert_eq!(find_section(&loaded, "meta"), Some(&[1u8, 2, 3][..]));
        assert!(find_section(&loaded, "absent").is_none());
        assert!(matches!(
            require_section(&loaded, "absent").unwrap_err(),
            CheckpointError::MissingSection(_)
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn duplicate_sections_rejected() {
        let sections = vec![
            ("x".to_string(), vec![1]),
            ("x".to_string(), vec![2]),
        ];
        let bytes = encode_sections(&sections);
        assert!(matches!(
            decode_sections(&bytes).unwrap_err(),
            CheckpointError::Malformed(_)
        ));
    }

    #[test]
    fn optimizer_state_roundtrip_adam() {
        let p = Parameter::new("p", Tensor::from_vec(vec![2], vec![0.0, 0.0]));
        let mut opt = Adam::new(vec![p.clone()], 0.05);
        // Run a couple of real steps so moments and `t` are non-trivial.
        for _ in 0..3 {
            let mut g = crate::graph::Graph::new();
            let pn = g.param(&p);
            let loss = g.sum(pn);
            g.backward(loss);
            opt.step();
        }
        let state = opt.export_state();
        assert_eq!(state.kind, "adam");
        assert_eq!(state.t, 3);
        let decoded = decode_optimizer(&encode_optimizer(&state)).unwrap();
        assert_eq!(decoded, state);

        let q = Parameter::new("q", Tensor::from_vec(vec![2], vec![0.0, 0.0]));
        let mut opt2 = Adam::new(vec![q.clone()], 0.9);
        opt2.import_state(decoded).unwrap();
        assert_eq!(opt2.export_state(), opt.export_state());
    }

    #[test]
    fn optimizer_state_roundtrip_sgd() {
        let p = Parameter::new("p", Tensor::from_slice(&[1.0, 2.0, 3.0]));
        let opt = Sgd::with_momentum(vec![p], 0.1, 0.9);
        let state = opt.export_state();
        assert_eq!(state.kind, "sgd");
        let decoded = decode_optimizer(&encode_optimizer(&state)).unwrap();
        assert_eq!(decoded, state);
    }

    #[test]
    fn optimizer_import_rejects_wrong_kind_and_shape() {
        let p = Parameter::new("p", Tensor::from_slice(&[0.0]));
        let sgd = Sgd::new(vec![p.clone()], 0.1);
        let mut adam = Adam::new(vec![p.clone()], 0.1);
        assert!(adam.import_state(sgd.export_state()).is_err());

        let big = Parameter::new("big", Tensor::from_slice(&[0.0, 0.0]));
        let other = Adam::new(vec![big], 0.1);
        assert!(adam.import_state(other.export_state()).is_err());
    }

    #[test]
    fn atomic_write_replaces_content() {
        let path = temp_path("atomic.bin");
        write_atomic(&path, b"first").unwrap();
        write_atomic(&path, b"second!").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second!");
        // No temp litter left behind.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let n = e.file_name().to_string_lossy().to_string();
                n.contains(&stem) && n.contains(".tmp")
            })
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_file(path).ok();
    }
}

//! Property-based gradient checking: every differentiable op's analytic
//! gradient must match a central finite-difference estimate.

use hero_autograd::{Graph, NodeId, Parameter, Tensor};
use proptest::prelude::*;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

/// Computes the analytic gradient of `build`'s scalar output w.r.t. `p` and
/// compares it element-wise with central finite differences.
fn check_gradient(p: &Parameter, build: impl Fn(&mut Graph, NodeId) -> NodeId) {
    p.zero_grad();
    let mut g = Graph::new();
    let pn = g.param(p);
    let loss = build(&mut g, pn);
    assert_eq!(g.value(loss).len(), 1, "gradcheck losses must be scalar");
    g.backward(loss);
    let analytic: Vec<f32> = p.grad().data().to_vec();

    let base: Vec<f32> = p.value().data().to_vec();
    let shape = p.shape();
    for i in 0..base.len() {
        let mut plus = base.clone();
        plus[i] += EPS;
        p.set_value(Tensor::from_vec(shape.clone(), plus));
        let mut g1 = Graph::new();
        let n1 = g1.param(p);
        let l1 = build(&mut g1, n1);
        let f_plus = g1.value(l1).item();

        let mut minus = base.clone();
        minus[i] -= EPS;
        p.set_value(Tensor::from_vec(shape.clone(), minus));
        let mut g2 = Graph::new();
        let n2 = g2.param(p);
        let l2 = build(&mut g2, n2);
        let f_minus = g2.value(l2).item();

        p.set_value(Tensor::from_vec(shape.clone(), base.clone()));
        let numeric = (f_plus - f_minus) / (2.0 * EPS);
        let denom = 1.0f32.max(analytic[i].abs()).max(numeric.abs());
        assert!(
            (analytic[i] - numeric).abs() / denom < TOL,
            "grad mismatch at {i}: analytic {} vs numeric {numeric}",
            analytic[i]
        );
    }
}

/// Values kept away from kinks (0 for relu/minimum, clamp edges).
fn smooth_values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![(-2.0f32..-0.2), (0.2f32..2.0)].prop_map(|v| (v * 100.0).round() / 100.0),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    fn grad_tanh(vals in smooth_values(6)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 3], vals));
        check_gradient(&p, |g, x| { let y = g.tanh(x); g.sum(y) });
    }

    fn grad_sigmoid(vals in smooth_values(6)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 3], vals));
        check_gradient(&p, |g, x| { let y = g.sigmoid(x); g.sum(y) });
    }

    fn grad_relu(vals in smooth_values(6)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 3], vals));
        check_gradient(&p, |g, x| { let y = g.relu(x); g.sum(y) });
    }

    fn grad_exp(vals in smooth_values(4)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 2], vals));
        check_gradient(&p, |g, x| { let y = g.exp(x); g.sum(y) });
    }

    fn grad_ln_of_positive(vals in prop::collection::vec(0.3f32..3.0, 4)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 2], vals));
        check_gradient(&p, |g, x| { let y = g.ln(x); g.sum(y) });
    }

    fn grad_softplus(vals in smooth_values(6)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 3], vals));
        check_gradient(&p, |g, x| { let y = g.softplus(x); g.sum(y) });
    }

    fn grad_softmax_weighted(vals in smooth_values(8)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 4], vals));
        // Weight the softmax so the gradient is not identically zero.
        check_gradient(&p, |g, x| {
            let y = g.softmax(x);
            let w = g.input(Tensor::from_vec(
                vec![2, 4],
                vec![1.0, -2.0, 3.0, 0.5, -1.0, 2.0, 0.25, 4.0],
            ));
            let wy = g.mul(y, w);
            g.sum(wy)
        });
    }

    fn grad_log_softmax(vals in smooth_values(8)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 4], vals));
        check_gradient(&p, |g, x| {
            let y = g.log_softmax(x);
            let w = g.input(Tensor::from_vec(
                vec![2, 4],
                vec![0.2, 0.8, -0.5, 1.5, 1.0, -1.0, 0.0, 2.0],
            ));
            let wy = g.mul(y, w);
            g.sum(wy)
        });
    }

    fn grad_matmul(vals in smooth_values(6)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 3], vals));
        check_gradient(&p, |g, x| {
            let other = g.input(Tensor::from_vec(
                vec![3, 2],
                vec![0.5, -1.0, 2.0, 0.25, -0.75, 1.5],
            ));
            let y = g.matmul(x, other);
            let sq = g.mul(y, y);
            g.sum(sq)
        });
    }

    fn grad_mul_and_add_chain(vals in smooth_values(4)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 2], vals));
        check_gradient(&p, |g, x| {
            let c = g.input(Tensor::from_vec(vec![2, 2], vec![0.7, -0.3, 1.2, 0.1]));
            let m = g.mul(x, c);
            let a = g.add(m, x);
            let s = g.scale(a, 0.5);
            let t = g.add_scalar(s, 1.0);
            let sq = g.mul(t, t);
            g.mean(sq)
        });
    }

    fn grad_sub_neg(vals in smooth_values(4)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 2], vals));
        check_gradient(&p, |g, x| {
            let c = g.input(Tensor::from_vec(vec![2, 2], vec![0.4, 0.6, -0.2, 0.9]));
            let d = g.sub(x, c);
            let n = g.neg(d);
            let sq = g.mul(n, n);
            g.sum(sq)
        });
    }

    fn grad_add_bias(vals in smooth_values(3)) {
        let p = Parameter::new("bias", Tensor::from_vec(vec![3], vals));
        check_gradient(&p, |g, b| {
            let x = g.input(Tensor::from_vec(
                vec![2, 3],
                vec![0.5, -1.0, 0.25, 1.5, 0.75, -0.5],
            ));
            // add_bias takes (matrix, bias); parameter is the bias here.
            let y = g.add_bias(x, b);
            let sq = g.mul(y, y);
            g.sum(sq)
        });
    }

    fn grad_sum_rows_row_scale(vals in smooth_values(6)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 3], vals));
        check_gradient(&p, |g, x| {
            let w = g.input(Tensor::from_vec(vec![2, 1], vec![1.5, -0.5]));
            let scaled = g.row_scale(x, w);
            let rows = g.sum_rows(scaled);
            let sq = g.mul(rows, rows);
            g.sum(sq)
        });
    }

    fn grad_concat_slice(vals in smooth_values(4)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 2], vals));
        check_gradient(&p, |g, x| {
            let other = g.input(Tensor::from_vec(vec![2, 2], vec![0.3, -0.6, 0.9, 0.1]));
            let cat = g.concat_cols(x, other);
            let left = g.slice_cols(cat, 1..3);
            let sq = g.mul(left, left);
            g.sum(sq)
        });
    }

    fn grad_minimum(vals in smooth_values(4)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 2], vals));
        check_gradient(&p, |g, x| {
            // Offset comparator far from ties so the kink is not sampled.
            let other = g.input(Tensor::from_vec(vec![2, 2], vec![5.0, -5.0, 5.0, -5.0]));
            let m = g.minimum(x, other);
            let sq = g.mul(m, m);
            g.sum(sq)
        });
    }

    fn grad_transpose(vals in smooth_values(6)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 3], vals));
        check_gradient(&p, |g, x| {
            let t = g.transpose(x);
            let w = g.input(Tensor::from_vec(
                vec![3, 2],
                vec![1.0, -0.5, 0.25, 2.0, -1.5, 0.75],
            ));
            let wy = g.mul(t, w);
            g.sum(wy)
        });
    }

    // The next three cases share one node between several consumers, so the
    // backward pass must merge gradients through every `accumulate` path:
    // a == b (in-place doubling), move-into-empty-slot, and add_assign into
    // an occupied slot.
    fn grad_shared_add_self(vals in smooth_values(4)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 2], vals));
        check_gradient(&p, |g, x| {
            let y = g.add(x, x);
            let sq = g.mul(y, y);
            g.sum(sq)
        });
    }

    fn grad_shared_mul_self(vals in smooth_values(4)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 2], vals));
        check_gradient(&p, |g, x| {
            let y = g.mul(x, x);
            g.sum(y)
        });
    }

    fn grad_shared_fanout_three(vals in smooth_values(4)) {
        let p = Parameter::new("p", Tensor::from_vec(vec![2, 2], vals));
        check_gradient(&p, |g, x| {
            let a = g.tanh(x);
            let b = g.sigmoid(x);
            let m = g.mul(a, b);
            let s = g.add(m, x);
            g.sum(s)
        });
    }

    fn grad_conv2d(vals in smooth_values(9)) {
        let p = Parameter::new("img", Tensor::from_vec(vec![1, 1, 3, 3], vals));
        check_gradient(&p, |g, x| {
            let w = g.input(Tensor::from_vec(
                vec![2, 1, 2, 2],
                vec![0.5, -0.25, 1.0, 0.75, -0.5, 0.3, -0.8, 0.2],
            ));
            let b = g.input(Tensor::from_vec(vec![2], vec![0.1, -0.1]));
            let y = g.conv2d(x, w, b, 1, 1);
            let flat = g.reshape(y, vec![1, 2 * 4 * 4]);
            let sq = g.mul(flat, flat);
            g.sum(sq)
        });
    }

    fn grad_conv2d_weights(vals in smooth_values(8)) {
        let p = Parameter::new("w", Tensor::from_vec(vec![2, 1, 2, 2], vals));
        check_gradient(&p, |g, w| {
            let x = g.input(Tensor::from_vec(
                vec![1, 1, 3, 3],
                vec![0.2, -0.4, 0.6, 0.8, -1.0, 1.2, -1.4, 1.6, 0.5],
            ));
            let b = g.input(Tensor::zeros(vec![2]));
            let y = g.conv2d(x, w, b, 1, 0);
            let flat = g.reshape(y, vec![1, 2 * 2 * 2]);
            let sq = g.mul(flat, flat);
            g.sum(sq)
        });
    }
}

//! Property tests for the fast-math GEMM tier (`--features fast-math`).
//!
//! Two contracts from DESIGN.md "Performance → Fast-math tier":
//!
//! 1. **Accuracy**: fast-tier results match an f64-accumulated reference
//!    within `rtol = 1e-4` over ragged shapes — FMA contraction and
//!    blocked-`k` traversal change rounding, not values.
//! 2. **Reproducibility**: the same product yields the same *bytes* every
//!    run, at 1, 2, and 4 GEMM threads — and across thread counts, since
//!    the partition schedule never splits the accumulation chain.
//!
//! The whole file is feature-gated: a default (strict) build compiles it
//! to an empty test binary.
#![cfg(feature = "fast-math")]

use hero_autograd::fastmath::{fast_matmul, fast_matmul_nt, fast_matmul_threaded, fast_matmul_tn};
use hero_autograd::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const RTOL: f64 = 1e-4;

fn filled(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = shape.iter().product();
    Tensor::from_vec(shape, (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

/// `C = A·B` accumulated in f64, the rounding-error yardstick.
fn matmul_f64(a: &Tensor, b: &Tensor) -> Vec<f64> {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let n = b.shape()[1];
    let mut out = vec![0.0f64; m * n];
    for i in 0..m {
        for p in 0..k {
            let a_ip = a.data()[i * k + p] as f64;
            for j in 0..n {
                out[i * n + j] += a_ip * b.data()[p * n + j] as f64;
            }
        }
    }
    out
}

fn assert_close(fast: &Tensor, reference: &[f64], what: &str) {
    assert_eq!(fast.data().len(), reference.len(), "{what}: length");
    for (idx, (&f, &r)) in fast.data().iter().zip(reference).enumerate() {
        let err = (f as f64 - r).abs();
        let tol = RTOL * r.abs().max(1.0);
        assert!(
            err <= tol,
            "{what}: element {idx} off by {err:.3e} (tol {tol:.3e}): fast={f} ref={r}"
        );
    }
}

fn transposed(t: &Tensor) -> Tensor {
    let (r, c) = (t.shape()[0], t.shape()[1]);
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = t.data()[i * c + j];
        }
    }
    Tensor::from_vec(vec![c, r], out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// NN/NT/TN fast products all match the f64 reference on ragged
    /// shapes (deliberately spanning the MR/NR/KC/MC edge cases).
    #[test]
    fn fast_gemm_matches_f64_reference(
        m in 1usize..70,
        k in 1usize..70,
        n in 1usize..70,
        seed in 0u64..1_000,
    ) {
        let a = filled(vec![m, k], seed);
        let b = filled(vec![k, n], seed.wrapping_add(1));
        let reference = matmul_f64(&a, &b);
        assert_close(&fast_matmul(&a, &b), &reference, "nn");
        assert_close(&fast_matmul_nt(&a, &transposed(&b)), &reference, "nt");
        assert_close(&fast_matmul_tn(&transposed(&a), &b), &reference, "tn");
    }
}

/// Shapes crossing every blocking boundary: partial MR/NR tiles, multiple
/// KC blocks, multiple MC row blocks.
const RAGGED: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (3, 5, 7),
    (4, 32, 32),
    (5, 33, 31),
    (63, 257, 65),
    (65, 130, 70),
    (128, 300, 96),
    (256, 64, 100),
];

#[test]
fn fast_gemm_matches_reference_on_blocking_boundaries() {
    for &(m, k, n) in RAGGED {
        let a = filled(vec![m, k], 42);
        let b = filled(vec![k, n], 43);
        let reference = matmul_f64(&a, &b);
        assert_close(&fast_matmul(&a, &b), &reference, &format!("nn {m}x{k}x{n}"));
        assert_close(
            &fast_matmul_nt(&a, &transposed(&b)),
            &reference,
            &format!("nt {m}x{k}x{n}"),
        );
        assert_close(
            &fast_matmul_tn(&transposed(&a), &b),
            &reference,
            &format!("tn {m}x{k}x{n}"),
        );
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// Run-to-run reproducibility at 1/2/4 GEMM threads: the same product
/// must produce the same bytes on every repetition — and, because the
/// partition schedule never splits the inner dimension, the bytes are
/// identical *across* thread budgets too.
#[test]
fn fast_gemm_reproducible_at_1_2_4_threads() {
    // Big enough to clear the PAR_MIN_FLOPS threading threshold and span
    // several MC row blocks; ragged in every dimension.
    let (m, k, n) = (257, 300, 130);
    let a = filled(vec![m, k], 7);
    let b = filled(vec![k, n], 8);
    let reference = bits(&fast_matmul_threaded(&a, &b, 1));
    for threads in [1usize, 2, 4] {
        for rep in 0..3 {
            let got = bits(&fast_matmul_threaded(&a, &b, threads));
            assert_eq!(
                got, reference,
                "threads={threads} rep={rep}: fast-math bytes must not vary"
            );
        }
    }
}

/// Degenerate shapes: empty inner dimension yields exact zeros.
#[test]
fn fast_gemm_zero_k_is_zero() {
    let a = Tensor::from_vec(vec![3, 0], vec![]);
    let b = Tensor::from_vec(vec![0, 4], vec![]);
    let out = fast_matmul(&a, &b);
    assert_eq!(out.shape(), &[3, 4]);
    assert!(out.data().iter().all(|&v| v == 0.0));
}

//! Property tests for the step-diagnostics layer: gradient statistics
//! against a naive f64 reference, and update-to-weight ratio invariants.

use hero_autograd::diagnostics::{grad_health, StepDiagnostics};
use hero_autograd::optim::{Optimizer, Sgd};
use hero_autograd::{Graph, Parameter, Tensor};
use hero_telemetry as telemetry;
use proptest::prelude::*;

/// Seeds `p`'s gradient with exactly `seed` via `d/dp sum(p ⊙ seed)`.
fn seed_grad(p: &Parameter, seed: &[f32]) {
    let mut g = Graph::new();
    let pn = g.param(p);
    let x = g.input(Tensor::from_vec(vec![1, seed.len()], seed.to_vec()));
    let prod = g.mul(pn, x);
    let loss = g.sum(prod);
    g.backward(loss);
}

fn naive_l2(xs: &[f32]) -> f64 {
    xs.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>().sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// grad_health norms match a naive f64 reference over random tensors.
    fn grad_norms_match_naive_reference(
        weights in prop::collection::vec(-10.0f32..10.0, 1..24),
        grads in prop::collection::vec(-10.0f32..10.0, 1..24),
    ) {
        let n = weights.len().min(grads.len());
        let (weights, grads) = (&weights[..n], &grads[..n]);
        let p = Parameter::new("w", Tensor::from_vec(vec![1, n], weights.to_vec()));
        seed_grad(&p, grads);
        let h = grad_health(&p);
        let ref_l2 = naive_l2(grads);
        let ref_linf = grads.iter().fold(0.0f64, |m, &g| m.max((g as f64).abs()));
        prop_assert!((h.grad_l2 - ref_l2).abs() <= 1e-4 * (1.0 + ref_l2), "{} vs {ref_l2}", h.grad_l2);
        prop_assert!((h.grad_linf - ref_linf).abs() <= 1e-5 * (1.0 + ref_linf));
        let ref_w = naive_l2(weights);
        prop_assert!((h.weight_l2 - ref_w).abs() <= 1e-4 * (1.0 + ref_w));
        prop_assert_eq!(h.nonfinite, 0);
    }

    /// Non-finite entries are counted exactly and excluded from the norms.
    fn nonfinite_counted_and_excluded(
        grads in prop::collection::vec(-5.0f32..5.0, 1..24),
        stride in 1usize..5,
    ) {
        // Every `stride`-th entry becomes NaN.
        let realized: Vec<f32> = grads
            .iter()
            .enumerate()
            .map(|(i, &g)| if i % stride == 0 { f32::NAN } else { g })
            .collect();
        let p = Parameter::new("w", Tensor::from_vec(vec![1, realized.len()], vec![1.0; realized.len()]));
        seed_grad(&p, &realized);
        let h = grad_health(&p);
        let finite: Vec<f32> = realized.iter().copied().filter(|g| g.is_finite()).collect();
        prop_assert_eq!(h.nonfinite, (realized.len() - finite.len()) as u64);
        let ref_l2 = naive_l2(&finite);
        prop_assert!(h.grad_l2.is_finite());
        prop_assert!((h.grad_l2 - ref_l2).abs() <= 1e-4 * (1.0 + ref_l2));
    }

    /// For plain SGD the update is exactly `lr·g`, so the recorded
    /// update-to-weight ratio must equal `lr·‖g‖ / ‖w_pre‖` — and is
    /// always finite and non-negative.
    fn sgd_update_ratio_matches_lr_times_grad_norm(
        weights in prop::collection::vec(0.5f32..8.0, 2..12),
        grads in prop::collection::vec(-4.0f32..4.0, 2..12),
        lr in 1e-4f32..0.5,
    ) {
        let n = weights.len().min(grads.len());
        let (weights, grads) = (&weights[..n], &grads[..n]);
        let t = telemetry::scoped(telemetry::TelemetryConfig::default());
        let p = Parameter::new("w", Tensor::from_vec(vec![1, n], weights.to_vec()));
        let mut opt = Sgd::new(vec![p.clone()], lr);
        opt.set_diagnostics(StepDiagnostics::named("prop"));
        seed_grad(&p, grads);
        opt.step();
        let snap = t.snapshot();
        let ratio = snap.values["update_ratio/prop/w"].mean;
        prop_assert!(ratio.is_finite() && ratio >= 0.0);
        let expected = lr as f64 * naive_l2(grads) / naive_l2(weights);
        prop_assert!(
            (ratio - expected).abs() <= 1e-3 * (1.0 + expected),
            "ratio {ratio} vs expected {expected}"
        );
        // The same step also recorded the matching grad/weight norms.
        let gn = snap.values["grad_norm/prop/w"].mean;
        prop_assert!((gn - naive_l2(grads)).abs() <= 1e-4 * (1.0 + naive_l2(grads)));
    }
}

//! Property tests for corrupted-checkpoint handling: arbitrary bit flips
//! and truncations of a valid v2 file must either load the original
//! contents exactly or fail with a typed [`CheckpointError`] — never a
//! panic, an out-of-bounds allocation, or silently wrong weights.

use hero_autograd::serialize::{load_params, save_params};
use hero_autograd::{Parameter, Tensor};
use proptest::prelude::*;

fn fresh_params(tag: &str) -> Vec<Parameter> {
    vec![
        Parameter::new(
            format!("{tag}/w"),
            Tensor::from_vec(vec![3, 4], (0..12).map(|v| v as f32 * 0.5 - 3.0).collect()),
        ),
        Parameter::new(format!("{tag}/b"), Tensor::from_vec(vec![4], vec![1.0, -1.0, 2.0, -2.0])),
    ]
}

fn zeros_like(params: &[Parameter]) -> Vec<Parameter> {
    params
        .iter()
        .map(|p| Parameter::new(p.name(), Tensor::zeros(p.shape().to_vec())))
        .collect()
}

fn temp_path(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hero_corrupt_prop_{}_{tag}.ckpt", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Flipping any single bit of a v2 checkpoint is detected by the CRC
    /// footer (or earlier structural checks); a successful load implies
    /// the weights are bit-identical to the original.
    fn single_bitflip_never_corrupts_silently(
        byte_frac in 0.0f32..1.0,
        bit in 0u8..8,
    ) {
        let original = fresh_params("flip");
        let path = temp_path((byte_frac * 1e6) as u64 * 8 + bit as u64);
        save_params(&path, &original).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = ((bytes.len() - 1) as f32 * byte_frac) as usize;
        bytes[idx] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();

        let target = zeros_like(&original);
        match load_params(&path, &target) {
            Ok(()) => {
                // Only possible if the flip was undone or harmless; the
                // loaded values must equal the originals exactly.
                for (o, t) in original.iter().zip(&target) {
                    let (ov, tv) = (o.value(), t.value());
                    prop_assert_eq!(ov.data(), tv.data());
                }
            }
            Err(e) => {
                // Typed error: the model must be untouched.
                let _ = e.to_string();
                for t in &target {
                    prop_assert!(t.value().data().iter().all(|&v| v == 0.0));
                }
            }
        }
        std::fs::remove_file(path).ok();
    }

    /// Truncating a v2 checkpoint at any point fails cleanly and leaves
    /// the in-memory parameters untouched.
    fn truncation_fails_cleanly(cut_frac in 0.0f32..1.0) {
        let original = fresh_params("cut");
        let path = temp_path(1_000_000 + (cut_frac * 1e6) as u64);
        save_params(&path, &original).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() - 1) as f32 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();

        let target = zeros_like(&original);
        let err = load_params(&path, &target).unwrap_err();
        let _ = err.to_string();
        for t in &target {
            prop_assert!(t.value().data().iter().all(|&v| v == 0.0), "partial load");
        }
        std::fs::remove_file(path).ok();
    }

    /// Overwriting the tail with random garbage (a torn write) is caught.
    fn garbage_tail_fails_cleanly(
        tail_frac in 0.05f32..0.6,
        fill in 0u8..255,
    ) {
        let original = fresh_params("tail");
        let path = temp_path(2_000_000 + (tail_frac * 1e4) as u64 * 256 + fill as u64);
        save_params(&path, &original).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let start = bytes.len() - ((bytes.len() as f32 * tail_frac) as usize).max(1);
        for b in &mut bytes[start..] {
            *b = fill;
        }
        std::fs::write(&path, &bytes).unwrap();

        let target = zeros_like(&original);
        match load_params(&path, &target) {
            Ok(()) => {
                for (o, t) in original.iter().zip(&target) {
                    let (ov, tv) = (o.value(), t.value());
                    prop_assert_eq!(ov.data(), tv.data());
                }
            }
            Err(_) => {
                for t in &target {
                    prop_assert!(t.value().data().iter().all(|&v| v == 0.0));
                }
            }
        }
        std::fs::remove_file(path).ok();
    }
}

//! Property tests for the optimizers and checkpoint robustness.

use hero_autograd::optim::{clip_grad_norm, Adam, Optimizer, Sgd};
use hero_autograd::serialize::{load_params, save_params};
use hero_autograd::{CheckpointError, Graph, Parameter, Tensor};
use proptest::prelude::*;

/// One gradient step of `loss(p) = ||p − target||²`.
fn quadratic_grad(p: &Parameter, target: &[f32]) -> f32 {
    let mut g = Graph::new();
    let pn = g.param(p);
    let t = g.input(Tensor::from_vec(vec![1, target.len()], target.to_vec()));
    let d = g.sub(pn, t);
    let sq = g.mul(d, d);
    let loss = g.sum(sq);
    let v = g.value(loss).item();
    g.backward(loss);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// SGD with a small learning rate never increases a convex quadratic.
    fn sgd_monotone_on_quadratic(
        start in prop::collection::vec(-3.0f32..3.0, 3),
        target in prop::collection::vec(-3.0f32..3.0, 3),
    ) {
        let p = Parameter::new("p", Tensor::from_vec(vec![1, 3], start));
        let mut opt = Sgd::new(vec![p.clone()], 0.05);
        let mut prev = f32::INFINITY;
        for _ in 0..50 {
            let loss = quadratic_grad(&p, &target);
            prop_assert!(loss <= prev + 1e-4, "loss increased: {prev} -> {loss}");
            prev = loss;
            opt.step();
        }
    }

    /// Adam converges to the quadratic's minimum from any start.
    fn adam_converges_on_quadratic(
        start in prop::collection::vec(-3.0f32..3.0, 3),
        target in prop::collection::vec(-3.0f32..3.0, 3),
    ) {
        let p = Parameter::new("p", Tensor::from_vec(vec![1, 3], start));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        for _ in 0..400 {
            quadratic_grad(&p, &target);
            opt.step();
        }
        for (v, t) in p.value().data().iter().zip(&target) {
            prop_assert!((v - t).abs() < 0.1, "{v} vs {t}");
        }
    }

    /// After clipping, the global gradient norm never exceeds the bound.
    fn clip_bounds_global_norm(
        grads in prop::collection::vec(-50.0f32..50.0, 4),
        max_norm in 0.1f32..5.0,
    ) {
        let p = Parameter::new("p", Tensor::zeros(vec![1, 4]));
        // Seed gradients through a weighted-sum graph.
        let mut g = Graph::new();
        let pn = g.param(&p);
        let w = g.input(Tensor::from_vec(vec![1, 4], grads));
        let prod = g.mul(pn, w);
        let loss = g.sum(prod);
        g.backward(loss);
        clip_grad_norm(&[p.clone()], max_norm);
        let norm: f32 = p.grad().data().iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm <= max_norm + 1e-3, "norm {norm} > {max_norm}");
    }

    /// Loading a truncated checkpoint reports a typed corruption error
    /// (a truncated v2 file usually fails its CRC footer check) — never a
    /// panic and never silent success.
    fn truncated_checkpoints_fail_loudly(cut_fraction in 0.05f32..0.95) {
        let p = Parameter::new("weights", Tensor::from_vec(
            vec![4, 4],
            (0..16).map(|v| v as f32).collect(),
        ));
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "hero_truncate_{}_{}.bin",
            std::process::id(),
            (cut_fraction * 1000.0) as u32
        ));
        save_params(&path, &[p.clone()]).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f32 * cut_fraction) as usize).max(4);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let fresh = Parameter::new("weights", Tensor::zeros(vec![4, 4]));
        let err = load_params(&path, &[fresh]).unwrap_err();
        prop_assert!(matches!(
            err,
            CheckpointError::Truncated
                | CheckpointError::ParameterMismatch { .. }
                | CheckpointError::CorruptedCrc { .. }
                | CheckpointError::Malformed(_)
        ), "unexpected error: {err}");
        std::fs::remove_file(path).ok();
    }
}

//! Arena lifecycle: a persistent [`Graph`] recycled with `reset()` across
//! minibatches must reach a steady state — no per-minibatch heap growth,
//! no new pool misses once every shape of the step has been seen.

use hero_autograd::nn::Linear;
use hero_autograd::{loss, Graph, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One training step shaped like the HERO policy update: fresh input clone,
/// two-layer MLP forward, MSE loss, backward.
fn step(g: &mut Graph, l1: &Linear, l2: &Linear, x: &Tensor, t: &Tensor) -> f32 {
    g.reset();
    let xin = g.input(x.clone());
    let h = l1.forward(g, xin);
    let h = g.relu(h);
    let y = l2.forward(g, h);
    let tgt = g.input(t.clone());
    let l = loss::mse(g, y, tgt);
    g.backward(l);
    g.value(l).item()
}

#[test]
fn pool_capacity_plateaus_across_minibatches() {
    let mut rng = StdRng::seed_from_u64(11);
    let l1 = Linear::new("l1", 24, 16, &mut rng);
    let l2 = Linear::new("l2", 16, 4, &mut rng);
    let x = Tensor::from_vec(vec![32, 24], (0..32 * 24).map(|i| (i as f32).sin()).collect());
    let t = Tensor::from_vec(vec![32, 4], (0..32 * 4).map(|i| (i as f32).cos()).collect());

    let mut g = Graph::new();
    // Warm-up: let the pool learn every capacity class the step touches and
    // let the externally-allocated input-clone buckets fill to their cap.
    for _ in 0..24 {
        step(&mut g, &l1, &l2, &x, &t);
    }
    let held_after_warmup = g.pool_held();
    let (_, misses_after_warmup) = g.pool_stats();

    // Steady state: held buffers and misses must not creep upward.
    let mut held_seen = Vec::new();
    for _ in 0..64 {
        step(&mut g, &l1, &l2, &x, &t);
        held_seen.push(g.pool_held());
    }
    let (_, misses_final) = g.pool_stats();

    assert_eq!(
        misses_final, misses_after_warmup,
        "steady-state minibatches allocated fresh buffers (pool misses grew)"
    );
    let max_held = *held_seen.iter().max().unwrap();
    assert!(
        max_held <= held_after_warmup,
        "pool grew after warm-up: held {held_after_warmup} -> {max_held}"
    );
}

#[test]
fn pool_buckets_are_bounded() {
    // Feeding many same-sized external buffers into a graph's pool (the
    // input-clone pattern) must not grow it without bound: each capacity
    // class is capped at TensorPool::MAX_PER_BUCKET.
    let mut g = Graph::new();
    for round in 0..256 {
        g.reset();
        for _ in 0..4 {
            g.input(Tensor::from_vec(vec![8, 8], vec![1.0; 64]));
        }
        if round == 16 {
            // Sample once the cap is reached.
            let baseline = g.pool_held();
            assert!(baseline > 0, "pool never retained anything");
        }
    }
    g.reset();
    assert!(
        g.pool_held() <= 16,
        "pool held {} buffers for a 4-input workload — bucket cap not enforced",
        g.pool_held()
    );
}

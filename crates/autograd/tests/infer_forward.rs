//! Contracts of the inference-only forward path (`Mlp::infer_in`).
//!
//! 1. **Graph equivalence**: under strict kernels the pooled, tape-free
//!    forward is bitwise identical to [`Mlp::infer`] (which records a
//!    throwaway graph) for every activation.
//! 2. **Batch equivalence**: a `[N, in]` batched forward equals the `N`
//!    single-row forwards bit-for-bit in strict mode — each output
//!    element's ascending-`p` accumulation chain is independent of the
//!    batch size — and rtol-close under the fast-math tier (same
//!    methodology as the batched-rollout equivalence suite).
//! 3. **Arena behaviour**: after a warm-up call the pool stops missing —
//!    steady-state inference allocates nothing.
//!
//! Tests that read or flip the process-global kernel mode serialize on a
//! file-local lock so the strict bitwise assertions can't race a
//! fast-mode test.

use std::sync::Mutex;

use hero_autograd::nn::{Activation, Mlp, Module};
use hero_autograd::serialize::{decode_param_table, encode_params};
use hero_autograd::{Tensor, TensorPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

static MODE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    MODE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn filled(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = shape.iter().product();
    Tensor::from_vec(shape, (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

#[test]
fn infer_in_matches_graph_infer_bitwise() {
    let _guard = lock();
    for (seed, act) in [
        (11, Activation::Relu),
        (12, Activation::Tanh),
        (13, Activation::Sigmoid),
        (14, Activation::Identity),
    ] {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = Mlp::new("t", &[7, 32, 32, 5], act, &mut rng);
        let x = filled(vec![9, 7], seed + 100);
        let via_graph = net.infer(&x);
        let mut pool = TensorPool::new();
        let direct = net.infer_in(&x, &mut pool);
        assert_eq!(via_graph.shape(), direct.shape());
        for (a, b) in via_graph.data().iter().zip(direct.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "activation {act:?} diverged");
        }
    }
}

#[test]
fn batched_infer_matches_single_rows_bitwise() {
    let _guard = lock();
    let mut rng = StdRng::seed_from_u64(21);
    let net = Mlp::new("t", &[13, 32, 32, 4], Activation::Relu, &mut rng);
    let batch = filled(vec![17, 13], 22);
    let mut pool = TensorPool::new();
    let batched = net.infer_in(&batch, &mut pool);
    for r in 0..17 {
        let single = Tensor::from_vec(vec![1, 13], batch.row(r).to_vec());
        let out = net.infer_in(&single, &mut pool);
        for (a, b) in batched.row(r).iter().zip(out.data()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "row {r} of the batched forward diverged from the single-row forward"
            );
        }
        pool.put(out.into_data());
    }
}

/// Fast-math tier: batching may regroup the accumulation (blocked-`k`,
/// FMA), so the contract relaxes to rtol-closeness against the
/// single-row forwards.
#[cfg(feature = "fast-math")]
#[test]
fn batched_infer_rtol_close_in_fast_mode() {
    let _guard = lock();
    let prev = hero_autograd::kernel_mode();
    hero_autograd::set_kernel_mode(hero_autograd::KernelMode::Fast)
        .expect("fast-math build must accept fast mode");
    let mut rng = StdRng::seed_from_u64(31);
    let net = Mlp::new("t", &[13, 64, 64, 4], Activation::Relu, &mut rng);
    let batch = filled(vec![17, 13], 32);
    let mut pool = TensorPool::new();
    let batched = net.infer_in(&batch, &mut pool);
    for r in 0..17 {
        let single = Tensor::from_vec(vec![1, 13], batch.row(r).to_vec());
        let out = net.infer_in(&single, &mut pool);
        for (a, b) in batched.row(r).iter().zip(out.data()) {
            let tol = 1e-4 * a.abs().max(b.abs()).max(1.0);
            assert!(
                (a - b).abs() <= tol,
                "row {r}: {a} vs {b} beyond rtol in fast mode"
            );
        }
        pool.put(out.into_data());
    }
    hero_autograd::set_kernel_mode(prev).expect("restoring prior kernel mode");
}

#[test]
fn infer_in_reuses_the_pool_after_warmup() {
    let _guard = lock();
    let mut rng = StdRng::seed_from_u64(41);
    let net = Mlp::new("t", &[8, 32, 32, 3], Activation::Relu, &mut rng);
    let x = filled(vec![5, 8], 42);
    let mut pool = TensorPool::new();
    let out = net.infer_in(&x, &mut pool);
    pool.put(out.into_data());
    let (_, misses_after_warmup) = pool.stats();
    for _ in 0..10 {
        let out = net.infer_in(&x, &mut pool);
        pool.put(out.into_data());
    }
    let (_, misses) = pool.stats();
    assert_eq!(
        misses, misses_after_warmup,
        "steady-state inference must not allocate"
    );
}

#[test]
fn decode_param_table_roundtrips_without_a_template() {
    let mut rng = StdRng::seed_from_u64(51);
    let net = Mlp::new("actor", &[6, 16, 4], Activation::Relu, &mut rng);
    let params = net.parameters();
    let bytes = encode_params(&params);
    let table = decode_param_table(&bytes).expect("valid table must decode");
    assert_eq!(table.len(), params.len());
    for (entry, p) in table.iter().zip(&params) {
        assert_eq!(entry.name, p.name());
        assert_eq!(entry.shape, p.shape());
        assert_eq!(entry.data, p.value().data());
    }
    assert_eq!(table[0].name, "actor.l0.weight");
    assert_eq!(table[0].shape, vec![6, 16]);
}

#[test]
fn decode_param_table_rejects_truncation_and_trailing_bytes() {
    let mut rng = StdRng::seed_from_u64(61);
    let net = Mlp::new("n", &[3, 4], Activation::Relu, &mut rng);
    let bytes = encode_params(&net.parameters());
    assert!(decode_param_table(&bytes[..bytes.len() - 2]).is_err());
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(decode_param_table(&padded).is_err());
}

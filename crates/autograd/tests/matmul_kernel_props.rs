//! Property tests for the tiled matmul kernels: across randomized — and
//! deliberately ragged — shapes, the register-tiled `matmul`, the fused
//! `matmul_nt` (A·Bᵀ) and `matmul_tn` (Aᵀ·B), and the sparse entry point
//! must all agree with an f64-accumulated reference within 1e-5.
//!
//! Shapes are drawn past the kernel's tile sizes (MR = 4 rows, NR = 32
//! columns) so full tiles, row tails, column tails, and tiny degenerate
//! shapes are all exercised.

use hero_autograd::{matmul, matmul_nt, matmul_sparse_lhs, matmul_tn, Tensor};
use proptest::prelude::*;

const TOL: f32 = 1e-5;

/// Reference GEMM with f64 accumulation — deliberately a different
/// accumulation order and precision than any production kernel.
fn reference(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += a[i * k + p] as f64 * b[p * n + j] as f64;
            }
            out[i * n + j] = acc as f32;
        }
    }
    out
}

fn transpose(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut t = vec![0.0f32; rows * cols];
    for i in 0..rows {
        for j in 0..cols {
            t[j * rows + i] = x[i * cols + j];
        }
    }
    t
}

fn assert_close(got: &Tensor, want: &[f32], what: &str, m: usize, k: usize, n: usize) {
    assert_eq!(got.data().len(), want.len(), "{what} {m}x{k}x{n}: length");
    for (idx, (&g, &w)) in got.data().iter().zip(want).enumerate() {
        let denom = 1.0f32.max(g.abs()).max(w.abs());
        assert!(
            (g - w).abs() / denom < TOL,
            "{what} {m}x{k}x{n} at {idx}: got {g}, want {w}"
        );
    }
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    // Past MR=4 and NR=32 in every dimension, plus the degenerate 1s.
    (1usize..42, 1usize..20, 1usize..71)
}

fn values(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-2.0f32..2.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    fn tiled_matmul_matches_reference((m, k, n) in dims(), raw in values(41 * 19 + 19 * 70)) {
        let av = raw[..m * k].to_vec();
        let bv = raw[raw.len() - k * n..].to_vec();
        let want = reference(&av, &bv, m, k, n);
        let a = Tensor::from_vec(vec![m, k], av);
        let b = Tensor::from_vec(vec![k, n], bv);
        assert_close(&matmul(&a, &b), &want, "matmul", m, k, n);
    }

    fn matmul_nt_matches_reference((m, k, n) in dims(), raw in values(41 * 19 + 19 * 70)) {
        // matmul_nt(a, b) computes A[m,k] · (B[n,k])ᵀ.
        let av = raw[..m * k].to_vec();
        let bv = raw[raw.len() - n * k..].to_vec();
        let want = reference(&av, &transpose(&bv, n, k), m, k, n);
        let a = Tensor::from_vec(vec![m, k], av);
        let b = Tensor::from_vec(vec![n, k], bv);
        assert_close(&matmul_nt(&a, &b), &want, "matmul_nt", m, k, n);
    }

    fn matmul_tn_matches_reference((m, k, n) in dims(), raw in values(19 * 41 + 19 * 70)) {
        // matmul_tn(a, b) computes (A[k,m])ᵀ · B[k,n].
        let av = raw[..k * m].to_vec();
        let bv = raw[raw.len() - k * n..].to_vec();
        let want = reference(&transpose(&av, k, m), &bv, m, k, n);
        let a = Tensor::from_vec(vec![k, m], av);
        let b = Tensor::from_vec(vec![k, n], bv);
        assert_close(&matmul_tn(&a, &b), &want, "matmul_tn", m, k, n);
    }

    fn sparse_entry_point_is_bit_identical_to_dense((m, k, n) in dims(), raw in values(41 * 19 + 19 * 70), zero_rows in 0usize..4) {
        // matmul_sparse_lhs keeps the zero-skip fast path; on the same
        // inputs it must agree with the dense kernel bit for bit, because
        // both accumulate each output element in ascending-p order.
        let mut av = raw[..m * k].to_vec();
        for r in 0..zero_rows.min(m) {
            av[r * k..(r + 1) * k].fill(0.0);
        }
        let bv = raw[raw.len() - k * n..].to_vec();
        let a = Tensor::from_vec(vec![m, k], av);
        let b = Tensor::from_vec(vec![k, n], bv);
        let dense = matmul(&a, &b);
        let sparse = matmul_sparse_lhs(&a, &b);
        for (idx, (x, y)) in dense.data().iter().zip(sparse.data()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "sparse/dense divergence {m}x{k}x{n} at {idx}: {x} vs {y}"
            );
        }
    }
}

//! Lightweight training telemetry for the HERO reproduction.
//!
//! The subsystem provides four primitives:
//!
//! * **Scoped span timers** — [`span`] returns an RAII guard; nested guards
//!   build a per-thread span stack whose names are joined with `/` into a
//!   span path (e.g. `trainer/rollout/env_step`). Durations feed streaming
//!   histograms with p50/p95/p99.
//! * **Monotonic counters** — [`counter_add`] accumulates named `u64`
//!   totals (env steps, gradient updates, transitions sampled). Snapshots
//!   derive throughput gauges (`total / elapsed`, i.e. steps/sec).
//! * **Streaming value histograms** — [`observe`] records free-form scalars
//!   (rewards, losses) with bounded memory.
//! * **Emitters** — [`flush`] writes `telemetry.jsonl`, `counters.csv`,
//!   `spans.csv`, and a `BENCH_telemetry.json` summary; [`progress`] prints
//!   a rate-limited human-readable line to stderr. When
//!   [`TelemetryConfig::trace_out`] is set, the span guards additionally
//!   record Chrome trace events and [`flush`] writes a Perfetto-loadable
//!   `trace.json` (see [`trace`]).
//! * **The live observability plane** — [`gauge_set`] / [`live_observe`]
//!   record instantaneous rollout state and wall-clock latencies under the
//!   `live/` namespace, [`flight_event`] appends structured events to a
//!   lock-free flight recorder ([`ring`]), and [`exporter::serve`] exposes
//!   the whole registry over HTTP (`/metrics` Prometheus, `/snapshot`
//!   JSONL) for mid-run scraping. The live plane is excluded from
//!   checkpoint state and golden diffs: it describes the process, not the
//!   training run, so instrumenting or scraping a run never perturbs its
//!   bit-exact determinism.
//!
//! ## Enabling
//!
//! Telemetry is **disabled by default** and all record paths compile down
//! to a single relaxed atomic load when disabled — instrumented hot loops
//! pay near-zero overhead. Enable it either:
//!
//! * process-wide: `let _guard = telemetry::install(cfg);` (flushes and
//!   uninstalls on drop), or
//! * per-thread: `let _guard = telemetry::scoped(cfg);` — used by tests so
//!   concurrently running `cargo test` threads cannot cross-contaminate
//!   each other's registries. A thread-scoped registry shadows the global
//!   one on that thread only.
//!
//! The crate is re-exported as `hero_rl::telemetry`, and depended on
//! directly by `hero-sim` (which sits below `hero-rl` in the crate graph).

#![warn(missing_docs)]

pub mod emit;
pub mod exporter;
pub mod histogram;
pub mod http;
pub mod registry;
pub mod ring;
pub mod trace;

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

pub use histogram::{HistogramState, HistogramStats, StreamingHistogram};
pub use registry::{CounterStats, Registry, RegistryState, Snapshot, TelemetryConfig};
pub use ring::{FlightEvent, FlightEventKind, FlightRing};
pub use trace::{TraceEvent, TracePhase};

/// Count of live sinks (global installs + scoped registries across all
/// threads). `0` means every record path returns after one relaxed load.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

static GLOBAL: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

thread_local! {
    /// Thread-scoped registry override (innermost last).
    static SCOPED: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
    /// Stack of active span names on this thread.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// When set, record calls on this thread are diverted into this buffer
    /// instead of the registry; see [`begin_capture`].
    static CAPTURE: RefCell<Option<CaptureState>> = const { RefCell::new(None) };
}

struct CaptureState {
    /// Span-stack depth when capture began: captured span paths are
    /// relative to this base, so replaying re-roots them correctly.
    base_depth: usize,
    events: Vec<CapturedEvent>,
}

/// One telemetry event diverted by capture mode (see [`begin_capture`]),
/// replayable into a registry in a caller-chosen order via [`replay`].
#[derive(Clone, Debug, PartialEq)]
pub enum CapturedEvent {
    /// A [`counter_add`] call.
    Counter(&'static str, u64),
    /// An [`observe`]/[`observe_dyn`] call.
    Value(String, f64),
    /// A completed span: its `/`-joined path *relative to the capturing
    /// thread's stack* and the measured duration.
    Span(String, std::time::Duration),
}

/// Diverts all subsequent record calls **on this thread** into an ordered
/// buffer instead of the registry, until [`take_capture`] is called.
///
/// This is the worker-thread half of deterministic parallelism: each
/// worker captures its events locally, and the coordinating thread
/// [`replay`]s the buffers in a fixed order so counter totals and value
/// histograms are bit-identical to a sequential run regardless of thread
/// interleaving. While capturing, [`is_enabled`] reports `true` so
/// metric-producing code stays on the instrumented path.
pub fn begin_capture() {
    let base_depth = SPAN_STACK.with(|s| s.borrow().len());
    CAPTURE.with(|c| {
        *c.borrow_mut() = Some(CaptureState {
            base_depth,
            events: Vec::new(),
        });
    });
}

/// Ends capture mode on this thread and returns the buffered events in
/// record order. Returns an empty buffer when capture was never begun.
pub fn take_capture() -> Vec<CapturedEvent> {
    CAPTURE
        .with(|c| c.borrow_mut().take())
        .map(|s| s.events)
        .unwrap_or_default()
}

fn capturing() -> bool {
    CAPTURE.with(|c| c.borrow().is_some())
}

fn capture_base_depth() -> usize {
    CAPTURE.with(|c| c.borrow().as_ref().map_or(0, |s| s.base_depth))
}

fn capture_event(e: CapturedEvent) -> bool {
    CAPTURE.with(|c| match c.borrow_mut().as_mut() {
        Some(state) => {
            state.events.push(e);
            true
        }
        None => false,
    })
}

/// Commits events captured on a worker thread (see [`begin_capture`]) into
/// the registry visible to *this* thread. Span paths are re-rooted under
/// this thread's currently active span stack, so a span captured as
/// `actor_critic` inside an active `update` span lands as
/// `update/actor_critic` — exactly the path a sequential run records.
pub fn replay(events: Vec<CapturedEvent>) {
    if disabled() || events.is_empty() {
        return;
    }
    let prefix = SPAN_STACK.with(|s| s.borrow().join("/"));
    let _ = with_registry(|r| {
        for e in &events {
            match e {
                CapturedEvent::Counter(name, n) => r.counter_add(name, *n),
                CapturedEvent::Value(name, v) => r.observe(name, *v),
                CapturedEvent::Span(path, duration) => {
                    let full = if prefix.is_empty() {
                        path.clone()
                    } else {
                        format!("{prefix}/{path}")
                    };
                    r.record_span(full, *duration);
                }
            }
        }
    });
}

/// True when no telemetry sink is active anywhere — the fast path every
/// instrumentation site checks first.
#[inline(always)]
pub fn disabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) == 0
}

/// True when a sink is active *for the calling thread* (a thread-scoped
/// registry, or the process-global one).
pub fn is_enabled() -> bool {
    !disabled() && (capturing() || with_registry(|_| ()).is_some())
}

/// Runs `f` against the innermost registry visible to this thread:
/// the top of the thread-scoped stack if any, else the global install.
fn with_registry<R>(f: impl FnOnce(&Registry) -> R) -> Option<R> {
    let scoped = SCOPED.with(|s| s.borrow().last().cloned());
    if let Some(r) = scoped {
        return Some(f(&r));
    }
    let global = GLOBAL.read().clone();
    global.map(|r| f(&r))
}

/// Installs `cfg` as the process-global telemetry sink. The returned guard
/// flushes emitter outputs (when `cfg.out_dir` is set) and uninstalls the
/// sink when dropped. Replaces any previous global install.
#[must_use = "telemetry uninstalls when the guard drops"]
pub fn install(cfg: TelemetryConfig) -> InstallGuard {
    let registry = Arc::new(Registry::new(cfg));
    *GLOBAL.write() = Some(Arc::clone(&registry));
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    InstallGuard { registry }
}

/// Process-global telemetry sink handle; see [`install`].
pub struct InstallGuard {
    registry: Arc<Registry>,
}

impl InstallGuard {
    /// The installed registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Snapshot of the installed registry.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }

    /// Writes emitter outputs now (no-op without an `out_dir`).
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn flush(&self) -> std::io::Result<()> {
        flush_registry(&self.registry)
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let _ = flush_registry(&self.registry);
        let mut global = GLOBAL.write();
        if global
            .as_ref()
            .is_some_and(|g| Arc::ptr_eq(g, &self.registry))
        {
            *global = None;
        }
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Installs `cfg` as a telemetry sink visible only to the calling thread,
/// shadowing any global install there. Flushes and pops on drop. Used by
/// tests for isolation under the multithreaded test runner.
#[must_use = "scoped telemetry deactivates when the guard drops"]
pub fn scoped(cfg: TelemetryConfig) -> ScopedGuard {
    let registry = Arc::new(Registry::new(cfg));
    SCOPED.with(|s| s.borrow_mut().push(Arc::clone(&registry)));
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    ScopedGuard { registry }
}

/// Thread-scoped telemetry sink handle; see [`scoped`].
pub struct ScopedGuard {
    registry: Arc<Registry>,
}

impl ScopedGuard {
    /// The scoped registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Snapshot of the scoped registry.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot()
    }
}

impl Drop for ScopedGuard {
    fn drop(&mut self) {
        let _ = flush_registry(&self.registry);
        SCOPED.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|r| Arc::ptr_eq(r, &self.registry)) {
                stack.remove(pos);
            }
        });
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

fn flush_registry(registry: &Registry) -> std::io::Result<()> {
    let snap = registry.snapshot();
    if let Some(path) = &registry.config().trace_out {
        trace::write_trace(&registry.trace_events(), &snap, path)?;
    }
    match &registry.config().out_dir {
        Some(dir) => {
            emit::write_all(&snap, dir)?;
            // Post-mortem dump: only incomplete/faulted runs leave a
            // flight_recorder.jsonl behind (a clean exit needs none).
            if registry.is_faulted() {
                emit::write_flight(&registry.flight_events(), dir)?;
            }
            Ok(())
        }
        None => Ok(()),
    }
}

/// Starts a scoped span timer. The returned guard records the elapsed time
/// under the `/`-joined path of all spans active on this thread when it
/// drops. Near-zero cost when telemetry is disabled.
#[must_use = "a span records its duration when the guard drops"]
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if disabled() {
        return SpanGuard {
            active: None,
            captured: false,
        };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    if capturing() {
        // Diverted span: timed against this thread's own (relative) span
        // stack and buffered on drop; no registry or trace access.
        return SpanGuard {
            active: Some(Instant::now()),
            captured: true,
        };
    }
    let _ = with_registry(|r| {
        if r.trace_enabled() {
            let path = SPAN_STACK.with(|s| s.borrow().join("/"));
            r.record_trace_event(TraceEvent {
                phase: TracePhase::Begin,
                name: path,
                tid: trace::thread_id(),
                ts_us: r.elapsed().as_secs_f64() * 1e6,
                arg: None,
            });
        }
    });
    SpanGuard {
        active: Some(Instant::now()),
        captured: false,
    }
}

/// RAII guard for one active span; see [`span`].
pub struct SpanGuard {
    active: Option<Instant>,
    captured: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.active else { return };
        let duration = start.elapsed();
        if self.captured {
            let base = capture_base_depth();
            let path = SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                let path = stack[base.min(stack.len())..].join("/");
                stack.pop();
                path
            });
            capture_event(CapturedEvent::Span(path, duration));
            return;
        }
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        let _ = with_registry(|r| {
            if r.trace_enabled() {
                let dur_us = duration.as_secs_f64() * 1e6;
                r.record_trace_event(TraceEvent {
                    phase: TracePhase::End,
                    name: path.clone(),
                    tid: trace::thread_id(),
                    ts_us: r.elapsed().as_secs_f64() * 1e6,
                    arg: Some(("dur_us", dur_us)),
                });
            }
            r.record_span(path, duration);
        });
    }
}

/// Adds `n` to the named monotonic counter. One relaxed load when disabled.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if disabled() {
        return;
    }
    if capture_event(CapturedEvent::Counter(name, n)) {
        return;
    }
    let _ = with_registry(|r| r.counter_add(name, n));
}

/// Records a free-form scalar observation (reward, loss, queue depth).
#[inline]
pub fn observe(name: &'static str, value: f64) {
    observe_dyn(name, value);
}

/// [`observe`] for dynamically built metric names (e.g. per-layer
/// gradient norms like `grad_norm/actor/l0.weight`). The name is only
/// allocated into the registry the first time it is seen.
#[inline]
pub fn observe_dyn(name: &str, value: f64) {
    if disabled() {
        return;
    }
    if capturing() {
        capture_event(CapturedEvent::Value(name.to_string(), value));
        return;
    }
    let _ = with_registry(|r| r.observe(name, value));
}

/// Sets a live gauge (overwrite semantics — current queue depth, actors
/// busy). Part of the `live/` observability plane: bypasses capture mode
/// (gauges describe the process, not the training run, so worker threads
/// write them directly), never enters checkpoints, and is excluded from
/// golden diffs.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if disabled() {
        return;
    }
    let _ = with_registry(|r| r.gauge_set(name, value));
}

/// Records a wall-clock observation into the `live/` histogram plane
/// (wave latency, blocked-send time). Bypasses capture mode and never
/// enters checkpoints, like [`gauge_set`].
#[inline]
pub fn live_observe(name: &str, value: f64) {
    if disabled() {
        return;
    }
    let _ = with_registry(|r| r.live_observe(name, value));
}

/// Appends one structured event to the flight recorder (see
/// [`ring::FlightRing`]). Bypasses capture mode; events survive in a
/// fixed-capacity ring and are dumped to `flight_recorder.jsonl` by
/// [`flush`] when the run was marked faulted.
#[inline]
pub fn flight_event(kind: FlightEventKind) {
    if disabled() {
        return;
    }
    let _ = with_registry(|r| r.flight_event(kind));
}

/// Marks the current run incomplete/faulted: the next [`flush`] (including
/// the implicit one when the sink guard drops) dumps the flight recorder
/// to `flight_recorder.jsonl` in the configured `out_dir` for post-mortem.
pub fn mark_faulted() {
    if disabled() {
        return;
    }
    let _ = with_registry(Registry::mark_faulted);
}

/// Wall-clock seconds since the active registry was created; `None`
/// without a sink. Used to stamp heartbeat gauges.
pub fn elapsed_s() -> Option<f64> {
    if disabled() {
        return None;
    }
    with_registry(|r| r.elapsed().as_secs_f64())
}

/// Prints a rate-limited progress line to stderr with `context` appended
/// (e.g. `"ep 12"`). Returns whether a line was printed.
pub fn progress(context: &str) -> bool {
    if disabled() || capturing() {
        return false;
    }
    with_registry(|r| r.progress(context)).unwrap_or(false)
}

/// Snapshot of the registry visible to this thread, if any.
pub fn snapshot() -> Option<Snapshot> {
    if disabled() {
        return None;
    }
    with_registry(Registry::snapshot)
}

/// Captures the full mutable state of the registry visible to this thread
/// (counters, span histograms, value histograms) for checkpointing.
/// `None` without an active sink.
pub fn export_state() -> Option<RegistryState> {
    if disabled() {
        return None;
    }
    with_registry(Registry::export_state)
}

/// Restores state captured by [`export_state`] into the registry visible
/// to this thread. Returns `Ok(false)` without an active sink (the state
/// is simply dropped — resuming an un-instrumented run stays valid).
///
/// # Errors
///
/// Propagates structural-validation failures from
/// [`Registry::restore_state`].
pub fn restore_state(state: &RegistryState) -> Result<bool, String> {
    if disabled() {
        return Ok(false);
    }
    match with_registry(|r| r.restore_state(state)) {
        Some(Ok(())) => Ok(true),
        Some(Err(e)) => Err(e),
        None => Ok(false),
    }
}

/// Writes emitter outputs for the registry visible to this thread.
/// No-op without an active sink or without an `out_dir`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn flush() -> std::io::Result<()> {
    if disabled() {
        return Ok(());
    }
    with_registry(flush_registry).unwrap_or(Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_paths_are_noops() {
        // No sink on this thread: everything is a no-op and nothing panics.
        counter_add("x", 1);
        observe("y", 1.0);
        {
            let _s = span("z");
        }
        assert!(!progress("ctx"));
    }

    #[test]
    fn scoped_counters_and_spans() {
        let guard = scoped(TelemetryConfig::default());
        assert!(is_enabled());
        counter_add("env_steps", 3);
        counter_add("env_steps", 4);
        {
            let _outer = span("rollout");
            let _inner = span("env_step");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let snap = guard.snapshot();
        assert_eq!(snap.counters["env_steps"].total, 7);
        assert_eq!(snap.spans["rollout/env_step"].count, 1);
        assert!(snap.spans["rollout/env_step"].mean > 0.0);
        drop(guard);
        assert!(!is_enabled() || !GLOBAL.read().is_none());
    }

    #[test]
    fn scoped_shadows_are_isolated_per_thread() {
        let mine = scoped(TelemetryConfig::default());
        counter_add("mine", 1);
        let other = std::thread::spawn(|| {
            // Different thread: our scoped registry must be invisible.
            let theirs = scoped(TelemetryConfig::default());
            counter_add("theirs", 10);
            theirs.snapshot().counter_totals()
        })
        .join()
        .unwrap();
        let snap = mine.snapshot();
        assert_eq!(snap.counters["mine"].total, 1);
        assert!(!snap.counters.contains_key("theirs"));
        assert_eq!(other["theirs"], 10);
        assert!(!other.contains_key("mine"));
    }

    #[test]
    fn nested_scoped_innermost_wins() {
        let outer = scoped(TelemetryConfig::default());
        {
            let inner = scoped(TelemetryConfig::default());
            counter_add("n", 5);
            assert_eq!(inner.snapshot().counters["n"].total, 5);
        }
        counter_add("n", 2);
        assert_eq!(outer.snapshot().counters["n"].total, 2);
    }

    #[test]
    fn capture_diverts_and_replay_rebuilds_in_order() {
        let guard = scoped(TelemetryConfig::default());
        let _outer = span("update");
        // Worker-side: capture everything, touching no registry.
        begin_capture();
        assert!(is_enabled(), "capture mode keeps the instrumented path on");
        counter_add("grad_updates", 2);
        observe("loss", 1.5);
        {
            let _s = span("actor_critic");
        }
        let events = take_capture();
        assert_eq!(events.len(), 3);
        assert!(matches!(events[2], CapturedEvent::Span(ref p, _) if p == "actor_critic"));
        let before = guard.snapshot();
        assert!(before.counters.is_empty(), "capture must not touch the registry");
        // Coordinator-side: replay under the active `update` span.
        replay(events);
        let snap = guard.snapshot();
        assert_eq!(snap.counters["grad_updates"].total, 2);
        assert_eq!(snap.values["loss"].count, 1);
        assert!(
            snap.spans.contains_key("update/actor_critic"),
            "replayed span paths re-root under the replaying thread's stack: {:?}",
            snap.spans.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn take_capture_without_begin_is_empty() {
        assert!(take_capture().is_empty());
    }

    #[test]
    fn faulted_runs_dump_the_flight_recorder() {
        let dir = std::env::temp_dir().join(format!(
            "hero-telemetry-flight-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Clean run: no flight_recorder.jsonl.
        {
            let _g = scoped(TelemetryConfig::to_dir("clean", &dir));
            flight_event(FlightEventKind::WaveDispatched { wave: 0, worlds: 1 });
        }
        assert!(!dir.join("flight_recorder.jsonl").exists());
        // Faulted run: the ring is dumped on the guard-drop flush.
        {
            let _g = scoped(TelemetryConfig::to_dir("faulted", &dir));
            flight_event(FlightEventKind::StallDetected { actor: 0 });
            flight_event(FlightEventKind::Redispatched { actor: 1, wave: 3 });
            mark_faulted();
        }
        let body = std::fs::read_to_string(dir.join("flight_recorder.jsonl")).unwrap();
        let records = emit::parse_jsonl(&body).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0]["event"].as_str(), Some("stall_detected"));
        assert_eq!(records[1]["event"].as_str(), Some("redispatched"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_plane_bypasses_capture() {
        let guard = scoped(TelemetryConfig::default());
        begin_capture();
        gauge_set("live/queue/actor0", 2.0);
        live_observe("live/wave_us", 5.0);
        flight_event(FlightEventKind::WaveCompleted { wave: 0, episodes: 1 });
        let captured = take_capture();
        assert!(captured.is_empty(), "live plane must not be captured");
        let snap = guard.snapshot();
        assert_eq!(snap.gauges["live/queue/actor0"], 2.0);
        assert_eq!(snap.live["live/wave_us"].count, 1);
        assert_eq!(guard.registry().flight_events().len(), 1);
    }

    #[test]
    fn flush_writes_all_outputs() {
        let dir = std::env::temp_dir().join(format!(
            "hero-telemetry-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let _g = scoped(TelemetryConfig::to_dir("unit", &dir));
            counter_add("env_steps", 42);
            let _s = span("rollout");
        }
        for name in [
            "telemetry.jsonl",
            "counters.csv",
            "spans.csv",
            "BENCH_telemetry.json",
        ] {
            let path = dir.join(name);
            let body = std::fs::read_to_string(&path).expect(name);
            assert!(!body.trim().is_empty(), "{name} is empty");
        }
        let jsonl = std::fs::read_to_string(dir.join("telemetry.jsonl")).unwrap();
        let records = emit::parse_jsonl(&jsonl).unwrap();
        assert!(records
            .iter()
            .any(|r| r.get("name").and_then(emit::JsonValue::as_str) == Some("env_steps")
                && r["total"].as_f64() == Some(42.0)));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! The rollout flight recorder: a fixed-capacity concurrent ring buffer
//! of structured events with monotonic sequence ids.
//!
//! Every [`FlightEvent`] gets a process-unique, strictly increasing
//! sequence id from one atomic counter; the slot it lands in is
//! `seq % capacity`, so once the ring is full the oldest event is always
//! the one evicted. Writers never take a lock: each slot is guarded by a
//! seqlock-style stamp word, and the event payload is stored as plain
//! `u64` words behind it. A writer whose slot has already been claimed by
//! a *newer* sequence id simply drops its own event — that event was a
//! full capacity-wrap old and would have been evicted anyway — so the
//! surviving set is always exactly the newest `capacity` events.
//!
//! Readers ([`FlightRing::events`]) are wait-free spectators: they read
//! the stamp, copy the payload words, and re-read the stamp; a changed
//! stamp means a writer raced them and the slot is retried (bounded) or
//! skipped. Reading never blocks recording, which is what lets the
//! metrics exporter and the post-mortem dump inspect a live run without
//! perturbing the learner thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// One structured rollout event; see [`FlightEventKind`] for the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic, process-unique sequence id (assignment order).
    pub seq: u64,
    /// Microseconds since the owning registry was created.
    pub t_us: u64,
    /// What happened.
    pub kind: FlightEventKind,
}

/// The event vocabulary of the rollout plane. Kept deliberately small and
/// `Copy` so recording is a handful of relaxed atomic stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightEventKind {
    /// The learner dispatched a wave of episodes/steps to the actors.
    WaveDispatched {
        /// Wave ordinal (serial mode: the episode index).
        wave: u64,
        /// World replicas participating in the wave.
        worlds: u64,
    },
    /// All actors reported the wave done.
    WaveCompleted {
        /// Wave ordinal (serial mode: the episode index).
        wave: u64,
        /// Episodes finished inside this wave.
        episodes: u64,
    },
    /// A checkpoint file was durably written.
    CheckpointSaved {
        /// The checkpoint's rotation index.
        index: u64,
    },
    /// Training resumed from a checkpoint file.
    CheckpointLoaded {
        /// The checkpoint's rotation index.
        index: u64,
    },
    /// An actor missed the stall deadline.
    StallDetected {
        /// The stalled actor's index.
        actor: u64,
    },
    /// Work owned by a stalled actor was re-dispatched to a live one.
    Redispatched {
        /// The actor that took over.
        actor: u64,
        /// The wave (serial mode: episode) being recovered.
        wave: u64,
    },
    /// The optimizer watchdog skipped a non-finite update.
    WatchdogSkip {
        /// Total updates skipped so far.
        update: u64,
    },
    /// A fault-plan kill fired.
    KillInjected {
        /// The episode at which the kill fired.
        episode: u64,
    },
    /// An actor thread's channel disconnected and its join handle
    /// surfaced a panic (or an unexpected exit).
    ActorPanicked {
        /// The dead actor's index.
        actor: u64,
    },
    /// The supervisor respawned a failed actor.
    ActorRespawned {
        /// The respawned actor's index.
        actor: u64,
        /// The new incarnation number (first respawn = 1).
        generation: u64,
    },
    /// An actor exhausted its restart budget and was permanently retired;
    /// the fleet continues degraded.
    SupervisorDegraded {
        /// The retired actor's index.
        actor: u64,
        /// Actors still alive after the degrade.
        remaining: u64,
    },
    /// The whole fleet was lost; the learner wrote (or attempted) an
    /// emergency checkpoint before the typed abort.
    EmergencyCheckpoint {
        /// Episodes fully completed before the abort.
        episodes: u64,
        /// 1 if the emergency snapshot was durably written, 0 if the run
        /// died mid-episode and no boundary-clean state existed to save.
        saved: u64,
    },
}

impl FlightEventKind {
    /// Packs the kind into `(tag, a, b)` words for lock-free slot storage.
    fn encode(self) -> (u64, u64, u64) {
        match self {
            Self::WaveDispatched { wave, worlds } => (0, wave, worlds),
            Self::WaveCompleted { wave, episodes } => (1, wave, episodes),
            Self::CheckpointSaved { index } => (2, index, 0),
            Self::CheckpointLoaded { index } => (3, index, 0),
            Self::StallDetected { actor } => (4, actor, 0),
            Self::Redispatched { actor, wave } => (5, actor, wave),
            Self::WatchdogSkip { update } => (6, update, 0),
            Self::KillInjected { episode } => (7, episode, 0),
            Self::ActorPanicked { actor } => (8, actor, 0),
            Self::ActorRespawned { actor, generation } => (9, actor, generation),
            Self::SupervisorDegraded { actor, remaining } => (10, actor, remaining),
            Self::EmergencyCheckpoint { episodes, saved } => (11, episodes, saved),
        }
    }

    fn decode(tag: u64, a: u64, b: u64) -> Option<Self> {
        Some(match tag {
            0 => Self::WaveDispatched { wave: a, worlds: b },
            1 => Self::WaveCompleted { wave: a, episodes: b },
            2 => Self::CheckpointSaved { index: a },
            3 => Self::CheckpointLoaded { index: a },
            4 => Self::StallDetected { actor: a },
            5 => Self::Redispatched { actor: a, wave: b },
            6 => Self::WatchdogSkip { update: a },
            7 => Self::KillInjected { episode: a },
            8 => Self::ActorPanicked { actor: a },
            9 => Self::ActorRespawned { actor: a, generation: b },
            10 => Self::SupervisorDegraded { actor: a, remaining: b },
            11 => Self::EmergencyCheckpoint { episodes: a, saved: b },
            _ => return None,
        })
    }

    /// The event's snake_case name, used as the JSONL `event` field.
    pub fn name(&self) -> &'static str {
        match self {
            Self::WaveDispatched { .. } => "wave_dispatched",
            Self::WaveCompleted { .. } => "wave_completed",
            Self::CheckpointSaved { .. } => "checkpoint_saved",
            Self::CheckpointLoaded { .. } => "checkpoint_loaded",
            Self::StallDetected { .. } => "stall_detected",
            Self::Redispatched { .. } => "redispatched",
            Self::WatchdogSkip { .. } => "watchdog_skip",
            Self::KillInjected { .. } => "kill_injected",
            Self::ActorPanicked { .. } => "actor_panicked",
            Self::ActorRespawned { .. } => "actor_respawned",
            Self::SupervisorDegraded { .. } => "supervisor_degraded",
            Self::EmergencyCheckpoint { .. } => "emergency_checkpoint",
        }
    }
}

/// Slot stamp states: `0` = never written; `2*seq + 1` = a writer holding
/// sequence id `seq` is mid-write; `2*seq + 2` = payload for `seq` is
/// complete. Stamps only ever increase, which rules out ABA.
const EMPTY: u64 = 0;

fn writing(seq: u64) -> u64 {
    2 * seq + 1
}

fn done(seq: u64) -> u64 {
    2 * seq + 2
}

struct Slot {
    stamp: AtomicU64,
    // tag, a, b, t_us — only read when the stamp proves them consistent.
    words: [AtomicU64; 4],
}

impl Slot {
    fn new() -> Self {
        Self {
            stamp: AtomicU64::new(EMPTY),
            words: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        }
    }
}

/// The fixed-capacity event ring; see the module docs for the protocol.
pub struct FlightRing {
    next: AtomicU64,
    slots: Box<[Slot]>,
}

impl FlightRing {
    /// A ring holding the newest `capacity` events (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            next: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (= the next sequence id).
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Records one event, timestamped by the caller, and returns its
    /// sequence id. Returns even when the event was immediately
    /// superseded (its slot already held a newer sequence id).
    pub fn record(&self, t_us: u64, kind: FlightEventKind) -> u64 {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let (tag, a, b) = kind.encode();
        loop {
            let cur = slot.stamp.load(Ordering::Acquire);
            if cur >= writing(seq) {
                // A newer event claimed this slot: ours is a full
                // capacity-wrap old and already evicted. Drop it.
                return seq;
            }
            if cur != EMPTY && cur % 2 == 1 {
                // An *older* writer is mid-write (it lagged a full wrap
                // behind us). Its critical section is four relaxed
                // stores; wait it out rather than tearing the payload.
                std::hint::spin_loop();
                continue;
            }
            if slot
                .stamp
                .compare_exchange(cur, writing(seq), Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.words[0].store(tag, Ordering::Relaxed);
                slot.words[1].store(a, Ordering::Relaxed);
                slot.words[2].store(b, Ordering::Relaxed);
                slot.words[3].store(t_us, Ordering::Relaxed);
                slot.stamp.store(done(seq), Ordering::Release);
                return seq;
            }
        }
    }

    /// A consistent copy of every surviving event, oldest first. Slots a
    /// writer is actively racing are retried a few times and then
    /// skipped; recording is never blocked by readers.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            for _attempt in 0..8 {
                let before = slot.stamp.load(Ordering::Acquire);
                if before == EMPTY || before % 2 == 1 {
                    if before == EMPTY {
                        break;
                    }
                    std::hint::spin_loop();
                    continue;
                }
                let tag = slot.words[0].load(Ordering::Relaxed);
                let a = slot.words[1].load(Ordering::Relaxed);
                let b = slot.words[2].load(Ordering::Relaxed);
                let t_us = slot.words[3].load(Ordering::Relaxed);
                if slot.stamp.load(Ordering::Acquire) != before {
                    continue; // torn read: a writer landed mid-copy
                }
                if let Some(kind) = FlightEventKind::decode(tag, a, b) {
                    out.push(FlightEvent {
                        seq: (before - 2) / 2,
                        t_us,
                        kind,
                    });
                }
                break;
            }
        }
        out.sort_unstable_by_key(|e| e.seq);
        out
    }
}

impl std::fmt::Debug for FlightRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRing")
            .field("capacity", &self.capacity())
            .field("recorded", &self.recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_monotonic_seqs() {
        let ring = FlightRing::new(8);
        for i in 0..5u64 {
            let seq = ring.record(i * 10, FlightEventKind::WaveDispatched { wave: i, worlds: 2 });
            assert_eq!(seq, i);
        }
        let events = ring.events();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.t_us, i as u64 * 10);
            assert_eq!(
                e.kind,
                FlightEventKind::WaveDispatched { wave: i as u64, worlds: 2 }
            );
        }
    }

    #[test]
    fn eviction_is_oldest_first() {
        let ring = FlightRing::new(4);
        for i in 0..10u64 {
            ring.record(i, FlightEventKind::CheckpointSaved { index: i });
        }
        let seqs: Vec<u64> = ring.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "only the newest capacity survive");
        assert_eq!(ring.recorded(), 10);
    }

    #[test]
    fn kind_encoding_round_trips() {
        let kinds = [
            FlightEventKind::WaveDispatched { wave: 3, worlds: 4 },
            FlightEventKind::WaveCompleted { wave: 3, episodes: 8 },
            FlightEventKind::CheckpointSaved { index: 2 },
            FlightEventKind::CheckpointLoaded { index: 1 },
            FlightEventKind::StallDetected { actor: 0 },
            FlightEventKind::Redispatched { actor: 1, wave: 7 },
            FlightEventKind::WatchdogSkip { update: 9 },
            FlightEventKind::KillInjected { episode: 5 },
            FlightEventKind::ActorPanicked { actor: 2 },
            FlightEventKind::ActorRespawned { actor: 2, generation: 1 },
            FlightEventKind::SupervisorDegraded { actor: 2, remaining: 1 },
            FlightEventKind::EmergencyCheckpoint { episodes: 4, saved: 1 },
        ];
        for kind in kinds {
            let (tag, a, b) = kind.encode();
            assert_eq!(FlightEventKind::decode(tag, a, b), Some(kind));
        }
        assert_eq!(FlightEventKind::decode(99, 0, 0), None);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let ring = FlightRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.record(0, FlightEventKind::StallDetected { actor: 0 });
        ring.record(1, FlightEventKind::StallDetected { actor: 1 });
        let events = ring.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 1);
    }
}

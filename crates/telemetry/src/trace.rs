//! Chrome trace-event export (`trace.json`).
//!
//! The span timers in [`crate`] optionally record begin/end event pairs
//! into the active [`Registry`](crate::Registry) when its
//! [`TelemetryConfig::trace_out`](crate::TelemetryConfig) is set. On
//! flush the events are serialized in the Chrome trace-event JSON format
//! (the JSON-array flavour wrapped in `{"traceEvents": [...]}`), loadable
//! in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! ## Schema
//!
//! One event object per line inside the `traceEvents` array:
//!
//! ```text
//! {"name":"<span path>","cat":"span","ph":"B","ts":<µs>,"pid":1,"tid":<n>}
//! {"name":"<span path>","cat":"span","ph":"E","ts":<µs>,"pid":1,"tid":<n>,
//!  "args":{"dur_us":<µs>}}
//! {"name":"<counter>","cat":"counter","ph":"C","ts":<µs>,"pid":1,"tid":0,
//!  "args":{"value":<total>}}
//! ```
//!
//! * `ts` is microseconds since the registry was installed.
//! * `tid` is a process-unique small integer assigned per OS thread in
//!   first-use order; `tid` 0 is reserved for process-level counter
//!   events appended at flush time.
//! * `B`/`E` pairs are recorded in program order, so within any one `tid`
//!   they are strictly balanced and properly nested (RAII span guards).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::emit::{parse_jsonl, JsonValue};
use crate::registry::Snapshot;

/// Phase of one trace event (`ph` in the Chrome format).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TracePhase {
    /// A span began (`"B"`).
    Begin,
    /// A span ended (`"E"`).
    End,
    /// A counter sample (`"C"`).
    Counter,
}

impl TracePhase {
    fn code(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Counter => "C",
        }
    }
}

/// One recorded trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Event phase.
    pub phase: TracePhase,
    /// Span path (or counter name for [`TracePhase::Counter`]).
    pub name: String,
    /// Process-unique thread id (see [`thread_id`]).
    pub tid: u64,
    /// Microseconds since the owning registry was created.
    pub ts_us: f64,
    /// Optional single argument rendered under `"args"`.
    pub arg: Option<(&'static str, f64)>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// A small process-unique id for the calling OS thread, assigned in
/// first-use order starting at 1 (0 is reserved for process-level
/// counter events).
pub fn thread_id() -> u64 {
    TID.with(|t| *t)
}

fn num(x: f64) -> String {
    let x = if x.is_finite() { x } else { 0.0 };
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

fn event_line(out: &mut String, e: &TraceEvent, trailing_comma: bool) {
    let cat = match e.phase {
        TracePhase::Counter => "counter",
        _ => "span",
    };
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
        crate::emit::escape_json(&e.name),
        cat,
        e.phase.code(),
        num(e.ts_us),
        e.tid
    );
    if let Some((key, value)) = e.arg {
        let _ = write!(out, ",\"args\":{{\"{}\":{}}}", key, num(value));
    }
    out.push('}');
    if trailing_comma {
        out.push(',');
    }
    out.push('\n');
}

/// Renders span events plus one final counter sample per counter in
/// `snap` as a Chrome trace-event JSON document (one event per line).
pub fn to_chrome_trace(events: &[TraceEvent], snap: &Snapshot) -> String {
    let elapsed_us = snap.elapsed.as_secs_f64() * 1e6;
    let counters: Vec<TraceEvent> = snap
        .counters
        .iter()
        .map(|(name, c)| TraceEvent {
            phase: TracePhase::Counter,
            name: name.clone(),
            tid: 0,
            ts_us: elapsed_us,
            arg: Some(("value", c.total as f64)),
        })
        .collect();
    let total = events.len() + counters.len();
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().chain(counters.iter()).enumerate() {
        event_line(&mut out, e, i + 1 < total);
    }
    out.push_str("]}\n");
    out
}

/// Writes the trace document to `path`, creating parent directories.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_trace(events: &[TraceEvent], snap: &Snapshot, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_chrome_trace(events, snap).as_bytes())?;
    f.flush()
}

/// Parses a trace document produced by [`to_chrome_trace`] back into
/// per-line JSON records.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<BTreeMap<String, JsonValue>>, String> {
    let trimmed = text.trim();
    let body = trimmed
        .strip_prefix("{\"traceEvents\":[")
        .and_then(|rest| rest.strip_suffix("]}"))
        .ok_or_else(|| "missing {\"traceEvents\":[...]} envelope".to_string())?;
    let lines: String = body
        .lines()
        .map(|l| l.trim().trim_end_matches(',').to_string())
        .filter(|l| !l.is_empty())
        .collect::<Vec<_>>()
        .join("\n");
    parse_jsonl(&lines).map_err(|(line, e)| format!("event {line}: {e}"))
}

/// Validates a trace document: every line parses, and within every
/// thread the `B`/`E` events form strictly balanced, properly nested,
/// time-ordered pairs. Returns the number of complete span pairs.
///
/// # Errors
///
/// Returns a description of the first structural violation.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let events = parse_chrome_trace(text)?;
    let mut stacks: BTreeMap<u64, Vec<(String, f64)>> = BTreeMap::new();
    let mut last_ts: BTreeMap<u64, f64> = BTreeMap::new();
    let mut pairs = 0usize;
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let tid = e
            .get("tid")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing tid"))? as u64;
        let ts = e
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        let name = e
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?
            .to_string();
        if ph == "C" {
            continue;
        }
        let prev = last_ts.entry(tid).or_insert(f64::NEG_INFINITY);
        if ts < *prev {
            return Err(format!("event {i}: ts {ts} goes backwards on tid {tid}"));
        }
        *prev = ts;
        let stack = stacks.entry(tid).or_default();
        match ph {
            "B" => stack.push((name, ts)),
            "E" => {
                let (open, begin_ts) = stack
                    .pop()
                    .ok_or_else(|| format!("event {i}: E without open B on tid {tid}"))?;
                if open != name {
                    return Err(format!(
                        "event {i}: E for {name:?} but innermost open span is {open:?}"
                    ));
                }
                if ts < begin_ts {
                    return Err(format!("event {i}: span {name:?} ends before it begins"));
                }
                pairs += 1;
            }
            other => return Err(format!("event {i}: unexpected phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!(
                "tid {tid} has {} unclosed span(s): {:?}",
                stack.len(),
                stack.iter().map(|(n, _)| n).collect::<Vec<_>>()
            ));
        }
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{Registry, TelemetryConfig};

    fn span_event(phase: TracePhase, name: &str, tid: u64, ts_us: f64) -> TraceEvent {
        TraceEvent {
            phase,
            name: name.to_string(),
            tid,
            ts_us,
            arg: match phase {
                TracePhase::End => Some(("dur_us", 1.0)),
                _ => None,
            },
        }
    }

    fn empty_snapshot() -> Snapshot {
        Registry::new(TelemetryConfig::default()).snapshot()
    }

    #[test]
    fn balanced_trace_round_trips() {
        let events = vec![
            span_event(TracePhase::Begin, "rollout", 1, 0.0),
            span_event(TracePhase::Begin, "rollout/env_step", 1, 1.0),
            span_event(TracePhase::End, "rollout/env_step", 1, 2.0),
            span_event(TracePhase::End, "rollout", 1, 3.0),
        ];
        let text = to_chrome_trace(&events, &empty_snapshot());
        assert_eq!(validate_chrome_trace(&text), Ok(2));
    }

    #[test]
    fn unbalanced_trace_rejected() {
        let events = vec![span_event(TracePhase::Begin, "rollout", 1, 0.0)];
        let text = to_chrome_trace(&events, &empty_snapshot());
        assert!(validate_chrome_trace(&text)
            .unwrap_err()
            .contains("unclosed"));
    }

    #[test]
    fn misnested_trace_rejected() {
        let events = vec![
            span_event(TracePhase::Begin, "a", 1, 0.0),
            span_event(TracePhase::Begin, "a/b", 1, 1.0),
            span_event(TracePhase::End, "a", 1, 2.0),
            span_event(TracePhase::End, "a/b", 1, 3.0),
        ];
        let text = to_chrome_trace(&events, &empty_snapshot());
        assert!(validate_chrome_trace(&text)
            .unwrap_err()
            .contains("innermost open span"));
    }

    #[test]
    fn counter_events_from_snapshot() {
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("env_steps", 42);
        let text = to_chrome_trace(&[], &r.snapshot());
        let records = parse_chrome_trace(&text).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0]["ph"].as_str(), Some("C"));
        assert_eq!(records[0]["name"].as_str(), Some("env_steps"));
        match &records[0]["args"] {
            JsonValue::Object(args) => assert_eq!(args["value"].as_f64(), Some(42.0)),
            other => panic!("args not an object: {other:?}"),
        }
        assert_eq!(validate_chrome_trace(&text), Ok(0));
    }

    #[test]
    fn thread_ids_are_distinct() {
        let mine = thread_id();
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(mine, other);
        assert_eq!(mine, thread_id(), "stable within a thread");
    }
}

//! The metric registry: named counters, span histograms, value histograms,
//! and throughput derivation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use crate::histogram::{HistogramStats, StreamingHistogram};
use crate::trace::TraceEvent;

/// Configuration for a telemetry sink.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Label identifying the run (e.g. the experiment binary name).
    pub run_label: String,
    /// Directory where `flush` writes `telemetry.jsonl`, `counters.csv`,
    /// `spans.csv`, and `BENCH_telemetry.json`. `None` keeps everything
    /// in memory.
    pub out_dir: Option<std::path::PathBuf>,
    /// File where `flush` writes a Chrome trace-event document
    /// (`trace.json`). `None` (the default) disables trace recording
    /// entirely — span guards then skip event capture.
    pub trace_out: Option<std::path::PathBuf>,
    /// Minimum interval between human-readable progress lines on stderr.
    pub progress_every: Duration,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            run_label: "run".to_string(),
            out_dir: None,
            trace_out: None,
            progress_every: Duration::from_secs(5),
        }
    }
}

impl TelemetryConfig {
    /// A config labelled `run_label` writing into `out_dir`.
    pub fn to_dir(run_label: impl Into<String>, out_dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            run_label: run_label.into(),
            out_dir: Some(out_dir.into()),
            ..Self::default()
        }
    }

    /// Returns the config with Chrome trace capture writing to `path`.
    #[must_use]
    pub fn with_trace(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.trace_out = Some(path.into());
        self
    }
}

/// A live metric registry. Usually accessed through the module-level
/// functions in [`crate`] after [`crate::install`] or [`crate::scoped`].
pub struct Registry {
    cfg: TelemetryConfig,
    start: Instant,
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    spans: Mutex<BTreeMap<String, StreamingHistogram>>,
    values: Mutex<BTreeMap<String, StreamingHistogram>>,
    trace: Mutex<Vec<TraceEvent>>,
    last_progress: Mutex<Option<Instant>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Self {
            cfg,
            start: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            values: Mutex::new(BTreeMap::new()),
            trace: Mutex::new(Vec::new()),
            last_progress: Mutex::new(None),
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Adds `n` to the named monotonic counter.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        if let Some(c) = self.counters.read().get(name) {
            c.fetch_add(n, Ordering::Relaxed);
            return;
        }
        self.counters
            .write()
            .entry(name)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records a span duration under the (already joined) span path.
    pub fn record_span(&self, path: String, duration: Duration) {
        self.spans
            .lock()
            .entry(path)
            .or_default()
            .observe(duration.as_secs_f64() * 1e6);
    }

    /// Records a free-form scalar observation. The name may be dynamic
    /// (e.g. a per-layer metric like `grad_norm/actor/l0.weight`); the
    /// allocation only happens the first time a name is seen.
    pub fn observe(&self, name: &str, value: f64) {
        let mut values = self.values.lock();
        if let Some(h) = values.get_mut(name) {
            h.observe(value);
        } else {
            values.entry(name.to_string()).or_default().observe(value);
        }
    }

    /// Whether Chrome trace capture is on for this registry.
    pub fn trace_enabled(&self) -> bool {
        self.cfg.trace_out.is_some()
    }

    /// Appends one trace event (no-op unless [`Self::trace_enabled`]).
    pub fn record_trace_event(&self, event: TraceEvent) {
        if self.trace_enabled() {
            self.trace.lock().push(event);
        }
    }

    /// A copy of the trace events recorded so far.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.lock().clone()
    }

    /// Wall-clock time since the registry was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Takes a consistent point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let elapsed = self.elapsed();
        let elapsed_s = elapsed.as_secs_f64().max(1e-9);
        let counters: BTreeMap<String, CounterStats> = self
            .counters
            .read()
            .iter()
            .map(|(name, c)| {
                let total = c.load(Ordering::Relaxed);
                (
                    (*name).to_string(),
                    CounterStats {
                        total,
                        rate_per_s: total as f64 / elapsed_s,
                    },
                )
            })
            .collect();
        let spans: BTreeMap<String, HistogramStats> = self
            .spans
            .lock()
            .iter()
            .map(|(name, h)| (name.clone(), h.stats()))
            .collect();
        let values: BTreeMap<String, HistogramStats> = self
            .values
            .lock()
            .iter()
            .map(|(name, h)| ((*name).to_string(), h.stats()))
            .collect();
        Snapshot {
            run_label: self.cfg.run_label.clone(),
            elapsed,
            counters,
            spans,
            values,
        }
    }

    /// Prints a rate-limited one-line progress summary to stderr. Returns
    /// whether a line was printed.
    pub fn progress(&self, context: &str) -> bool {
        {
            let mut last = self.last_progress.lock();
            let now = Instant::now();
            match *last {
                Some(t) if now.duration_since(t) < self.cfg.progress_every => return false,
                _ => *last = Some(now),
            }
        }
        let snap = self.snapshot();
        eprintln!("{}", snap.progress_line(context));
        true
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("run_label", &self.cfg.run_label)
            .field("elapsed", &self.elapsed())
            .finish_non_exhaustive()
    }
}

/// A counter's snapshot: total and derived throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CounterStats {
    /// Monotonic total.
    pub total: u64,
    /// `total / elapsed` — the throughput gauge (e.g. env steps/sec).
    pub rate_per_s: f64,
}

/// A consistent point-in-time view of every metric in a [`Registry`].
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// The registry's run label.
    pub run_label: String,
    /// Wall-clock time covered by this snapshot.
    pub elapsed: Duration,
    /// Counter totals and rates, by name.
    pub counters: BTreeMap<String, CounterStats>,
    /// Span duration summaries (microseconds), by span path.
    pub spans: BTreeMap<String, HistogramStats>,
    /// Free-form value summaries, by name.
    pub values: BTreeMap<String, HistogramStats>,
}

impl Snapshot {
    /// Counter totals only — the deterministic portion of a snapshot
    /// (durations and rates vary run-to-run; counts must not).
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, v)| (k.clone(), v.total))
            .collect()
    }

    /// The human-readable progress line. Watchdog counters are pulled out
    /// of the generic counter list into a dedicated learning-health tail,
    /// together with current opponent-model accuracy, so long headless
    /// runs surface training health without post-processing.
    pub fn progress_line(&self, context: &str) -> String {
        use std::fmt::Write;
        let mut line = format!(
            "[telemetry {} {}] {:.1}s",
            self.run_label,
            context,
            self.elapsed.as_secs_f64()
        );
        for (name, c) in &self.counters {
            if name.starts_with("watchdog/") {
                continue;
            }
            let _ = write!(line, " | {name} {} ({:.1}/s)", c.total, c.rate_per_s);
        }
        let skipped = self
            .counters
            .get("watchdog/skipped_updates")
            .map_or(0, |c| c.total);
        if skipped > 0 {
            let _ = write!(line, " | watchdog skipped {skipped}");
        }
        if let Some(acc) = self.values.get("opponent/accuracy") {
            if acc.count > 0 {
                let _ = write!(line, " | opp_acc {:.3}", acc.mean);
            }
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_rate() {
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("env_steps", 10);
        r.counter_add("env_steps", 5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["env_steps"].total, 15);
        assert!(snap.counters["env_steps"].rate_per_s > 0.0);
    }

    #[test]
    fn spans_and_values_summarized() {
        let r = Registry::new(TelemetryConfig::default());
        r.record_span("a/b".into(), Duration::from_micros(100));
        r.record_span("a/b".into(), Duration::from_micros(300));
        r.observe("reward", 1.0);
        let snap = r.snapshot();
        assert_eq!(snap.spans["a/b"].count, 2);
        assert!((snap.spans["a/b"].mean - 200.0).abs() < 1.0);
        assert_eq!(snap.values["reward"].count, 1);
    }

    #[test]
    fn progress_is_rate_limited() {
        let r = Registry::new(TelemetryConfig {
            progress_every: Duration::from_secs(3600),
            ..TelemetryConfig::default()
        });
        r.counter_add("x", 1);
        assert!(r.progress("t"), "first call prints");
        assert!(!r.progress("t"), "second call inside the interval is muted");
    }

    #[test]
    fn progress_line_mentions_counters() {
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("env_steps", 7);
        let line = r.snapshot().progress_line("ep 3");
        assert!(line.contains("env_steps 7"), "{line}");
        assert!(line.contains("ep 3"), "{line}");
    }

    #[test]
    fn progress_line_surfaces_learning_health() {
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("watchdog/skipped_updates", 2);
        r.counter_add("watchdog/nonfinite_grads", 9);
        r.observe("opponent/accuracy", 0.25);
        r.observe("opponent/accuracy", 0.75);
        let line = r.snapshot().progress_line("ep 1");
        assert!(line.contains("watchdog skipped 2"), "{line}");
        assert!(line.contains("opp_acc 0.500"), "{line}");
        assert!(
            !line.contains("watchdog/nonfinite_grads"),
            "watchdog counters stay out of the generic list: {line}"
        );
    }

    #[test]
    fn dynamic_value_names_accumulate() {
        let r = Registry::new(TelemetryConfig::default());
        for layer in 0..3 {
            let name = format!("grad_norm/actor/l{layer}");
            r.observe(&name, layer as f64);
            r.observe(&name, layer as f64 + 1.0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.values.len(), 3);
        assert_eq!(snap.values["grad_norm/actor/l1"].count, 2);
        assert!((snap.values["grad_norm/actor/l1"].mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trace_capture_gated_on_config() {
        use crate::trace::{TraceEvent, TracePhase};
        let ev = || TraceEvent {
            phase: TracePhase::Begin,
            name: "x".into(),
            tid: 1,
            ts_us: 0.0,
            arg: None,
        };
        let off = Registry::new(TelemetryConfig::default());
        assert!(!off.trace_enabled());
        off.record_trace_event(ev());
        assert!(off.trace_events().is_empty());

        let on = Registry::new(TelemetryConfig::default().with_trace("/tmp/trace.json"));
        assert!(on.trace_enabled());
        on.record_trace_event(ev());
        assert_eq!(on.trace_events().len(), 1);
    }
}

//! The metric registry: named counters, span histograms, value histograms,
//! and throughput derivation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use crate::histogram::{HistogramState, HistogramStats, StreamingHistogram};
use crate::ring::{FlightEvent, FlightEventKind, FlightRing};
use crate::trace::TraceEvent;

/// Events the flight recorder retains (newest-first eviction beyond this).
pub const FLIGHT_RING_CAPACITY: usize = 4096;

/// Configuration for a telemetry sink.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Label identifying the run (e.g. the experiment binary name).
    pub run_label: String,
    /// Directory where `flush` writes `telemetry.jsonl`, `counters.csv`,
    /// `spans.csv`, and `BENCH_telemetry.json`. `None` keeps everything
    /// in memory.
    pub out_dir: Option<std::path::PathBuf>,
    /// File where `flush` writes a Chrome trace-event document
    /// (`trace.json`). `None` (the default) disables trace recording
    /// entirely — span guards then skip event capture.
    pub trace_out: Option<std::path::PathBuf>,
    /// Minimum interval between human-readable progress lines on stderr.
    pub progress_every: Duration,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            run_label: "run".to_string(),
            out_dir: None,
            trace_out: None,
            progress_every: Duration::from_secs(5),
        }
    }
}

impl TelemetryConfig {
    /// A config labelled `run_label` writing into `out_dir`.
    pub fn to_dir(run_label: impl Into<String>, out_dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            run_label: run_label.into(),
            out_dir: Some(out_dir.into()),
            ..Self::default()
        }
    }

    /// Returns the config with Chrome trace capture writing to `path`.
    #[must_use]
    pub fn with_trace(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.trace_out = Some(path.into());
        self
    }
}

/// A live metric registry. Usually accessed through the module-level
/// functions in [`crate`] after [`crate::install`] or [`crate::scoped`].
pub struct Registry {
    cfg: TelemetryConfig,
    start: Instant,
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    spans: Mutex<BTreeMap<String, StreamingHistogram>>,
    values: Mutex<BTreeMap<String, StreamingHistogram>>,
    // The live observability plane. Everything below describes the
    // *process* (wall-clock latencies, instantaneous queue depths, event
    // timelines), not the training run, so none of it enters
    // `export_state`/`restore_state` — checkpoint bytes stay independent
    // of whether a run was instrumented, scraped, or neither.
    gauges: RwLock<BTreeMap<String, f64>>,
    live: Mutex<BTreeMap<String, StreamingHistogram>>,
    flight: FlightRing,
    faulted: AtomicBool,
    trace: Mutex<Vec<TraceEvent>>,
    last_progress: Mutex<Option<Instant>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new(cfg: TelemetryConfig) -> Self {
        Self {
            cfg,
            start: Instant::now(),
            counters: RwLock::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            values: Mutex::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            live: Mutex::new(BTreeMap::new()),
            flight: FlightRing::new(FLIGHT_RING_CAPACITY),
            faulted: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
            last_progress: Mutex::new(None),
        }
    }

    /// The registry's configuration.
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Adds `n` to the named monotonic counter.
    pub fn counter_add(&self, name: &'static str, n: u64) {
        if let Some(c) = self.counters.read().get(name) {
            c.fetch_add(n, Ordering::Relaxed);
            return;
        }
        self.counters
            .write()
            .entry(name)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records a span duration under the (already joined) span path.
    pub fn record_span(&self, path: String, duration: Duration) {
        self.spans
            .lock()
            .entry(path)
            .or_default()
            .observe(duration.as_secs_f64() * 1e6);
    }

    /// Records a free-form scalar observation. The name may be dynamic
    /// (e.g. a per-layer metric like `grad_norm/actor/l0.weight`); the
    /// allocation only happens the first time a name is seen.
    pub fn observe(&self, name: &str, value: f64) {
        let mut values = self.values.lock();
        if let Some(h) = values.get_mut(name) {
            h.observe(value);
        } else {
            values.entry(name.to_string()).or_default().observe(value);
        }
    }

    /// Sets a live gauge to its newest value (overwrite semantics — the
    /// current queue depth, not its history). Gauges live outside the
    /// checkpointable state and outside golden diffs.
    pub fn gauge_set(&self, name: &str, value: f64) {
        if !value.is_finite() {
            return;
        }
        if let Some(g) = self.gauges.write().get_mut(name) {
            *g = value;
            return;
        }
        self.gauges.write().insert(name.to_string(), value);
    }

    /// Records a wall-clock observation into the `live/` histogram plane
    /// (wave latency, blocked-send time, checkpoint write duration).
    /// Like gauges, live histograms never enter `export_state`.
    pub fn live_observe(&self, name: &str, value: f64) {
        let mut live = self.live.lock();
        if let Some(h) = live.get_mut(name) {
            h.observe(value);
        } else {
            live.entry(name.to_string()).or_default().observe(value);
        }
    }

    /// Appends one structured event to the flight recorder, timestamped
    /// against this registry's start.
    pub fn flight_event(&self, kind: FlightEventKind) {
        self.flight
            .record(self.elapsed().as_micros() as u64, kind);
    }

    /// A consistent copy of the surviving flight-recorder events,
    /// oldest first.
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        self.flight.events()
    }

    /// Marks the run as incomplete/faulted: `flush` will then dump the
    /// flight recorder to `flight_recorder.jsonl` for post-mortem.
    pub fn mark_faulted(&self) {
        self.faulted.store(true, Ordering::Relaxed);
    }

    /// Whether [`Registry::mark_faulted`] was called.
    pub fn is_faulted(&self) -> bool {
        self.faulted.load(Ordering::Relaxed)
    }

    /// Whether Chrome trace capture is on for this registry.
    pub fn trace_enabled(&self) -> bool {
        self.cfg.trace_out.is_some()
    }

    /// Appends one trace event (no-op unless [`Self::trace_enabled`]).
    pub fn record_trace_event(&self, event: TraceEvent) {
        if self.trace_enabled() {
            self.trace.lock().push(event);
        }
    }

    /// A copy of the trace events recorded so far.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.trace.lock().clone()
    }

    /// Wall-clock time since the registry was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Takes a consistent point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let elapsed = self.elapsed();
        let elapsed_s = elapsed.as_secs_f64().max(1e-9);
        let counters: BTreeMap<String, CounterStats> = self
            .counters
            .read()
            .iter()
            .map(|(name, c)| {
                let total = c.load(Ordering::Relaxed);
                (
                    (*name).to_string(),
                    CounterStats {
                        total,
                        rate_per_s: total as f64 / elapsed_s,
                    },
                )
            })
            .collect();
        let spans: BTreeMap<String, HistogramStats> = self
            .spans
            .lock()
            .iter()
            .map(|(name, h)| (name.clone(), h.stats()))
            .collect();
        let values: BTreeMap<String, HistogramStats> = self
            .values
            .lock()
            .iter()
            .map(|(name, h)| ((*name).to_string(), h.stats()))
            .collect();
        let gauges: BTreeMap<String, f64> = self.gauges.read().clone();
        let live: BTreeMap<String, HistogramStats> = self
            .live
            .lock()
            .iter()
            .map(|(name, h)| ((*name).to_string(), h.stats()))
            .collect();
        Snapshot {
            run_label: self.cfg.run_label.clone(),
            elapsed,
            counters,
            spans,
            values,
            gauges,
            live,
        }
    }

    /// Captures the complete mutable state of every counter, span
    /// histogram, and value histogram for checkpointing. Restoring via
    /// [`Registry::restore_state`] and replaying the same record sequence
    /// reproduces bit-identical counter totals and value statistics.
    /// (Trace events and wall-clock elapsed time are deliberately not
    /// captured; they describe the process, not the training run.)
    ///
    /// Fault-recovery bookkeeping — the [`FAULT_LOCAL_PREFIXES`]
    /// namespaces — is excluded: stalls, respawns, degrades, and
    /// checkpoint-IO retries describe what this *process* survived, not
    /// what the training run computed, and keeping them out is what makes
    /// a faulted run's checkpoint bytes equal its fault-free twin's.
    pub fn export_state(&self) -> RegistryState {
        let keep = |name: &str| !FAULT_LOCAL_PREFIXES.iter().any(|p| name.starts_with(p));
        RegistryState {
            counters: self
                .counters
                .read()
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, c)| ((*name).to_string(), c.load(Ordering::Relaxed)))
                .collect(),
            spans: self
                .spans
                .lock()
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, h)| (name.clone(), h.export_state()))
                .collect(),
            values: self
                .values
                .lock()
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, h)| (name.clone(), h.export_state()))
                .collect(),
        }
    }

    /// Replaces this registry's counters and histograms with `state`
    /// (captured by [`Registry::export_state`], possibly in a previous
    /// process).
    ///
    /// # Errors
    ///
    /// Returns a message when a histogram state is structurally invalid;
    /// the registry is left unchanged in that case.
    pub fn restore_state(&self, state: &RegistryState) -> Result<(), String> {
        let mut spans = BTreeMap::new();
        for (name, hs) in &state.spans {
            spans.insert(name.clone(), StreamingHistogram::from_state(hs.clone())?);
        }
        let mut values = BTreeMap::new();
        for (name, hs) in &state.values {
            values.insert(name.clone(), StreamingHistogram::from_state(hs.clone())?);
        }
        let mut counters = BTreeMap::new();
        for (name, total) in &state.counters {
            // The counter map is keyed by `&'static str` so the hot
            // `counter_add` path stays allocation-free. Restored names come
            // from a file; leak them once. The name set is small and fixed
            // per run, so the leak is bounded.
            let name: &'static str = Box::leak(name.clone().into_boxed_str());
            counters.insert(name, Arc::new(AtomicU64::new(*total)));
        }
        *self.counters.write() = counters;
        *self.spans.lock() = spans;
        *self.values.lock() = values;
        Ok(())
    }

    /// Prints a rate-limited one-line progress summary to stderr. Returns
    /// whether a line was printed.
    pub fn progress(&self, context: &str) -> bool {
        {
            let mut last = self.last_progress.lock();
            let now = Instant::now();
            match *last {
                Some(t) if now.duration_since(t) < self.cfg.progress_every => return false,
                _ => *last = Some(now),
            }
        }
        let snap = self.snapshot();
        eprintln!("{}", snap.progress_line(context));
        true
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("run_label", &self.cfg.run_label)
            .field("elapsed", &self.elapsed())
            .finish_non_exhaustive()
    }
}

/// Metric-name prefixes that describe fault recovery in *this process*
/// (stall/respawn/degrade bookkeeping, checkpoint-IO retries) rather than
/// the training run itself. [`Registry::export_state`] keeps them out of
/// checkpoints so a run that survived faults checkpoints byte-identically
/// to one that never saw any.
pub const FAULT_LOCAL_PREFIXES: [&str; 3] = ["actor/", "supervisor/", "checkpoint/"];

/// Complete mutable state of a [`Registry`], captured by
/// [`Registry::export_state`] for trainer checkpoints.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistryState {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Full span-histogram states by span path.
    pub spans: BTreeMap<String, HistogramState>,
    /// Full value-histogram states by name.
    pub values: BTreeMap<String, HistogramState>,
}

impl RegistryState {
    /// Serializes the state to a compact little-endian byte blob, suitable
    /// for storage as an opaque checkpoint section.
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        fn put_hist(out: &mut Vec<u8>, h: &HistogramState) {
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.rejected.to_le_bytes());
            out.extend_from_slice(&h.sum.to_le_bytes());
            out.extend_from_slice(&h.min.to_le_bytes());
            out.extend_from_slice(&h.max.to_le_bytes());
            out.extend_from_slice(&(h.capacity as u64).to_le_bytes());
            out.extend_from_slice(&h.rng_state.to_le_bytes());
            out.extend_from_slice(&(h.reservoir.len() as u64).to_le_bytes());
            for v in &h.reservoir {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (name, total) in &self.counters {
            put_str(&mut out, name);
            out.extend_from_slice(&total.to_le_bytes());
        }
        for map in [&self.spans, &self.values] {
            out.extend_from_slice(&(map.len() as u32).to_le_bytes());
            for (name, h) in map {
                put_str(&mut out, name);
                put_hist(&mut out, h);
            }
        }
        out
    }

    /// Parses a blob produced by [`RegistryState::to_bytes`]. Every length
    /// field is validated against the bytes present before any allocation.
    ///
    /// # Errors
    ///
    /// Returns a message on any truncation or structural inconsistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        struct R<'a> {
            buf: &'a [u8],
            pos: usize,
        }
        impl<'a> R<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
                if n > self.buf.len() - self.pos {
                    return Err("telemetry state blob is truncated".to_string());
                }
                let out = &self.buf[self.pos..self.pos + n];
                self.pos += n;
                Ok(out)
            }
            fn u32(&mut self) -> Result<u32, String> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn u64(&mut self) -> Result<u64, String> {
                Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn f64(&mut self) -> Result<f64, String> {
                Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn string(&mut self) -> Result<String, String> {
                let len = self.u32()? as usize;
                if len > 1 << 16 {
                    return Err(format!("telemetry state name length {len} is absurd"));
                }
                String::from_utf8(self.take(len)?.to_vec())
                    .map_err(|_| "telemetry state name is not utf-8".to_string())
            }
            fn hist(&mut self) -> Result<HistogramState, String> {
                let count = self.u64()?;
                let rejected = self.u64()?;
                let sum = self.f64()?;
                let min = self.f64()?;
                let max = self.f64()?;
                let capacity = self.u64()? as usize;
                let rng_state = self.u64()?;
                let len = self.u64()? as usize;
                if len > capacity || capacity > 1 << 24 {
                    return Err(format!(
                        "telemetry histogram reservoir length {len} exceeds capacity {capacity}"
                    ));
                }
                let raw = self.take(len.checked_mul(8).ok_or("reservoir length overflows")?)?;
                let mut reservoir = Vec::with_capacity(len);
                for chunk in raw.chunks_exact(8) {
                    reservoir.push(f64::from_le_bytes(chunk.try_into().unwrap()));
                }
                Ok(HistogramState {
                    count,
                    rejected,
                    sum,
                    min,
                    max,
                    reservoir,
                    capacity,
                    rng_state,
                })
            }
        }
        let mut r = R { buf: bytes, pos: 0 };
        let n_counters = r.u32()? as usize;
        let mut counters = BTreeMap::new();
        for _ in 0..n_counters {
            let name = r.string()?;
            let total = r.u64()?;
            counters.insert(name, total);
        }
        let mut maps = [BTreeMap::new(), BTreeMap::new()];
        for map in &mut maps {
            let n = r.u32()? as usize;
            for _ in 0..n {
                let name = r.string()?;
                let h = r.hist()?;
                map.insert(name, h);
            }
        }
        if r.pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after telemetry state",
                bytes.len() - r.pos
            ));
        }
        let [spans, values] = maps;
        Ok(Self {
            counters,
            spans,
            values,
        })
    }
}

/// A counter's snapshot: total and derived throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CounterStats {
    /// Monotonic total.
    pub total: u64,
    /// `total / elapsed` — the throughput gauge (e.g. env steps/sec).
    pub rate_per_s: f64,
}

/// A consistent point-in-time view of every metric in a [`Registry`].
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// The registry's run label.
    pub run_label: String,
    /// Wall-clock time covered by this snapshot.
    pub elapsed: Duration,
    /// Counter totals and rates, by name.
    pub counters: BTreeMap<String, CounterStats>,
    /// Span duration summaries (microseconds), by span path.
    pub spans: BTreeMap<String, HistogramStats>,
    /// Free-form value summaries, by name.
    pub values: BTreeMap<String, HistogramStats>,
    /// Live gauges (newest value only), by name. `live/` plane: excluded
    /// from checkpoints and golden diffs.
    pub gauges: BTreeMap<String, f64>,
    /// Live wall-clock histograms, by name. Same exclusions as gauges.
    pub live: BTreeMap<String, HistogramStats>,
}

impl Snapshot {
    /// Counter totals only — the deterministic portion of a snapshot
    /// (durations and rates vary run-to-run; counts must not).
    pub fn counter_totals(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .map(|(k, v)| (k.clone(), v.total))
            .collect()
    }

    /// The human-readable progress line. Watchdog counters are pulled out
    /// of the generic counter list into a dedicated learning-health tail,
    /// together with current opponent-model accuracy, so long headless
    /// runs surface training health without post-processing.
    pub fn progress_line(&self, context: &str) -> String {
        use std::fmt::Write;
        let mut line = format!(
            "[telemetry {} {}] {:.1}s",
            self.run_label,
            context,
            self.elapsed.as_secs_f64()
        );
        for (name, c) in &self.counters {
            if name.starts_with("watchdog/") {
                continue;
            }
            let _ = write!(line, " | {name} {} ({:.1}/s)", c.total, c.rate_per_s);
        }
        let skipped = self
            .counters
            .get("watchdog/skipped_updates")
            .map_or(0, |c| c.total);
        if skipped > 0 {
            let _ = write!(line, " | watchdog skipped {skipped}");
        }
        if let Some(acc) = self.values.get("opponent/accuracy") {
            if acc.count > 0 {
                let _ = write!(line, " | opp_acc {:.3}", acc.mean);
            }
        }
        // Live rollout tail: only present while the actor/learner path is
        // active (the gauges are set by `hero_core::rollout`).
        if let Some(total) = self.gauges.get("live/actors_total") {
            let busy = self.gauges.get("live/actors_busy").copied().unwrap_or(0.0);
            let depth = self
                .gauges
                .get("live/queue_depth_total")
                .copied()
                .unwrap_or(0.0);
            let _ = write!(line, " | actors {}/{} q {}", busy, total, depth);
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_rate() {
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("env_steps", 10);
        r.counter_add("env_steps", 5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["env_steps"].total, 15);
        assert!(snap.counters["env_steps"].rate_per_s > 0.0);
    }

    #[test]
    fn spans_and_values_summarized() {
        let r = Registry::new(TelemetryConfig::default());
        r.record_span("a/b".into(), Duration::from_micros(100));
        r.record_span("a/b".into(), Duration::from_micros(300));
        r.observe("reward", 1.0);
        let snap = r.snapshot();
        assert_eq!(snap.spans["a/b"].count, 2);
        assert!((snap.spans["a/b"].mean - 200.0).abs() < 1.0);
        assert_eq!(snap.values["reward"].count, 1);
    }

    #[test]
    fn progress_is_rate_limited() {
        let r = Registry::new(TelemetryConfig {
            progress_every: Duration::from_secs(3600),
            ..TelemetryConfig::default()
        });
        r.counter_add("x", 1);
        assert!(r.progress("t"), "first call prints");
        assert!(!r.progress("t"), "second call inside the interval is muted");
    }

    #[test]
    fn progress_line_mentions_counters() {
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("env_steps", 7);
        let line = r.snapshot().progress_line("ep 3");
        assert!(line.contains("env_steps 7"), "{line}");
        assert!(line.contains("ep 3"), "{line}");
    }

    #[test]
    fn progress_line_surfaces_learning_health() {
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("watchdog/skipped_updates", 2);
        r.counter_add("watchdog/nonfinite_grads", 9);
        r.observe("opponent/accuracy", 0.25);
        r.observe("opponent/accuracy", 0.75);
        let line = r.snapshot().progress_line("ep 1");
        assert!(line.contains("watchdog skipped 2"), "{line}");
        assert!(line.contains("opp_acc 0.500"), "{line}");
        assert!(
            !line.contains("watchdog/nonfinite_grads"),
            "watchdog counters stay out of the generic list: {line}"
        );
    }

    #[test]
    fn dynamic_value_names_accumulate() {
        let r = Registry::new(TelemetryConfig::default());
        for layer in 0..3 {
            let name = format!("grad_norm/actor/l{layer}");
            r.observe(&name, layer as f64);
            r.observe(&name, layer as f64 + 1.0);
        }
        let snap = r.snapshot();
        assert_eq!(snap.values.len(), 3);
        assert_eq!(snap.values["grad_norm/actor/l1"].count, 2);
        assert!((snap.values["grad_norm/actor/l1"].mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn state_roundtrip_is_bit_identical() {
        let a = Registry::new(TelemetryConfig::default());
        a.counter_add("env_steps", 41);
        a.record_span("rollout".into(), Duration::from_micros(120));
        for i in 0..200 {
            a.observe("reward", (i as f64).cos());
        }
        let blob = a.export_state().to_bytes();
        let state = RegistryState::from_bytes(&blob).unwrap();
        assert_eq!(state, a.export_state());

        let b = Registry::new(TelemetryConfig::default());
        b.restore_state(&state).unwrap();
        // Continue both identically; stats must stay bit-identical.
        for r in [&a, &b] {
            r.counter_add("env_steps", 1);
            for i in 200..400 {
                r.observe("reward", (i as f64).cos());
            }
        }
        assert_eq!(a.export_state(), b.export_state());
        assert_eq!(
            a.snapshot().counter_totals(),
            b.snapshot().counter_totals()
        );
        assert_eq!(a.snapshot().values, b.snapshot().values);
    }

    #[test]
    fn state_from_truncated_bytes_fails_cleanly() {
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("c", 7);
        r.observe("v", 1.0);
        let blob = r.export_state().to_bytes();
        for cut in 0..blob.len() {
            assert!(
                RegistryState::from_bytes(&blob[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn gauges_overwrite_and_live_histograms_accumulate() {
        let r = Registry::new(TelemetryConfig::default());
        r.gauge_set("live/queue/actor0", 3.0);
        r.gauge_set("live/queue/actor0", 1.0);
        r.gauge_set("live/bad", f64::NAN);
        r.live_observe("live/wave_us", 100.0);
        r.live_observe("live/wave_us", 300.0);
        let snap = r.snapshot();
        assert_eq!(snap.gauges["live/queue/actor0"], 1.0);
        assert!(!snap.gauges.contains_key("live/bad"));
        assert_eq!(snap.live["live/wave_us"].count, 2);
        assert!((snap.live["live/wave_us"].mean - 200.0).abs() < 1e-9);
    }

    #[test]
    fn live_plane_never_enters_checkpoint_state() {
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("env_steps", 1);
        let clean = r.export_state();
        r.gauge_set("live/queue/actor0", 5.0);
        r.live_observe("live/wave_us", 42.0);
        r.flight_event(FlightEventKind::StallDetected { actor: 0 });
        r.mark_faulted();
        assert_eq!(
            r.export_state(),
            clean,
            "gauges/live/flight/faulted are process state, not training state"
        );
        assert_eq!(clean.to_bytes(), r.export_state().to_bytes());
    }

    #[test]
    fn fault_bookkeeping_never_enters_checkpoint_state() {
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("env_steps", 1);
        r.observe("reward/mean", 0.5);
        let clean = r.export_state();
        // Everything a supervised run records while surviving faults...
        r.counter_add("actor/stalled", 1);
        r.counter_add("actor/panicked", 1);
        r.counter_add("actor/respawned", 2);
        r.counter_add("supervisor/degraded", 1);
        r.counter_add("checkpoint/retries", 3);
        r.observe("actor/respawn_backoff_ms", 8.0);
        // ...is process state: checkpoint bytes must not move.
        assert_eq!(
            r.export_state(),
            clean,
            "fault-recovery bookkeeping is process state, not training state"
        );
        assert_eq!(clean.to_bytes(), r.export_state().to_bytes());
        // But it stays visible to snapshots (telemetry dumps, doctor).
        assert_eq!(r.snapshot().counter_totals()["actor/respawned"], 2);
    }

    #[test]
    fn flight_events_timestamped_and_ordered() {
        let r = Registry::new(TelemetryConfig::default());
        r.flight_event(FlightEventKind::WaveDispatched { wave: 0, worlds: 2 });
        r.flight_event(FlightEventKind::WaveCompleted { wave: 0, episodes: 2 });
        let events = r.flight_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert!(events[0].t_us <= events[1].t_us);
        assert!(matches!(
            events[0].kind,
            FlightEventKind::WaveDispatched { wave: 0, worlds: 2 }
        ));
    }

    #[test]
    fn progress_line_gains_live_rollout_tail() {
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("env_steps", 7);
        let plain = r.snapshot().progress_line("ep 1");
        assert!(!plain.contains("actors"), "{plain}");
        r.gauge_set("live/actors_total", 2.0);
        r.gauge_set("live/actors_busy", 1.0);
        r.gauge_set("live/queue_depth_total", 3.0);
        let line = r.snapshot().progress_line("ep 1");
        assert!(line.contains("actors 1/2 q 3"), "{line}");
    }

    #[test]
    fn trace_capture_gated_on_config() {
        use crate::trace::{TraceEvent, TracePhase};
        let ev = || TraceEvent {
            phase: TracePhase::Begin,
            name: "x".into(),
            tid: 1,
            ts_us: 0.0,
            arg: None,
        };
        let off = Registry::new(TelemetryConfig::default());
        assert!(!off.trace_enabled());
        off.record_trace_event(ev());
        assert!(off.trace_events().is_empty());

        let on = Registry::new(TelemetryConfig::default().with_trace("/tmp/trace.json"));
        assert!(on.trace_enabled());
        on.record_trace_event(ev());
        assert_eq!(on.trace_events().len(), 1);
    }
}

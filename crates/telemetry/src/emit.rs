//! Emitters: JSONL and CSV serialization of [`Snapshot`]s, the
//! `BENCH_telemetry.json` perf-trajectory summary, and a minimal JSONL
//! parser used by round-trip tests and downstream tooling.
//!
//! ## JSONL schema (one object per line)
//!
//! ```text
//! {"type":"meta","run":"<label>","elapsed_s":<f64>}
//! {"type":"counter","name":"<name>","total":<u64>,"rate_per_s":<f64>}
//! {"type":"span","name":"<path>","count":<u64>,"total_us":<f64>,"mean_us":<f64>,
//!  "min_us":<f64>,"max_us":<f64>,"p50_us":<f64>,"p95_us":<f64>,"p99_us":<f64>}
//! {"type":"value","name":"<name>","count":<u64>,"mean":<f64>,"min":<f64>,
//!  "max":<f64>,"p50":<f64>,"p95":<f64>,"p99":<f64>}
//! {"type":"gauge","name":"<name>","value":<f64>}
//! {"type":"live","name":"<name>","count":<u64>,"mean":<f64>,"min":<f64>,
//!  "max":<f64>,"p50":<f64>,"p95":<f64>,"p99":<f64>}
//! ```
//!
//! `gauge` and `live` records carry the live observability plane
//! (instantaneous rollout state and wall-clock latencies); they are
//! excluded from checkpoints and from `hero-inspect diff` comparisons.
//!
//! Every number is rendered finite (non-finite inputs are rejected at
//! ingest; defensive sanitization maps any residual non-finite value to 0).
//!
//! The same snapshot also renders in the Prometheus text exposition
//! format via [`to_prometheus`] (served by
//! [`crate::exporter::MetricsExporter`]), with a strict parser
//! ([`parse_prometheus`]) used by round-trip tests and CI smoke scrapes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

use crate::registry::Snapshot;
use crate::ring::{FlightEvent, FlightEventKind};

/// Formats a JSON number, guaranteeing finiteness.
fn num(x: f64) -> String {
    let x = if x.is_finite() { x } else { 0.0 };
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Escapes a JSON string body.
pub fn escape_json(s: &str) -> String {
    escape(s)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot in the JSONL schema.
pub fn to_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"run\":\"{}\",\"elapsed_s\":{}}}",
        escape(&snap.run_label),
        num(snap.elapsed.as_secs_f64())
    );
    for (name, c) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"total\":{},\"rate_per_s\":{}}}",
            escape(name),
            c.total,
            num(c.rate_per_s)
        );
    }
    for (name, h) in &snap.spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"name\":\"{}\",\"count\":{},\"total_us\":{},\"mean_us\":{},\
             \"min_us\":{},\"max_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            escape(name),
            h.count,
            num(h.sum),
            num(h.mean),
            num(h.min),
            num(h.max),
            num(h.p50),
            num(h.p95),
            num(h.p99)
        );
    }
    for (name, h) in &snap.values {
        let _ = writeln!(
            out,
            "{{\"type\":\"value\",\"name\":\"{}\",\"count\":{},\"mean\":{},\
             \"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            escape(name),
            h.count,
            num(h.mean),
            num(h.min),
            num(h.max),
            num(h.p50),
            num(h.p95),
            num(h.p99)
        );
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            escape(name),
            num(*v)
        );
    }
    for (name, h) in &snap.live {
        let _ = writeln!(
            out,
            "{{\"type\":\"live\",\"name\":\"{}\",\"count\":{},\"mean\":{},\
             \"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            escape(name),
            h.count,
            num(h.mean),
            num(h.min),
            num(h.max),
            num(h.p50),
            num(h.p95),
            num(h.p99)
        );
    }
    out
}

/// Renders flight-recorder events as JSONL, one event per line:
/// `{"seq":N,"t_us":T,"event":"<name>",...payload}`.
pub fn flight_to_jsonl(events: &[FlightEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_us\":{},\"event\":\"{}\"",
            e.seq,
            e.t_us,
            e.kind.name()
        );
        match e.kind {
            FlightEventKind::WaveDispatched { wave, worlds } => {
                let _ = write!(out, ",\"wave\":{wave},\"worlds\":{worlds}");
            }
            FlightEventKind::WaveCompleted { wave, episodes } => {
                let _ = write!(out, ",\"wave\":{wave},\"episodes\":{episodes}");
            }
            FlightEventKind::CheckpointSaved { index }
            | FlightEventKind::CheckpointLoaded { index } => {
                let _ = write!(out, ",\"index\":{index}");
            }
            FlightEventKind::StallDetected { actor } => {
                let _ = write!(out, ",\"actor\":{actor}");
            }
            FlightEventKind::Redispatched { actor, wave } => {
                let _ = write!(out, ",\"actor\":{actor},\"wave\":{wave}");
            }
            FlightEventKind::WatchdogSkip { update } => {
                let _ = write!(out, ",\"update\":{update}");
            }
            FlightEventKind::KillInjected { episode } => {
                let _ = write!(out, ",\"episode\":{episode}");
            }
            FlightEventKind::ActorPanicked { actor } => {
                let _ = write!(out, ",\"actor\":{actor}");
            }
            FlightEventKind::ActorRespawned { actor, generation } => {
                let _ = write!(out, ",\"actor\":{actor},\"generation\":{generation}");
            }
            FlightEventKind::SupervisorDegraded { actor, remaining } => {
                let _ = write!(out, ",\"actor\":{actor},\"remaining\":{remaining}");
            }
            FlightEventKind::EmergencyCheckpoint { episodes, saved } => {
                let _ = write!(out, ",\"episodes\":{episodes},\"saved\":{saved}");
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Writes `flight_recorder.jsonl` into `dir`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_flight(events: &[FlightEvent], dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut f = std::fs::File::create(dir.join("flight_recorder.jsonl"))?;
    f.write_all(flight_to_jsonl(events).as_bytes())?;
    f.flush()
}

/// Renders counters as CSV (`name,total,rate_per_s`).
pub fn counters_csv(snap: &Snapshot) -> String {
    let mut out = String::from("name,total,rate_per_s\n");
    for (name, c) in &snap.counters {
        let _ = writeln!(out, "{},{},{}", name, c.total, num(c.rate_per_s));
    }
    out
}

/// Renders span summaries as CSV.
pub fn spans_csv(snap: &Snapshot) -> String {
    let mut out =
        String::from("name,count,total_us,mean_us,min_us,max_us,p50_us,p95_us,p99_us\n");
    for (name, h) in &snap.spans {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            name,
            h.count,
            num(h.sum),
            num(h.mean),
            num(h.min),
            num(h.max),
            num(h.p50),
            num(h.p95),
            num(h.p99)
        );
    }
    out
}

/// Renders the `BENCH_telemetry.json` summary: one flat JSON object whose
/// keys seed the repository's perf trajectory (throughputs and span p50s).
pub fn bench_summary_json(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"run\":\"{}\",\"elapsed_s\":{}",
        escape(&snap.run_label),
        num(snap.elapsed.as_secs_f64())
    );
    for (name, c) in &snap.counters {
        let _ = write!(
            out,
            ",\"{}_total\":{},\"{}_per_s\":{}",
            escape(name),
            c.total,
            escape(name),
            num(c.rate_per_s)
        );
    }
    for (name, h) in &snap.spans {
        let key = escape(&name.replace('/', "."));
        let _ = write!(out, ",\"span.{key}.p50_us\":{}", num(h.p50));
    }
    out.push_str("}\n");
    out
}

/// Writes all emitter outputs into `dir`
/// (`telemetry.jsonl`, `counters.csv`, `spans.csv`, `BENCH_telemetry.json`).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_all(snap: &Snapshot, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let write = |name: &str, body: String| -> io::Result<()> {
        let mut f = std::fs::File::create(dir.join(name))?;
        f.write_all(body.as_bytes())?;
        f.flush()
    };
    write("telemetry.jsonl", to_jsonl(snap))?;
    write("counters.csv", counters_csv(snap))?;
    write("spans.csv", spans_csv(snap))?;
    write("BENCH_telemetry.json", bench_summary_json(snap))
}

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`, newline →
/// `\n`).
fn escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4), served by the `/metrics` endpoint.
///
/// Metric names are fixed families; the registry's hierarchical metric
/// names (`live/queue_depth/actor0`) travel in a `name` label so they
/// survive Prometheus' restricted identifier alphabet unmangled:
///
/// * `hero_up` / `hero_elapsed_seconds` — liveness and run age
/// * `hero_counter_total{name=...}` — monotonic counter totals
/// * `hero_gauge{name=...}` — live gauges (`live/` plane)
/// * `hero_span_us{name=...,quantile=...}` + `_sum`/`_count` — span summaries
/// * `hero_value{name=...,quantile=...}` + `_sum`/`_count` — value summaries
/// * `hero_live{name=...,quantile=...}` + `_sum`/`_count` — live histograms
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# HELP hero_up Run is alive and scrapeable.");
    let _ = writeln!(out, "# TYPE hero_up gauge");
    let _ = writeln!(out, "hero_up 1");
    let _ = writeln!(out, "# HELP hero_elapsed_seconds Wall-clock run age.");
    let _ = writeln!(out, "# TYPE hero_elapsed_seconds gauge");
    let _ = writeln!(
        out,
        "hero_elapsed_seconds {}",
        num(snap.elapsed.as_secs_f64())
    );
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "# HELP hero_counter_total Monotonic counter totals.");
        let _ = writeln!(out, "# TYPE hero_counter_total counter");
        for (name, c) in &snap.counters {
            let _ = writeln!(
                out,
                "hero_counter_total{{name=\"{}\"}} {}",
                escape_label(name),
                c.total
            );
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "# HELP hero_gauge Live gauges (newest value).");
        let _ = writeln!(out, "# TYPE hero_gauge gauge");
        for (name, v) in &snap.gauges {
            let _ = writeln!(
                out,
                "hero_gauge{{name=\"{}\"}} {}",
                escape_label(name),
                num(*v)
            );
        }
    }
    let mut summary = |family: &str, help: &str, map: &BTreeMap<String, crate::HistogramStats>| {
        if map.is_empty() {
            return;
        }
        let _ = writeln!(out, "# HELP {family} {help}");
        let _ = writeln!(out, "# TYPE {family} summary");
        for (name, h) in map {
            let name = escape_label(name);
            for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
                let _ = writeln!(
                    out,
                    "{family}{{name=\"{name}\",quantile=\"{q}\"}} {}",
                    num(v)
                );
            }
            let _ = writeln!(out, "{family}_sum{{name=\"{name}\"}} {}", num(h.sum));
            let _ = writeln!(out, "{family}_count{{name=\"{name}\"}} {}", h.count);
        }
    };
    summary("hero_span_us", "Span durations (microseconds).", &snap.spans);
    summary("hero_value", "Free-form value observations.", &snap.values);
    summary("hero_live", "Live rollout-plane histograms.", &snap.live);
    out
}

/// One sample parsed back out of the Prometheus text format.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// The metric family name.
    pub name: String,
    /// Label key/value pairs.
    pub labels: BTreeMap<String, String>,
    /// The sample value.
    pub value: f64,
}

/// Parses the Prometheus text format produced by [`to_prometheus`]
/// (comment lines are skipped; every sample line must be well-formed).
///
/// # Errors
///
/// Returns the 1-based line number and a description of the first
/// malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, (usize, String)> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_prom_line(line).map_err(|e| (i + 1, e))?);
    }
    Ok(out)
}

fn parse_prom_line(line: &str) -> Result<PromSample, String> {
    let mut chars = line.chars().peekable();
    let mut name = String::new();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            name.push(c);
            chars.next();
        } else {
            break;
        }
    }
    if name.is_empty() || name.chars().next().unwrap().is_ascii_digit() {
        return Err(format!("bad metric name in {line:?}"));
    }
    let mut labels = BTreeMap::new();
    if chars.peek() == Some(&'{') {
        chars.next();
        loop {
            while chars.peek() == Some(&',') || chars.peek() == Some(&' ') {
                chars.next();
            }
            if chars.peek() == Some(&'}') {
                chars.next();
                break;
            }
            let mut key = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    key.push(c);
                    chars.next();
                } else {
                    break;
                }
            }
            if key.is_empty() || chars.next() != Some('=') || chars.next() != Some('"') {
                return Err(format!("bad label in {line:?}"));
            }
            let mut val = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some('n') => val.push('\n'),
                        Some('\\') => val.push('\\'),
                        Some('"') => val.push('"'),
                        other => return Err(format!("bad escape {other:?} in {line:?}")),
                    },
                    Some(c) => val.push(c),
                    None => return Err(format!("unterminated label value in {line:?}")),
                }
            }
            labels.insert(key, val);
        }
    }
    let rest: String = chars.collect();
    let value = rest
        .trim()
        .parse::<f64>()
        .map_err(|e| format!("bad value {:?} in {line:?}: {e}", rest.trim()))?;
    Ok(PromSample {
        name,
        labels,
        value,
    })
}

/// A JSON value in a parsed JSONL record.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
    /// `true`/`false`.
    Bool(bool),
    /// `null`.
    Null,
    /// A nested object (e.g. trace-event `args`).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The fields, if this is a nested object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }
}

/// Parses one JSON object (nested objects allowed; arrays are not, since
/// no emitter in this crate produces them), as emitted by [`to_jsonl`] and
/// the trace exporter.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_json_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut chars = line.trim().chars().peekable();
    let out = parse_object_body(&mut chars)?;
    skip_ws(&mut chars);
    if let Some(c) = chars.next() {
        return Err(format!("trailing character {c:?} after object"));
    }
    Ok(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_object_body(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut out = BTreeMap::new();
    skip_ws(chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        skip_ws(chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some(',') => {
                chars.next();
            }
            Some('"') => {}
            Some(c) => return Err(format!("unexpected character {c:?}")),
            None => return Err("unterminated object".into()),
        }
        skip_ws(chars);
        if chars.peek() == Some(&'"') {
            let key = parse_string(chars)?;
            skip_ws(chars);
            if chars.next() != Some(':') {
                return Err(format!("expected ':' after key {key:?}"));
            }
            out.insert(key, parse_value(chars)?);
        }
    }
    Ok(out)
}

fn parse_value(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<JsonValue, String> {
    skip_ws(chars);
    match chars.peek() {
        Some('"') => Ok(JsonValue::Str(parse_string(chars)?)),
        Some('{') => Ok(JsonValue::Object(parse_object_body(chars)?)),
        Some('t') => {
            expect_word(chars, "true")?;
            Ok(JsonValue::Bool(true))
        }
        Some('f') => {
            expect_word(chars, "false")?;
            Ok(JsonValue::Bool(false))
        }
        Some('n') => {
            expect_word(chars, "null")?;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let mut buf = String::new();
            while let Some(&c) = chars.peek() {
                if c == ',' || c == '}' {
                    break;
                }
                buf.push(c);
                chars.next();
            }
            Ok(JsonValue::Num(
                buf.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("bad number {buf:?}: {e}"))?,
            ))
        }
        None => Err("unterminated value".into()),
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                Some(c) => out.push(c),
                None => return Err("unterminated escape".into()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn expect_word(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    word: &str,
) -> Result<(), String> {
    for expected in word.chars() {
        if chars.next() != Some(expected) {
            return Err(format!("expected literal {word:?}"));
        }
    }
    Ok(())
}

/// Parses a whole JSONL document into one record per non-empty line.
///
/// # Errors
///
/// Returns the first line number (1-based) and error description.
pub fn parse_jsonl(text: &str) -> Result<Vec<BTreeMap<String, JsonValue>>, (usize, String)> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_json_object(l).map_err(|e| (i + 1, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_escapes() {
        let rec =
            parse_json_object(r#"{"type":"meta","run":"a\"b\\c","elapsed_s":1.5,"ok":true}"#)
                .unwrap();
        assert_eq!(rec["run"].as_str(), Some("a\"b\\c"));
        assert_eq!(rec["elapsed_s"].as_f64(), Some(1.5));
        assert_eq!(rec["ok"], JsonValue::Bool(true));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_json_object("{\"a\":}").is_err());
        assert!(parse_json_object("nope").is_err());
        assert!(parse_json_object("{\"a\":{\"b\":1}").is_err(), "unclosed nest");
        assert!(parse_json_object("{\"a\":1} x").is_err(), "trailing junk");
    }

    #[test]
    fn parses_nested_objects() {
        let rec = parse_json_object(
            r#"{"name":"rollout","ph":"E","args":{"dur_us":12.5,"deep":{"k":1}}}"#,
        )
        .unwrap();
        let args = rec["args"].as_object().unwrap();
        assert_eq!(args["dur_us"].as_f64(), Some(12.5));
        assert_eq!(args["deep"].as_object().unwrap()["k"].as_f64(), Some(1.0));
        assert_eq!(rec["ph"].as_str(), Some("E"));
    }

    #[test]
    fn num_formatting_never_leaks_non_finite() {
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        assert_eq!(num(2.0), "2");
        assert_eq!(num(2.5), "2.5");
    }

    fn sample_snapshot() -> Snapshot {
        use crate::registry::{Registry, TelemetryConfig};
        let r = Registry::new(TelemetryConfig::default());
        r.counter_add("env_steps", 41);
        r.counter_add("episodes", 3);
        r.record_span("rollout/env_step".into(), std::time::Duration::from_micros(120));
        r.observe("reward", 1.5);
        r.gauge_set("live/queue_depth/actor0", 2.0);
        r.gauge_set("live/actors_total", 2.0);
        r.live_observe("live/wave_us", 512.0);
        r.live_observe("live/wave_us", 1024.0);
        r.snapshot()
    }

    #[test]
    fn jsonl_includes_gauge_and_live_records() {
        let text = to_jsonl(&sample_snapshot());
        let records = parse_jsonl(&text).unwrap();
        let gauge = records
            .iter()
            .find(|r| {
                r.get("type").and_then(JsonValue::as_str) == Some("gauge")
                    && r.get("name").and_then(JsonValue::as_str)
                        == Some("live/queue_depth/actor0")
            })
            .expect("gauge record present");
        assert_eq!(gauge["value"].as_f64(), Some(2.0));
        let live = records
            .iter()
            .find(|r| r.get("type").and_then(JsonValue::as_str) == Some("live"))
            .expect("live record present");
        assert_eq!(live["name"].as_str(), Some("live/wave_us"));
        assert_eq!(live["count"].as_f64(), Some(2.0));
        assert_eq!(live["mean"].as_f64(), Some(768.0));
    }

    #[test]
    fn prometheus_round_trips_names_labels_and_values() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        let samples = parse_prometheus(&text).unwrap();
        let find = |family: &str, name: &str| -> Vec<&PromSample> {
            samples
                .iter()
                .filter(|s| s.name == family && s.labels.get("name").map(String::as_str) == Some(name))
                .collect()
        };
        assert_eq!(find("hero_counter_total", "env_steps")[0].value, 41.0);
        assert_eq!(find("hero_counter_total", "episodes")[0].value, 3.0);
        assert_eq!(find("hero_gauge", "live/queue_depth/actor0")[0].value, 2.0);
        assert_eq!(find("hero_live_count", "live/wave_us")[0].value, 2.0);
        assert_eq!(find("hero_live_sum", "live/wave_us")[0].value, 1536.0);
        let quantiles = find("hero_live", "live/wave_us");
        assert_eq!(quantiles.len(), 3);
        for s in &quantiles {
            assert!(s.labels.contains_key("quantile"));
            assert!(s.value >= 512.0 && s.value <= 1024.0);
        }
        assert_eq!(find("hero_span_us_count", "rollout/env_step")[0].value, 1.0);
        assert!(samples.iter().any(|s| s.name == "hero_up" && s.value == 1.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "hero_elapsed_seconds" && s.value >= 0.0));
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let line = format!("hero_gauge{{name=\"{}\"}} 1", escape_label("a\"b\\c\nd"));
        let parsed = parse_prom_line(&line).unwrap();
        assert_eq!(parsed.labels["name"], "a\"b\\c\nd");
    }

    #[test]
    fn prometheus_parser_rejects_malformed() {
        assert!(parse_prometheus("3metric 1").is_err());
        assert!(parse_prometheus("m{name=} 1").is_err());
        assert!(parse_prometheus("m{name=\"x\"} nope").is_err());
        assert!(parse_prometheus("m{name=\"unterminated} 1").is_err());
        let err = parse_prometheus("hero_up 1\nbroken{ 1").unwrap_err();
        assert_eq!(err.0, 2, "error carries the 1-based line number");
    }

    #[test]
    fn flight_jsonl_round_trips_through_parser() {
        let events = vec![
            FlightEvent {
                seq: 0,
                t_us: 10,
                kind: FlightEventKind::StallDetected { actor: 0 },
            },
            FlightEvent {
                seq: 1,
                t_us: 20,
                kind: FlightEventKind::Redispatched { actor: 1, wave: 4 },
            },
            FlightEvent {
                seq: 2,
                t_us: 30,
                kind: FlightEventKind::CheckpointSaved { index: 7 },
            },
        ];
        let text = flight_to_jsonl(&events);
        let records = parse_jsonl(&text).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0]["event"].as_str(), Some("stall_detected"));
        assert_eq!(records[0]["actor"].as_f64(), Some(0.0));
        assert_eq!(records[1]["event"].as_str(), Some("redispatched"));
        assert_eq!(records[1]["wave"].as_f64(), Some(4.0));
        assert_eq!(records[2]["event"].as_str(), Some("checkpoint_saved"));
        assert_eq!(records[2]["index"].as_f64(), Some(7.0));
        let seqs: Vec<f64> = records.iter().map(|r| r["seq"].as_f64().unwrap()).collect();
        assert_eq!(seqs, vec![0.0, 1.0, 2.0]);
    }
}

//! Emitters: JSONL and CSV serialization of [`Snapshot`]s, the
//! `BENCH_telemetry.json` perf-trajectory summary, and a minimal JSONL
//! parser used by round-trip tests and downstream tooling.
//!
//! ## JSONL schema (one object per line)
//!
//! ```text
//! {"type":"meta","run":"<label>","elapsed_s":<f64>}
//! {"type":"counter","name":"<name>","total":<u64>,"rate_per_s":<f64>}
//! {"type":"span","name":"<path>","count":<u64>,"total_us":<f64>,"mean_us":<f64>,
//!  "min_us":<f64>,"max_us":<f64>,"p50_us":<f64>,"p95_us":<f64>,"p99_us":<f64>}
//! {"type":"value","name":"<name>","count":<u64>,"mean":<f64>,"min":<f64>,
//!  "max":<f64>,"p50":<f64>,"p95":<f64>,"p99":<f64>}
//! ```
//!
//! Every number is rendered finite (non-finite inputs are rejected at
//! ingest; defensive sanitization maps any residual non-finite value to 0).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::path::Path;

use crate::registry::Snapshot;

/// Formats a JSON number, guaranteeing finiteness.
fn num(x: f64) -> String {
    let x = if x.is_finite() { x } else { 0.0 };
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Escapes a JSON string body.
pub fn escape_json(s: &str) -> String {
    escape(s)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot in the JSONL schema.
pub fn to_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"run\":\"{}\",\"elapsed_s\":{}}}",
        escape(&snap.run_label),
        num(snap.elapsed.as_secs_f64())
    );
    for (name, c) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"total\":{},\"rate_per_s\":{}}}",
            escape(name),
            c.total,
            num(c.rate_per_s)
        );
    }
    for (name, h) in &snap.spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"name\":\"{}\",\"count\":{},\"total_us\":{},\"mean_us\":{},\
             \"min_us\":{},\"max_us\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
            escape(name),
            h.count,
            num(h.sum),
            num(h.mean),
            num(h.min),
            num(h.max),
            num(h.p50),
            num(h.p95),
            num(h.p99)
        );
    }
    for (name, h) in &snap.values {
        let _ = writeln!(
            out,
            "{{\"type\":\"value\",\"name\":\"{}\",\"count\":{},\"mean\":{},\
             \"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            escape(name),
            h.count,
            num(h.mean),
            num(h.min),
            num(h.max),
            num(h.p50),
            num(h.p95),
            num(h.p99)
        );
    }
    out
}

/// Renders counters as CSV (`name,total,rate_per_s`).
pub fn counters_csv(snap: &Snapshot) -> String {
    let mut out = String::from("name,total,rate_per_s\n");
    for (name, c) in &snap.counters {
        let _ = writeln!(out, "{},{},{}", name, c.total, num(c.rate_per_s));
    }
    out
}

/// Renders span summaries as CSV.
pub fn spans_csv(snap: &Snapshot) -> String {
    let mut out =
        String::from("name,count,total_us,mean_us,min_us,max_us,p50_us,p95_us,p99_us\n");
    for (name, h) in &snap.spans {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{}",
            name,
            h.count,
            num(h.sum),
            num(h.mean),
            num(h.min),
            num(h.max),
            num(h.p50),
            num(h.p95),
            num(h.p99)
        );
    }
    out
}

/// Renders the `BENCH_telemetry.json` summary: one flat JSON object whose
/// keys seed the repository's perf trajectory (throughputs and span p50s).
pub fn bench_summary_json(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"run\":\"{}\",\"elapsed_s\":{}",
        escape(&snap.run_label),
        num(snap.elapsed.as_secs_f64())
    );
    for (name, c) in &snap.counters {
        let _ = write!(
            out,
            ",\"{}_total\":{},\"{}_per_s\":{}",
            escape(name),
            c.total,
            escape(name),
            num(c.rate_per_s)
        );
    }
    for (name, h) in &snap.spans {
        let key = escape(&name.replace('/', "."));
        let _ = write!(out, ",\"span.{key}.p50_us\":{}", num(h.p50));
    }
    out.push_str("}\n");
    out
}

/// Writes all emitter outputs into `dir`
/// (`telemetry.jsonl`, `counters.csv`, `spans.csv`, `BENCH_telemetry.json`).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_all(snap: &Snapshot, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let write = |name: &str, body: String| -> io::Result<()> {
        let mut f = std::fs::File::create(dir.join(name))?;
        f.write_all(body.as_bytes())?;
        f.flush()
    };
    write("telemetry.jsonl", to_jsonl(snap))?;
    write("counters.csv", counters_csv(snap))?;
    write("spans.csv", spans_csv(snap))?;
    write("BENCH_telemetry.json", bench_summary_json(snap))
}

/// A JSON value in a parsed JSONL record.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
    /// `true`/`false`.
    Bool(bool),
    /// `null`.
    Null,
    /// A nested object (e.g. trace-event `args`).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The fields, if this is a nested object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }
}

/// Parses one JSON object (nested objects allowed; arrays are not, since
/// no emitter in this crate produces them), as emitted by [`to_jsonl`] and
/// the trace exporter.
///
/// # Errors
///
/// Returns a description of the first syntax error.
pub fn parse_json_object(line: &str) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut chars = line.trim().chars().peekable();
    let out = parse_object_body(&mut chars)?;
    skip_ws(&mut chars);
    if let Some(c) = chars.next() {
        return Err(format!("trailing character {c:?} after object"));
    }
    Ok(out)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while chars.peek().is_some_and(|c| c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn parse_object_body(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<BTreeMap<String, JsonValue>, String> {
    let mut out = BTreeMap::new();
    skip_ws(chars);
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    loop {
        skip_ws(chars);
        match chars.peek() {
            Some('}') => {
                chars.next();
                break;
            }
            Some(',') => {
                chars.next();
            }
            Some('"') => {}
            Some(c) => return Err(format!("unexpected character {c:?}")),
            None => return Err("unterminated object".into()),
        }
        skip_ws(chars);
        if chars.peek() == Some(&'"') {
            let key = parse_string(chars)?;
            skip_ws(chars);
            if chars.next() != Some(':') {
                return Err(format!("expected ':' after key {key:?}"));
            }
            out.insert(key, parse_value(chars)?);
        }
    }
    Ok(out)
}

fn parse_value(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
) -> Result<JsonValue, String> {
    skip_ws(chars);
    match chars.peek() {
        Some('"') => Ok(JsonValue::Str(parse_string(chars)?)),
        Some('{') => Ok(JsonValue::Object(parse_object_body(chars)?)),
        Some('t') => {
            expect_word(chars, "true")?;
            Ok(JsonValue::Bool(true))
        }
        Some('f') => {
            expect_word(chars, "false")?;
            Ok(JsonValue::Bool(false))
        }
        Some('n') => {
            expect_word(chars, "null")?;
            Ok(JsonValue::Null)
        }
        Some(_) => {
            let mut buf = String::new();
            while let Some(&c) = chars.peek() {
                if c == ',' || c == '}' {
                    break;
                }
                buf.push(c);
                chars.next();
            }
            Ok(JsonValue::Num(
                buf.trim()
                    .parse::<f64>()
                    .map_err(|e| format!("bad number {buf:?}: {e}"))?,
            ))
        }
        None => Err("unterminated value".into()),
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut out = String::new();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some('u') => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    let code =
                        u32::from_str_radix(&hex, 16).map_err(|e| format!("bad \\u escape: {e}"))?;
                    out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                }
                Some(c) => out.push(c),
                None => return Err("unterminated escape".into()),
            },
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

fn expect_word(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    word: &str,
) -> Result<(), String> {
    for expected in word.chars() {
        if chars.next() != Some(expected) {
            return Err(format!("expected literal {word:?}"));
        }
    }
    Ok(())
}

/// Parses a whole JSONL document into one record per non-empty line.
///
/// # Errors
///
/// Returns the first line number (1-based) and error description.
pub fn parse_jsonl(text: &str) -> Result<Vec<BTreeMap<String, JsonValue>>, (usize, String)> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_json_object(l).map_err(|e| (i + 1, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_escapes() {
        let rec =
            parse_json_object(r#"{"type":"meta","run":"a\"b\\c","elapsed_s":1.5,"ok":true}"#)
                .unwrap();
        assert_eq!(rec["run"].as_str(), Some("a\"b\\c"));
        assert_eq!(rec["elapsed_s"].as_f64(), Some(1.5));
        assert_eq!(rec["ok"], JsonValue::Bool(true));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_json_object("{\"a\":}").is_err());
        assert!(parse_json_object("nope").is_err());
        assert!(parse_json_object("{\"a\":{\"b\":1}").is_err(), "unclosed nest");
        assert!(parse_json_object("{\"a\":1} x").is_err(), "trailing junk");
    }

    #[test]
    fn parses_nested_objects() {
        let rec = parse_json_object(
            r#"{"name":"rollout","ph":"E","args":{"dur_us":12.5,"deep":{"k":1}}}"#,
        )
        .unwrap();
        let args = rec["args"].as_object().unwrap();
        assert_eq!(args["dur_us"].as_f64(), Some(12.5));
        assert_eq!(args["deep"].as_object().unwrap()["k"].as_f64(), Some(1.0));
        assert_eq!(rec["ph"].as_str(), Some("E"));
    }

    #[test]
    fn num_formatting_never_leaks_non_finite() {
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        assert_eq!(num(2.0), "2");
        assert_eq!(num(2.5), "2.5");
    }
}

//! Dependency-free HTTP/1.1 plumbing shared by the metrics exporter and
//! the policy-serving daemon (`hero-serve`).
//!
//! One [`serve_http`] call owns a nonblocking listener on a background
//! accept thread; each accepted connection is handled on its own short-
//! lived thread so slow readers and long-polling handlers (the serving
//! daemon parks `/act` requests until their micro-batch completes) never
//! block the accept loop or each other. The request parser reads the
//! head, honours `Content-Length` for bodies (capped), and hands the
//! router a [`Request`]; the router returns a [`Response`] which is
//! written with `Connection: close` framing.
//!
//! The client half ([`http_get`], [`http_request`]) is a minimal
//! blocking HTTP/1.1 implementation used by `hero-inspect watch`,
//! `hero-load`, and tests.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request head accepted before answering 400.
const MAX_HEAD: usize = 8192;
/// Largest request body accepted before answering 413.
const MAX_BODY: usize = 1 << 20;

/// One parsed HTTP request, as handed to a [`serve_http`] router.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request path with any `?query` suffix stripped.
    pub path: String,
    /// Request body (empty when the request carried none).
    pub body: Vec<u8>,
}

/// The response a router returns for a [`Request`].
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` plain-text response.
    pub fn ok(body: impl Into<String>) -> Self {
        Self::with_status(200, body)
    }

    /// A plain-text response with an explicit status code.
    pub fn with_status(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    /// Overrides the `Content-Type` header.
    #[must_use]
    pub fn content_type(mut self, ct: &'static str) -> Self {
        self.content_type = ct;
        self
    }
}

/// The standard reason phrase for the status codes this stack emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// A router: maps each parsed request to a response. Shared across
/// connection threads, so it must be `Send + Sync`.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Handle to a running HTTP server; shuts the listener down on drop.
///
/// Dropping stops the accept loop and joins it. Connection threads
/// already handling a request are left to finish on their own (they
/// carry short socket timeouts), so an in-flight response is never cut
/// off mid-write by shutdown.
pub struct HttpServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9464`, port `0` for ephemeral) and
/// serves `handler` from background threads until the returned handle
/// drops. `thread_name` names the accept thread in process listings.
///
/// # Errors
///
/// Returns the bind error (address in use, permission, malformed addr).
pub fn serve_http(addr: &str, thread_name: &str, handler: Handler) -> io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name(thread_name.to_string())
        .spawn(move || {
            // Poll backoff: connections often arrive in bursts (a served
            // micro-batch completing releases many clients at once), so
            // an empty accept right after traffic re-polls in 200us; only
            // a listener that stays idle escalates to the 10ms cadence.
            let mut idle_polls: u32 = 0;
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        idle_polls = 0;
                        let h = Arc::clone(&handler);
                        let spawned = std::thread::Builder::new()
                            .name("hero-http-conn".into())
                            .spawn(move || {
                                let _ = handle_connection(stream, &h);
                            });
                        if spawned.is_err() {
                            // Spawn failure (fd/thread exhaustion): drop the
                            // connection rather than the whole server.
                            std::thread::sleep(Duration::from_millis(10));
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        idle_polls = idle_polls.saturating_add(1);
                        let us = (200u64 << (idle_polls / 8).min(6)).min(10_000);
                        std::thread::sleep(Duration::from_micros(us));
                    }
                    Err(_) => {
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        })?;
    Ok(HttpServer {
        addr,
        shutdown,
        handle: Some(handle),
    })
}

/// Reads one request off `stream`, routes it, writes the response.
fn handle_connection(mut stream: TcpStream, handler: &Handler) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the end of the request head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return respond(&mut stream, &Response::with_status(400, "request head too large\n"));
        }
        match stream.read(&mut chunk) {
            Ok(0) => break buf.len(),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                break buf.len()
            }
            Err(e) => return Err(e),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path).to_string();

    // Body: everything after the head terminator, up to Content-Length.
    let content_length = head
        .lines()
        .skip(1)
        .find_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .unwrap_or(0);
    if content_length > MAX_BODY {
        return respond(&mut stream, &Response::with_status(413, "request body too large\n"));
    }
    let body_start = (head_end + 4).min(buf.len());
    let mut body = buf[body_start..].to_vec();
    while body.len() < content_length {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    body.truncate(content_length);

    let request = Request { method, path, body };
    let response = handler(&request);
    respond(&mut stream, &response)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn respond(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    let wire = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
        response.body
    );
    stream.write_all(wire.as_bytes())?;
    stream.flush()
}

/// A minimal blocking HTTP/1.1 GET, used by `hero-inspect watch` and by
/// tests. Accepts `http://HOST:PORT/path`, `HOST:PORT/path`, or bare
/// `HOST:PORT` (which defaults to `/snapshot`). Returns the response body.
///
/// # Errors
///
/// Returns connection errors and non-200 statuses as `io::Error`.
pub fn http_get(url: &str) -> io::Result<String> {
    let (status, body) = http_request("GET", url, "")?;
    if status != 200 {
        return Err(io::Error::other(format!("HTTP error from {url}: status {status}")));
    }
    Ok(body)
}

/// A minimal blocking HTTP/1.1 request with a body, returning
/// `(status, body)` without treating non-200 statuses as errors — the
/// serving daemon's clients need to observe 409s from `/reload`.
/// Accepts the same URL forms as [`http_get`].
///
/// # Errors
///
/// Returns connection and protocol errors as `io::Error`.
pub fn http_request(method: &str, url: &str, body: &str) -> io::Result<(u16, String)> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/snapshot"),
    };
    let mut stream = TcpStream::connect(host)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed HTTP response (no header terminator)",
        ));
    };
    let status_line = head.lines().next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed HTTP status line: {status_line:?}"),
            )
        })?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> HttpServer {
        let handler: Handler = Arc::new(|req: &Request| match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/echo") => {
                Response::ok(String::from_utf8_lossy(&req.body).into_owned())
            }
            ("GET", "/hello") => Response::ok("hi\n"),
            _ => Response::with_status(404, "no route\n"),
        });
        serve_http("127.0.0.1:0", "http-test", handler).expect("bind")
    }

    #[test]
    fn post_bodies_reach_the_handler() {
        let server = echo_server();
        let base = server.local_addr();
        let (status, body) =
            http_request("POST", &format!("http://{base}/echo"), "round trip").expect("post");
        assert_eq!(status, 200);
        assert_eq!(body, "round trip");
    }

    #[test]
    fn non_200_statuses_are_reported_not_errored() {
        let server = echo_server();
        let base = server.local_addr();
        let (status, _) = http_request("GET", &format!("http://{base}/nope"), "").expect("request");
        assert_eq!(status, 404);
        assert!(http_get(&format!("http://{base}/nope")).is_err());
    }

    #[test]
    fn concurrent_requests_are_served_in_parallel() {
        // Two in-flight requests must both complete even though the
        // second arrives while the first is still being handled — the
        // serving daemon's micro-batcher depends on this.
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let b = Arc::clone(&barrier);
        let handler: Handler = Arc::new(move |_req: &Request| {
            b.wait();
            Response::ok("both\n")
        });
        let server = serve_http("127.0.0.1:0", "http-test", handler).expect("bind");
        let base = server.local_addr();
        let t1 = std::thread::spawn(move || http_get(&format!("http://{base}/hello")));
        let t2 = std::thread::spawn(move || http_get(&format!("http://{base}/hello")));
        assert_eq!(t1.join().unwrap().expect("first"), "both\n");
        assert_eq!(t2.join().unwrap().expect("second"), "both\n");
    }
}

//! The runtime metrics exporter: a dependency-free background HTTP
//! listener serving the live [`Registry`] for mid-run scraping.
//!
//! * `GET /metrics` — Prometheus text exposition format
//!   ([`crate::emit::to_prometheus`])
//! * `GET /snapshot` — the JSONL snapshot schema
//!   ([`crate::emit::to_jsonl`]), consumed by `hero-inspect watch`
//! * `GET /` — a short plain-text index
//!
//! The listener/router plumbing lives in [`crate::http`] and is shared
//! with the policy-serving daemon (`hero-serve`); this module is just
//! the route table. Every request takes a fresh [`Registry::snapshot`],
//! which is a strictly read-only, lock-light pass (brief mutex holds on
//! the histogram maps, one `RwLock` read on the counter map — never a
//! write). Nothing on the serving path mutates registry state, consumes
//! RNG, or synchronizes with the learner thread, which is what makes a
//! scraped run bit-identical to an unscraped one.

use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

use crate::emit;
use crate::http::{serve_http, Handler, HttpServer, Request, Response};
use crate::registry::Registry;

pub use crate::http::http_get;

/// Content type of the Prometheus text exposition format (kept on every
/// exporter route for backward compatibility with existing scrapers).
const PROM_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Handle to a running exporter; shuts the listener down on drop.
pub struct MetricsExporter {
    server: HttpServer,
}

/// Binds `addr` (e.g. `127.0.0.1:9464`, port `0` for ephemeral) and
/// serves `registry` from a background thread until the returned handle
/// drops.
///
/// # Errors
///
/// Returns the bind error (address in use, permission, malformed addr).
pub fn serve(registry: Arc<Registry>, addr: &str) -> io::Result<MetricsExporter> {
    let handler: Handler = Arc::new(move |req: &Request| {
        if req.method != "GET" {
            return Response::with_status(405, "only GET is served\n")
                .content_type(PROM_CONTENT_TYPE);
        }
        let (status, body) = match req.path.as_str() {
            "/metrics" => (200, emit::to_prometheus(&registry.snapshot())),
            "/snapshot" => (200, emit::to_jsonl(&registry.snapshot())),
            "/" => (
                200,
                "hero metrics exporter\n/metrics  Prometheus text format\n/snapshot JSONL snapshot\n"
                    .to_string(),
            ),
            path => (404, format!("no route for {path}\n")),
        };
        Response::with_status(status, body).content_type(PROM_CONTENT_TYPE)
    });
    let server = serve_http(addr, "hero-metrics", handler)?;
    Ok(MetricsExporter { server })
}

impl MetricsExporter {
    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TelemetryConfig;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    fn test_registry() -> Arc<Registry> {
        let r = Arc::new(Registry::new(TelemetryConfig {
            run_label: "exporter-test".into(),
            ..TelemetryConfig::default()
        }));
        r.counter_add("env_steps", 99);
        r.gauge_set("live/queue_depth/actor0", 4.0);
        r.live_observe("live/wave_us", 250.0);
        r
    }

    #[test]
    fn serves_metrics_and_snapshot() {
        let registry = test_registry();
        let exporter = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let base = exporter.local_addr();

        let metrics = http_get(&format!("http://{base}/metrics")).expect("scrape");
        let samples = emit::parse_prometheus(&metrics).expect("well-formed prometheus");
        assert!(samples.iter().any(|s| {
            s.name == "hero_counter_total"
                && s.labels.get("name").map(String::as_str) == Some("env_steps")
                && s.value == 99.0
        }));
        assert!(samples.iter().any(|s| s.name == "hero_gauge" && s.value == 4.0));

        let jsonl = http_get(&format!("{base}/snapshot")).expect("snapshot");
        let records = emit::parse_jsonl(&jsonl).expect("well-formed jsonl");
        assert!(records.iter().any(|r| {
            r.get("type").and_then(emit::JsonValue::as_str) == Some("counter")
                && r.get("total").and_then(emit::JsonValue::as_f64) == Some(99.0)
        }));

        // Bare HOST:PORT defaults to /snapshot.
        let default = http_get(&base.to_string()).expect("default route");
        assert!(
            default.lines().next().is_some_and(|l| l.contains("\"type\":\"meta\"")),
            "bare address serves the JSONL snapshot: {default:?}"
        );
    }

    #[test]
    fn unknown_route_is_404_and_post_is_405() {
        let exporter = serve(test_registry(), "127.0.0.1:0").expect("bind");
        let base = exporter.local_addr();
        let err = http_get(&format!("http://{base}/nope")).unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");

        let mut stream = TcpStream::connect(base).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
    }

    #[test]
    fn shutdown_on_drop_releases_the_port() {
        let registry = test_registry();
        let exporter = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let addr = exporter.local_addr();
        drop(exporter);
        // The port is free again: rebinding the exact address succeeds.
        let again = serve(registry, &addr.to_string()).expect("rebind after shutdown");
        assert_eq!(again.local_addr(), addr);
    }
}

//! The runtime metrics exporter: a dependency-free background HTTP
//! listener serving the live [`Registry`] for mid-run scraping.
//!
//! * `GET /metrics` — Prometheus text exposition format
//!   ([`crate::emit::to_prometheus`])
//! * `GET /snapshot` — the JSONL snapshot schema
//!   ([`crate::emit::to_jsonl`]), consumed by `hero-inspect watch`
//! * `GET /` — a short plain-text index
//!
//! The exporter owns one background thread; every request takes a fresh
//! [`Registry::snapshot`], which is a strictly read-only, lock-light pass
//! (brief mutex holds on the histogram maps, one `RwLock` read on the
//! counter map — never a write). Nothing on the serving path mutates
//! registry state, consumes RNG, or synchronizes with the learner thread,
//! which is what makes a scraped run bit-identical to an unscraped one.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::emit;
use crate::registry::Registry;

/// Handle to a running exporter; shuts the listener down on drop.
pub struct MetricsExporter {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// Binds `addr` (e.g. `127.0.0.1:9464`, port `0` for ephemeral) and
/// serves `registry` from a background thread until the returned handle
/// drops.
///
/// # Errors
///
/// Returns the bind error (address in use, permission, malformed addr).
pub fn serve(registry: Arc<Registry>, addr: &str) -> io::Result<MetricsExporter> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::Builder::new()
        .name("hero-metrics".into())
        .spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = handle_connection(stream, &registry);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        })?;
    Ok(MetricsExporter {
        addr,
        shutdown,
        handle: Some(handle),
    })
}

impl MetricsExporter {
    /// The bound address (resolves port `0` to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsExporter {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, registry: &Registry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the end of the request head; bodies are ignored (every
    // endpoint is a GET).
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
                    break;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "only GET is served\n".to_string())
    } else {
        match path {
            "/metrics" => ("200 OK", emit::to_prometheus(&registry.snapshot())),
            "/snapshot" => ("200 OK", emit::to_jsonl(&registry.snapshot())),
            "/" => (
                "200 OK",
                "hero metrics exporter\n/metrics  Prometheus text format\n/snapshot JSONL snapshot\n"
                    .to_string(),
            ),
            _ => ("404 Not Found", format!("no route for {path}\n")),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// A minimal blocking HTTP/1.1 GET, used by `hero-inspect watch` and by
/// tests. Accepts `http://HOST:PORT/path`, `HOST:PORT/path`, or bare
/// `HOST:PORT` (which defaults to `/snapshot`). Returns the response body.
///
/// # Errors
///
/// Returns connection errors and non-200 statuses as `io::Error`.
pub fn http_get(url: &str) -> io::Result<String> {
    let rest = url.strip_prefix("http://").unwrap_or(url);
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/snapshot"),
    };
    let mut stream = TcpStream::connect(host)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n")?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let text = String::from_utf8_lossy(&raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed HTTP response (no header terminator)",
        ));
    };
    let status_line = head.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(io::Error::new(
            io::ErrorKind::Other,
            format!("HTTP error from {url}: {status_line}"),
        ));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TelemetryConfig;

    fn test_registry() -> Arc<Registry> {
        let r = Arc::new(Registry::new(TelemetryConfig {
            run_label: "exporter-test".into(),
            ..TelemetryConfig::default()
        }));
        r.counter_add("env_steps", 99);
        r.gauge_set("live/queue_depth/actor0", 4.0);
        r.live_observe("live/wave_us", 250.0);
        r
    }

    #[test]
    fn serves_metrics_and_snapshot() {
        let registry = test_registry();
        let exporter = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let base = exporter.local_addr();

        let metrics = http_get(&format!("http://{base}/metrics")).expect("scrape");
        let samples = emit::parse_prometheus(&metrics).expect("well-formed prometheus");
        assert!(samples.iter().any(|s| {
            s.name == "hero_counter_total"
                && s.labels.get("name").map(String::as_str) == Some("env_steps")
                && s.value == 99.0
        }));
        assert!(samples.iter().any(|s| s.name == "hero_gauge" && s.value == 4.0));

        let jsonl = http_get(&format!("{base}/snapshot")).expect("snapshot");
        let records = emit::parse_jsonl(&jsonl).expect("well-formed jsonl");
        assert!(records.iter().any(|r| {
            r.get("type").and_then(emit::JsonValue::as_str) == Some("counter")
                && r.get("total").and_then(emit::JsonValue::as_f64) == Some(99.0)
        }));

        // Bare HOST:PORT defaults to /snapshot.
        let default = http_get(&base.to_string()).expect("default route");
        assert!(
            default.lines().next().is_some_and(|l| l.contains("\"type\":\"meta\"")),
            "bare address serves the JSONL snapshot: {default:?}"
        );
    }

    #[test]
    fn unknown_route_is_404_and_post_is_405() {
        let exporter = serve(test_registry(), "127.0.0.1:0").expect("bind");
        let base = exporter.local_addr();
        let err = http_get(&format!("http://{base}/nope")).unwrap_err();
        assert!(err.to_string().contains("404"), "{err}");

        let mut stream = TcpStream::connect(base).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"), "{out}");
    }

    #[test]
    fn shutdown_on_drop_releases_the_port() {
        let registry = test_registry();
        let exporter = serve(Arc::clone(&registry), "127.0.0.1:0").expect("bind");
        let addr = exporter.local_addr();
        drop(exporter);
        // The port is free again: rebinding the exact address succeeds.
        let again = serve(registry, &addr.to_string()).expect("rebind after shutdown");
        assert_eq!(again.local_addr(), addr);
    }
}

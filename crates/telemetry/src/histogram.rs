//! Streaming histograms with bounded memory and quantile estimates.

/// A streaming histogram: exact `count`/`sum`/`min`/`max` plus a
/// fixed-size deterministic reservoir for quantile estimation.
///
/// The reservoir uses Vitter's Algorithm R with an internal deterministic
/// generator, so two runs observing the same value sequence produce
/// identical summaries — a property the determinism regression tests rely
/// on. Non-finite observations are ignored (counted separately) so NaN/Inf
/// can never leak into emitted summaries.
#[derive(Clone, Debug)]
pub struct StreamingHistogram {
    count: u64,
    rejected: u64,
    sum: f64,
    min: f64,
    max: f64,
    reservoir: Vec<f64>,
    capacity: usize,
    rng_state: u64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::with_capacity(1024)
    }
}

impl StreamingHistogram {
    /// Creates a histogram keeping at most `capacity` reservoir samples.
    ///
    /// # Panics
    ///
    /// Panics when `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "histogram capacity must be positive");
        Self {
            count: 0,
            rejected: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            reservoir: Vec::new(),
            capacity,
            rng_state: 0x5DEE_CE66_D_u64,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // SplitMix64: deterministic, independent of any global RNG.
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Records one observation. Non-finite values are dropped (tracked by
    /// [`StreamingHistogram::rejected`]).
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            self.rejected += 1;
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.reservoir.len() < self.capacity {
            self.reservoir.push(value);
        } else {
            // Algorithm R: replace a random slot with probability cap/count.
            let j = (self.next_rand() % self.count) as usize;
            if j < self.capacity {
                self.reservoir[j] = value;
            }
        }
    }

    /// Number of accepted observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of non-finite observations dropped.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Sum of accepted observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of accepted observations (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum accepted observation (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum accepted observation (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), always within
    /// `[min(), max()]`; `0.0` when empty.
    ///
    /// # Panics
    ///
    /// Panics when `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.count == 0 {
            return 0.0;
        }
        let mut sorted = self.reservoir.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("reservoir holds only finite values"));
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[idx].clamp(self.min, self.max)
    }

    /// Captures the complete internal state — exact moments, reservoir
    /// contents, and the reservoir RNG — for checkpointing. Restoring via
    /// [`StreamingHistogram::from_state`] and replaying the same
    /// observation sequence reproduces bit-identical [`stats`](Self::stats).
    pub fn export_state(&self) -> HistogramState {
        HistogramState {
            count: self.count,
            rejected: self.rejected,
            sum: self.sum,
            min: self.min,
            max: self.max,
            reservoir: self.reservoir.clone(),
            capacity: self.capacity,
            rng_state: self.rng_state,
        }
    }

    /// Rebuilds a histogram from state captured by
    /// [`StreamingHistogram::export_state`].
    ///
    /// # Errors
    ///
    /// Returns a message when the state is structurally inconsistent
    /// (zero capacity or an over-full reservoir).
    pub fn from_state(state: HistogramState) -> Result<Self, String> {
        if state.capacity == 0 {
            return Err("histogram capacity must be positive".to_string());
        }
        if state.reservoir.len() > state.capacity {
            return Err(format!(
                "reservoir holds {} samples but capacity is {}",
                state.reservoir.len(),
                state.capacity
            ));
        }
        Ok(Self {
            count: state.count,
            rejected: state.rejected,
            sum: state.sum,
            min: state.min,
            max: state.max,
            reservoir: state.reservoir,
            capacity: state.capacity,
            rng_state: state.rng_state,
        })
    }

    /// Condensed summary used by the emitters.
    pub fn stats(&self) -> HistogramStats {
        HistogramStats {
            count: self.count,
            sum: self.sum,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// Complete internal state of a [`StreamingHistogram`], captured by
/// [`StreamingHistogram::export_state`] for checkpointing.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramState {
    /// Accepted observation count.
    pub count: u64,
    /// Dropped (non-finite) observation count.
    pub rejected: u64,
    /// Exact running sum.
    pub sum: f64,
    /// Raw running minimum (`+inf` when empty).
    pub min: f64,
    /// Raw running maximum (`-inf` when empty).
    pub max: f64,
    /// Reservoir samples in insertion order.
    pub reservoir: Vec<f64>,
    /// Reservoir capacity.
    pub capacity: usize,
    /// SplitMix64 state of the reservoir RNG.
    pub rng_state: u64,
}

/// Point-in-time summary of a [`StreamingHistogram`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramStats {
    /// Accepted observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Mean observation.
    pub mean: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_moments_small_stream() {
        let mut h = StreamingHistogram::default();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 15.0);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 5.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(1.0), 5.0);
    }

    #[test]
    fn non_finite_rejected() {
        let mut h = StreamingHistogram::default();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        h.observe(1.5);
        assert_eq!(h.count(), 1);
        assert_eq!(h.rejected(), 3);
        assert!(h.stats().mean.is_finite());
    }

    #[test]
    fn quantiles_bounded_after_overflow() {
        let mut h = StreamingHistogram::with_capacity(64);
        for i in 0..10_000 {
            h.observe((i % 997) as f64);
        }
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= h.min() && v <= h.max(), "q={q} v={v}");
        }
    }

    #[test]
    fn deterministic_reservoir() {
        let run = || {
            let mut h = StreamingHistogram::with_capacity(32);
            for i in 0..5_000 {
                h.observe((i as f64).sin() * 100.0);
            }
            h.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn state_roundtrip_resumes_bit_identically() {
        // Interrupt-and-resume at an arbitrary point must match the
        // uninterrupted stream exactly, including reservoir quantiles.
        let observe_range = |h: &mut StreamingHistogram, range: std::ops::Range<u64>| {
            for i in range {
                h.observe((i as f64).sin() * 50.0);
            }
        };
        let mut full = StreamingHistogram::with_capacity(32);
        observe_range(&mut full, 0..5_000);

        let mut part1 = StreamingHistogram::with_capacity(32);
        observe_range(&mut part1, 0..1_234);
        let mut part2 = StreamingHistogram::from_state(part1.export_state()).unwrap();
        observe_range(&mut part2, 1_234..5_000);

        assert_eq!(full.stats(), part2.stats());
        assert_eq!(full.export_state(), part2.export_state());
    }

    #[test]
    fn invalid_state_rejected() {
        let mut state = StreamingHistogram::with_capacity(4).export_state();
        state.capacity = 0;
        assert!(StreamingHistogram::from_state(state.clone()).is_err());
        state.capacity = 2;
        state.reservoir = vec![1.0, 2.0, 3.0];
        assert!(StreamingHistogram::from_state(state).is_err());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = StreamingHistogram::default();
        let s = h.stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
    }
}

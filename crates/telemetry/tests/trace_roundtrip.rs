//! End-to-end round-trip: span guards → trace capture → `trace.json` on
//! disk → parse back as valid JSON with strictly balanced, properly
//! nested, time-ordered begin–end pairs per thread.

use hero_telemetry::trace::{parse_chrome_trace, validate_chrome_trace};
use hero_telemetry::{counter_add, install, span, TelemetryConfig};

/// One test (not several) so the process-global `install()` cannot race
/// with another global install in this binary.
#[test]
fn trace_json_round_trips_balanced_per_thread() {
    let dir = std::env::temp_dir().join(format!("hero-trace-roundtrip-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let trace_path = dir.join("trace.json");

    {
        let _g = install(
            TelemetryConfig {
                run_label: "trace-test".into(),
                ..TelemetryConfig::default()
            }
            .with_trace(&trace_path),
        );
        counter_add("env_steps", 11);
        {
            let _rollout = span("rollout");
            for _ in 0..3 {
                let _step = span("env_step");
            }
        }
        // Concurrent spans from worker threads must land on their own tids
        // and stay balanced there.
        let workers: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..4 {
                        let _outer = span("skill_rollout");
                        let _inner = span("env_step");
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
    } // guard drop flushes trace.json

    let text = std::fs::read_to_string(&trace_path).expect("trace.json written");
    let pairs = validate_chrome_trace(&text).expect("trace must be balanced + ordered");
    assert_eq!(pairs, 1 + 3 + 2 * 4 * 2, "every span guard produced a pair");

    let records = parse_chrome_trace(&text).expect("valid JSON per event");
    let span_tids: std::collections::BTreeSet<u64> = records
        .iter()
        .filter(|r| r["ph"].as_str() != Some("C"))
        .map(|r| r["tid"].as_f64().unwrap() as u64)
        .collect();
    assert!(
        span_tids.len() >= 3,
        "main + 2 workers should have distinct tids, got {span_tids:?}"
    );
    assert!(
        records.iter().any(|r| r["name"].as_str() == Some("rollout/env_step")),
        "nested spans keep their slash-joined paths"
    );
    assert!(
        records.iter().any(|r| r["ph"].as_str() == Some("C")
            && r["name"].as_str() == Some("env_steps")
            && r["args"].as_object().and_then(|a| a["value"].as_f64()) == Some(11.0)),
        "counter totals appear as C events"
    );
    // End events carry their duration as a counter arg.
    assert!(records
        .iter()
        .filter(|r| r["ph"].as_str() == Some("E"))
        .all(|r| r["args"]
            .as_object()
            .and_then(|a| a["dur_us"].as_f64())
            .is_some_and(|d| d >= 0.0)));

    let _ = std::fs::remove_dir_all(&dir);
}

//! Property-based coverage of the flight-recorder ring: sequence ids are
//! never lost or duplicated under concurrent writers, and eviction is
//! always oldest-first.

use std::sync::Arc;

use hero_telemetry::ring::{FlightEventKind, FlightRing};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-writer ground truth: after `n` records into a ring of
    /// capacity `cap`, the surviving events are exactly the newest
    /// `min(n, cap)` sequence ids, in order — eviction is oldest-first.
    fn eviction_is_oldest_first(n in 0u64..300, cap in 1usize..32) {
        let ring = FlightRing::new(cap);
        for i in 0..n {
            ring.record(i, FlightEventKind::WaveDispatched { wave: i, worlds: 1 });
        }
        let events = ring.events();
        let survivors = (n.min(cap as u64)) as usize;
        prop_assert_eq!(events.len(), survivors);
        let first = n - survivors as u64;
        for (k, e) in events.iter().enumerate() {
            prop_assert_eq!(e.seq, first + k as u64);
            prop_assert_eq!(e.t_us, first + k as u64, "payload belongs to its seq");
            prop_assert_eq!(
                e.kind,
                FlightEventKind::WaveDispatched { wave: first + k as u64, worlds: 1 }
            );
        }
        prop_assert_eq!(ring.recorded(), n);
    }

    /// Concurrent writers: every surviving sequence id is unique, the
    /// full id space `0..n_total` was assigned without gaps, and once all
    /// writers join the survivors are exactly the newest `capacity` ids
    /// with payloads that match their id (no torn slots).
    fn concurrent_writers_never_lose_or_duplicate_seqs(
        writers in 1usize..8,
        per_writer in 1usize..60,
        cap in 1usize..24,
    ) {
        let ring = Arc::new(FlightRing::new(cap));
        let mut assigned: Vec<Vec<u64>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..writers {
                let ring = Arc::clone(&ring);
                handles.push(scope.spawn(move || {
                    (0..per_writer)
                        .map(|i| {
                            let ring_seq = ring.record(
                                0,
                                FlightEventKind::Redispatched {
                                    actor: w as u64,
                                    wave: i as u64,
                                },
                            );
                            ring_seq
                        })
                        .collect::<Vec<u64>>()
                }));
            }
            for h in handles {
                assigned.push(h.join().unwrap());
            }
        });
        let n_total = (writers * per_writer) as u64;
        // Ids were handed out exactly once each, covering 0..n_total.
        let mut all: Vec<u64> = assigned.into_iter().flatten().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..n_total).collect::<Vec<u64>>());
        prop_assert_eq!(ring.recorded(), n_total);
        // The survivors are exactly the newest `cap` ids, oldest first,
        // and each slot's payload decodes to the event its writer stored.
        let events = ring.events();
        let survivors = (n_total.min(cap as u64)) as usize;
        prop_assert_eq!(events.len(), survivors);
        let first = n_total - survivors as u64;
        for (k, e) in events.iter().enumerate() {
            prop_assert_eq!(e.seq, first + k as u64);
            prop_assert!(
                matches!(e.kind, FlightEventKind::Redispatched { actor, wave }
                    if actor < writers as u64 && wave < per_writer as u64),
                "payload is one a writer actually stored: {:?}",
                e
            );
        }
    }

    /// A reader racing live writers only ever sees consistent events:
    /// unique, sorted sequence ids whose payload matches the id.
    fn reader_racing_writers_sees_consistent_events(
        per_writer in 1usize..200,
        cap in 1usize..16,
    ) {
        let ring = Arc::new(FlightRing::new(cap));
        std::thread::scope(|scope| {
            for _w in 0..2 {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for _ in 0..per_writer {
                        let t = ring.recorded(); // racy, but only used as payload salt
                        let seq = ring.record(
                            t,
                            FlightEventKind::CheckpointSaved { index: 0 },
                        );
                        // Overwrite-style second event keyed by its own seq.
                        ring.record(seq, FlightEventKind::WaveCompleted {
                            wave: seq,
                            episodes: 1,
                        });
                    }
                });
            }
            let ring = Arc::clone(&ring);
            scope.spawn(move || {
                for _ in 0..32 {
                    let events = ring.events();
                    let mut prev: Option<u64> = None;
                    for e in &events {
                        if let Some(p) = prev {
                            assert!(e.seq > p, "sorted + unique: {p} then {}", e.seq);
                        }
                        prev = Some(e.seq);
                        if let FlightEventKind::WaveCompleted { wave, .. } = e.kind {
                            assert_eq!(
                                wave, e.t_us,
                                "torn slot: payload does not match its seq stamp"
                            );
                        }
                    }
                    std::hint::spin_loop();
                }
            });
        });
        prop_assert_eq!(ring.recorded(), 4 * per_writer as u64);
    }
}

//! Property-based coverage of the telemetry primitives: histogram
//! quantile bounds, counter monotonicity under interleaved increments,
//! and JSONL emitter round-trips.

use std::time::Duration;

use hero_telemetry::emit::{self, JsonValue};
use hero_telemetry::registry::{Registry, TelemetryConfig};
use hero_telemetry::StreamingHistogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every quantile estimate stays inside `[min, max]` of the observed
    /// values, for any stream and any reservoir capacity.
    fn quantiles_bounded_by_observed_extremes(
        values in prop::collection::vec(-1.0e6f64..1.0e6, 1..200),
        capacity in 1usize..64,
        q in 0.0f64..1.0,
    ) {
        let mut h = StreamingHistogram::with_capacity(capacity);
        for &v in &values {
            h.observe(v);
        }
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let est = h.quantile(q);
        prop_assert!(est >= lo && est <= hi, "q={} est={} range=[{}, {}]", q, est, lo, hi);
        prop_assert!(h.quantile(0.0) >= lo);
        prop_assert!(h.quantile(1.0) <= hi);
    }

    /// Exact moments match a naive reference and non-finite observations
    /// never contaminate them.
    fn histogram_moments_match_reference(
        values in prop::collection::vec(-1.0e3f64..1.0e3, 0..100),
        junk in 0usize..4,
    ) {
        let mut h = StreamingHistogram::default();
        for &v in &values {
            h.observe(v);
        }
        for i in 0..junk {
            h.observe(if i % 2 == 0 { f64::NAN } else { f64::INFINITY });
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.rejected(), junk as u64);
        let naive_sum: f64 = values.iter().sum();
        prop_assert!((h.sum() - naive_sum).abs() <= 1e-9 * (1.0 + naive_sum.abs()));
        prop_assert!(h.stats().mean.is_finite());
        prop_assert!(h.stats().p99.is_finite());
    }

    /// Counter totals equal the sum of all increments regardless of how
    /// increments to different counters interleave, and every prefix of
    /// the sequence leaves the running total monotonically non-decreasing.
    fn counters_monotone_under_interleavings(
        ops in prop::collection::vec((0usize..3, 0u64..1000), 1..60),
    ) {
        let names = ["a", "b", "c"];
        let r = Registry::new(TelemetryConfig::default());
        let mut expected = [0u64; 3];
        let mut last_seen = [0u64; 3];
        for &(which, n) in &ops {
            r.counter_add(names[which], n);
            expected[which] += n;
            let snap = r.snapshot();
            for (i, name) in names.iter().enumerate() {
                let now = snap.counters.get(*name).map_or(0, |c| c.total);
                prop_assert!(now >= last_seen[i], "counter {} went backwards", name);
                last_seen[i] = now;
            }
        }
        let snap = r.snapshot();
        for (i, name) in names.iter().enumerate() {
            prop_assert_eq!(snap.counters.get(*name).map_or(0, |c| c.total), expected[i]);
        }
    }

    /// Concurrent increments from several threads are never lost.
    fn counters_exact_under_concurrency(per_thread in 1u64..500, threads in 1usize..5) {
        let r = std::sync::Arc::new(Registry::new(TelemetryConfig::default()));
        std::thread::scope(|s| {
            for _ in 0..threads {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        r.counter_add("hits", 1);
                    }
                });
            }
        });
        prop_assert_eq!(r.snapshot().counters["hits"].total, per_thread * threads as u64);
    }

    /// JSONL emit → parse round-trips counter totals, span counts, and
    /// value summaries exactly, and the text never contains NaN/Inf.
    fn jsonl_round_trip(
        counts in prop::collection::vec(0u64..100_000, 1..5),
        samples in prop::collection::vec(-1.0e3f64..1.0e3, 1..40),
        micros in prop::collection::vec(1u64..1_000_000, 1..40),
    ) {
        let r = Registry::new(TelemetryConfig::default());
        let names = ["env_steps", "episodes", "grad_updates", "transitions_sampled"];
        for (i, &n) in counts.iter().enumerate() {
            r.counter_add(names[i], n);
        }
        for &v in &samples {
            r.observe("reward", v);
        }
        for &us in &micros {
            r.record_span("rollout/env_step".to_string(), Duration::from_micros(us));
        }
        let snap = r.snapshot();
        let text = emit::to_jsonl(&snap);
        prop_assert!(!text.contains("NaN") && !text.contains("inf") && !text.contains("Infinity"));
        let records = emit::parse_jsonl(&text).unwrap();
        prop_assert_eq!(records.len(), 1 + counts.len() + 1 + 1, "meta + counters + span + value");
        for (i, &n) in counts.iter().enumerate() {
            let rec = records
                .iter()
                .find(|rec| rec.get("name").and_then(JsonValue::as_str) == Some(names[i]))
                .expect("counter record present");
            prop_assert_eq!(rec["total"].as_f64(), Some(n as f64));
        }
        let span = records
            .iter()
            .find(|rec| rec.get("type").and_then(JsonValue::as_str) == Some("span"))
            .expect("span record");
        prop_assert_eq!(span["count"].as_f64(), Some(micros.len() as f64));
        let value = records
            .iter()
            .find(|rec| rec.get("type").and_then(JsonValue::as_str) == Some("value"))
            .expect("value record");
        prop_assert_eq!(value["count"].as_f64(), Some(samples.len() as f64));
        let mean = value["mean"].as_f64().unwrap();
        let naive = samples.iter().sum::<f64>() / samples.len() as f64;
        prop_assert!((mean - naive).abs() <= 1e-6 * (1.0 + naive.abs()));
    }

    /// The BENCH summary is itself one parseable flat JSON object carrying
    /// each counter's total.
    fn bench_summary_parses(counts in prop::collection::vec(0u64..1_000, 1..4)) {
        let r = Registry::new(TelemetryConfig::default());
        let names = ["env_steps", "episodes", "grad_updates"];
        for (i, &n) in counts.iter().enumerate() {
            r.counter_add(names[i], n);
        }
        let body = emit::bench_summary_json(&r.snapshot());
        let rec = emit::parse_json_object(&body).unwrap();
        for (i, &n) in counts.iter().enumerate() {
            let key = format!("{}_total", names[i]);
            prop_assert_eq!(rec[&key].as_f64(), Some(n as f64));
        }
    }
}

//! Micro-benchmarks of the replay buffers at the paper's capacity
//! (100 000) and batch size (1024).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hero_rl::buffer::ReplayBuffer;
use hero_rl::per::PrioritizedReplay;
use hero_rl::transition::DiscreteTransition;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn transition(i: usize) -> DiscreteTransition {
    DiscreteTransition {
        obs: vec![i as f32; 18],
        action: i % 4,
        reward: 0.1,
        next_obs: vec![i as f32 + 1.0; 18],
        done: false,
    }
}

fn bench_uniform_push(c: &mut Criterion) {
    c.bench_function("uniform_push_to_full_buffer", |bench| {
        let mut buf = ReplayBuffer::new(100_000);
        for i in 0..100_000 {
            buf.push(transition(i));
        }
        let mut i = 0usize;
        bench.iter(|| {
            i += 1;
            buf.push(transition(i));
        })
    });
}

fn bench_uniform_sample(c: &mut Criterion) {
    let mut buf = ReplayBuffer::new(100_000);
    for i in 0..100_000 {
        buf.push(transition(i));
    }
    let mut rng = StdRng::seed_from_u64(0);
    c.bench_function("uniform_sample_1024", |bench| {
        bench.iter(|| buf.sample(&mut rng, 1024))
    });
}

fn bench_prioritized_sample(c: &mut Criterion) {
    let mut buf = PrioritizedReplay::new(100_000, 0.6, 0.4);
    for i in 0..100_000 {
        buf.push(i);
    }
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("prioritized_sample_1024", |bench| {
        bench.iter(|| buf.sample(&mut rng, 1024))
    });
}

fn bench_prioritized_update(c: &mut Criterion) {
    c.bench_function("prioritized_priority_update_1024", |bench| {
        bench.iter_batched(
            || {
                let mut buf = PrioritizedReplay::new(100_000, 0.6, 0.4);
                for i in 0..100_000 {
                    buf.push(i);
                }
                buf
            },
            |mut buf| {
                for i in 0..1024 {
                    buf.update_priority(i * 7 % 100_000, (i % 13) as f32 + 0.1);
                }
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    bench_uniform_push,
    bench_uniform_sample,
    bench_prioritized_sample,
    bench_prioritized_update
);
criterion_main!(benches);

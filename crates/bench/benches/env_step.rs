//! Micro-benchmarks of the simulator: a full 4-vehicle environment step,
//! one lidar scan, and one camera rasterization.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hero_sim::env::EnvConfig;
use hero_sim::scenario;
use hero_sim::sensors::{camera_image, lidar_scan, CameraConfig, LidarConfig};
use hero_sim::track::Track;
use hero_sim::vehicle::{VehicleCommand, VehicleParams, VehicleState};

fn vehicles() -> Vec<VehicleState> {
    (0..4)
        .map(|i| VehicleState {
            s: i as f32 * 0.8,
            d: if i % 2 == 0 { 0.2 } else { 0.6 },
            heading: 0.05 * i as f32,
            speed: 0.1,
        })
        .collect()
}

fn bench_env_step(c: &mut Criterion) {
    c.bench_function("env_step_4_vehicles", |bench| {
        bench.iter_batched(
            || {
                let mut env = scenario::congestion(EnvConfig::default(), 0);
                env.reset();
                env
            },
            |mut env| {
                let cmds = vec![VehicleCommand::coast(0.08); env.num_vehicles()];
                env.step(&cmds)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_lidar(c: &mut Criterion) {
    let vs = vehicles();
    let track = Track::double_lane();
    let params = VehicleParams::default();
    let cfg = LidarConfig::default();
    c.bench_function("lidar_scan_16_beams", |bench| {
        bench.iter(|| lidar_scan(0, std::hint::black_box(&vs), &params, &track, &cfg))
    });
}

fn bench_camera(c: &mut Criterion) {
    let vs = vehicles();
    let track = Track::double_lane();
    let params = VehicleParams::default();
    let cfg = CameraConfig::default();
    c.bench_function("camera_12x12", |bench| {
        bench.iter(|| camera_image(0, std::hint::black_box(&vs), &params, &track, &cfg))
    });
}

criterion_group!(benches, bench_env_step, bench_lidar, bench_camera);
criterion_main!(benches);

//! Micro-benchmarks of per-step decision latency — what a real vehicle's
//! control loop would pay: DQN greedy action, SAC continuous action, and
//! a full HERO team decision pass (opponent prediction + option policy +
//! skill actuation for three agents).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use hero_baselines::dqn::{DqnAgent, DqnConfig};
use hero_baselines::sac::{SacAgent, SacConfig};
use hero_core::config::HeroConfig;
use hero_core::skills::SkillLibrary;
use hero_core::trainer::HeroTeam;
use hero_sim::env::{EnvConfig, LaneChangeEnv};
use hero_sim::scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dqn_act(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut agent = DqnAgent::new(18, 4, DqnConfig::default(), &mut rng);
    let obs = vec![0.3f32; 18];
    c.bench_function("dqn_act", |bench| {
        bench.iter(|| agent.act(std::hint::black_box(&obs), &mut rng, true))
    });
}

fn bench_sac_act(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let agent = SacAgent::new(146, 2, SacConfig::default(), &mut rng);
    let obs = vec![0.1f32; 146];
    c.bench_function("sac_act", |bench| {
        bench.iter(|| agent.act(std::hint::black_box(&obs), &mut rng, true))
    });
}

fn bench_hero_team_decide(c: &mut Criterion) {
    let env_cfg = EnvConfig::default();
    let skills = Arc::new(SkillLibrary::untrained(env_cfg, SacConfig::default(), 0));
    let mut team = HeroTeam::new(3, env_cfg.high_dim(), skills, HeroConfig::default(), 0);
    let mut env: LaneChangeEnv = scenario::congestion(env_cfg, 0);
    let obs = env.reset();
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("hero_team_decide_3_agents", |bench| {
        bench.iter(|| {
            team.begin_episode(); // force fresh option selection each pass
            team.decide(&env, std::hint::black_box(&obs), &mut rng, true)
        })
    });
}

criterion_group!(
    benches,
    bench_dqn_act,
    bench_sac_act,
    bench_hero_team_decide
);
criterion_main!(benches);

//! Training-throughput benchmark suite.
//!
//! Measures the three layers of the throughput overhaul and emits a
//! machine-readable `BENCH_train_throughput.json` (path overridable via
//! `HERO_BENCH_OUT`):
//!
//! - `matmul_gflops` — tiled kernel throughput at a square 128³ GEMM,
//!   alongside the naive zero-skipping kernel it replaced
//!   ([`hero_autograd::matmul_sparse_lhs`]) for reference.
//! - `matmul_gflops_strict` / `matmul_gflops_fast` (+ `_t1/_t2/_t4`
//!   scaling points, `isa`, `gemm_threads`) — the kernel-tier comparison
//!   at a square 256³ GEMM: the strict register-tiled kernel versus the
//!   packed FMA fast-math tier. Fast points are `0.0` unless the bench is
//!   built with `--features fast-math`; on a fast-math build the
//!   single-thread fast tier must clear 2× strict.
//! - `train_step_speedup` — the 32×32-hidden training-step microbench:
//!   a hand-rolled replica of the *old* cost model (naive kernel,
//!   materialized transposes in backward, fresh allocations per step)
//!   against the current graph path (tiled/fused kernels, arena reuse).
//! - `env_steps_per_s` / `grad_updates_per_s` — end-to-end fig7-style
//!   training throughput from telemetry counters over wall-clock time.
//! - `env_steps_per_sec_scalar` / `env_steps_per_sec_batched` — the
//!   rollout_throughput phase: raw environment stepping through a scalar
//!   [`hero_sim::env::LaneChangeEnv`] loop versus a 32-world
//!   [`hero_sim::batch::BatchWorld`] struct-of-arrays sweep (the
//!   actor/learner engine's hot path). The batched engine must clear 3×.
//!
//! Run via `scripts/bench.sh` or directly:
//! `cargo bench --bench train_throughput -- --quick`

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{black_box, Criterion};
use hero_autograd::nn::{Activation, Mlp, Module};
use hero_autograd::{loss, matmul, matmul_sparse_lhs, zero_grads, Graph, Tensor};
use hero_baselines::sac::SacConfig;
use hero_core::config::HeroConfig;
use hero_core::skills::SkillLibrary;
use hero_core::trainer::{train_team, HeroTeam, TrainOptions};
use hero_rl::telemetry::{self, TelemetryConfig};
use hero_sim::batch::BatchWorld;
use hero_sim::env::EnvConfig;
use hero_sim::scenario;
use hero_sim::vehicle::VehicleCommand;
use rand::rngs::StdRng;
use rand::SeedableRng;

// ---------------------------------------------------------------------------
// Naive baseline: the pre-overhaul cost model
// ---------------------------------------------------------------------------

/// A two-hidden-layer MLP trained by hand the way the graph used to do it:
/// every matmul goes through the branchy zero-skipping kernel, backward
/// materializes explicit transposes, and every intermediate is a fresh
/// allocation. This is the ≥3× acceptance baseline.
struct NaiveNet {
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
    w3: Tensor,
    b3: Tensor,
}

impl NaiveNet {
    fn new(in_dim: usize, hidden: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let std1 = (2.0 / in_dim as f32).sqrt();
        let std2 = (2.0 / hidden as f32).sqrt();
        Self {
            w1: Tensor::randn(vec![in_dim, hidden], std1, rng),
            b1: Tensor::zeros(vec![hidden]),
            w2: Tensor::randn(vec![hidden, hidden], std2, rng),
            b2: Tensor::zeros(vec![hidden]),
            w3: Tensor::randn(vec![hidden, out_dim], std2, rng),
            b3: Tensor::zeros(vec![out_dim]),
        }
    }

    /// Forward + MSE backward, returning the loss. Gradients are computed
    /// into fresh tensors and discarded — the measurement targets kernel
    /// and allocation cost, not the optimizer.
    fn train_step(&self, x: &Tensor, target: &Tensor) -> f32 {
        let z1 = add_bias_fresh(&matmul_sparse_lhs(x, &self.w1), &self.b1);
        let h1 = relu_fresh(&z1);
        let z2 = add_bias_fresh(&matmul_sparse_lhs(&h1, &self.w2), &self.b2);
        let h2 = relu_fresh(&z2);
        let y = add_bias_fresh(&matmul_sparse_lhs(&h2, &self.w3), &self.b3);

        let n = y.len() as f32;
        let mut loss = 0.0f32;
        let mut g = Vec::with_capacity(y.len());
        for (yv, tv) in y.data().iter().zip(target.data()) {
            let d = yv - tv;
            loss += d * d;
            g.push(2.0 * d / n);
        }
        let g = Tensor::from_vec(y.shape().to_vec(), g);

        // Backward with materialized transposes (old MatMul backward).
        let _gw3 = matmul_sparse_lhs(&h2.transposed(), &g);
        let _gb3 = col_sums_fresh(&g);
        let g2 = relu_mask_fresh(&matmul_sparse_lhs(&g, &self.w3.transposed()), &z2);
        let _gw2 = matmul_sparse_lhs(&h1.transposed(), &g2);
        let _gb2 = col_sums_fresh(&g2);
        let g1 = relu_mask_fresh(&matmul_sparse_lhs(&g2, &self.w2.transposed()), &z1);
        let _gw1 = matmul_sparse_lhs(&x.transposed(), &g1);
        let _gb1 = col_sums_fresh(&g1);
        black_box((_gw1, _gw2, _gw3, _gb1, _gb2, _gb3));
        loss / n
    }
}

fn add_bias_fresh(x: &Tensor, b: &Tensor) -> Tensor {
    let cols = b.len();
    let data = x
        .data()
        .iter()
        .enumerate()
        .map(|(i, v)| v + b.data()[i % cols])
        .collect();
    Tensor::from_vec(x.shape().to_vec(), data)
}

fn relu_fresh(x: &Tensor) -> Tensor {
    Tensor::from_vec(x.shape().to_vec(), x.data().iter().map(|v| v.max(0.0)).collect())
}

fn relu_mask_fresh(g: &Tensor, pre: &Tensor) -> Tensor {
    let data = g
        .data()
        .iter()
        .zip(pre.data())
        .map(|(gv, zv)| if *zv > 0.0 { *gv } else { 0.0 })
        .collect();
    Tensor::from_vec(g.shape().to_vec(), data)
}

fn col_sums_fresh(g: &Tensor) -> Tensor {
    let cols = *g.shape().last().unwrap();
    let mut out = vec![0.0f32; cols];
    for (i, v) in g.data().iter().enumerate() {
        out[i % cols] += v;
    }
    Tensor::from_vec(vec![cols], out)
}

// ---------------------------------------------------------------------------
// Benches
// ---------------------------------------------------------------------------

const MM_DIM: usize = 128;
/// Square GEMM size for the strict-vs-fast kernel-tier comparison — big
/// enough that packing pays for itself (the fast tier must clear 2×
/// strict here on a fast-math build).
const MODE_DIM: usize = 256;
/// Thread counts swept for the fast tier's scaling curve.
const FAST_THREADS: [usize; 3] = [1, 2, 4];
const STEP_BATCH: usize = 256;
const STEP_IN: usize = 64;
const STEP_HIDDEN: usize = 32;
const STEP_OUT: usize = 8;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let a = Tensor::randn(vec![MM_DIM, MM_DIM], 1.0, &mut rng);
    let b = Tensor::randn(vec![MM_DIM, MM_DIM], 1.0, &mut rng);
    c.bench_function("matmul_naive_128", |bench| {
        bench.iter(|| matmul_sparse_lhs(black_box(&a), black_box(&b)))
    });
    c.bench_function("matmul_tiled_128", |bench| {
        bench.iter(|| matmul(black_box(&a), black_box(&b)))
    });
}

/// Strict vs fast kernel tier at [`MODE_DIM`]³, plus the fast tier's
/// thread-scaling points. The strict side is the default [`matmul`]
/// (register-tiled, no FMA contraction); the fast side calls the packed
/// FMA tier directly via [`hero_autograd::fastmath::fast_matmul_threaded`]
/// — no global mode flipping, so this composes with everything else in
/// the process. Without the `fast-math` feature only the strict point is
/// measured.
fn bench_kernel_modes(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(13);
    let a = Tensor::randn(vec![MODE_DIM, MODE_DIM], 1.0, &mut rng);
    let b = Tensor::randn(vec![MODE_DIM, MODE_DIM], 1.0, &mut rng);
    c.bench_function("matmul_strict_256", |bench| {
        bench.iter(|| matmul(black_box(&a), black_box(&b)))
    });
    #[cfg(feature = "fast-math")]
    for t in FAST_THREADS {
        c.bench_function(&format!("matmul_fast_256_t{t}"), |bench| {
            bench.iter(|| {
                hero_autograd::fastmath::fast_matmul_threaded(black_box(&a), black_box(&b), t)
            })
        });
    }
    #[cfg(not(feature = "fast-math"))]
    let _ = &FAST_THREADS;
}

fn bench_train_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(12);
    let x = Tensor::randn(vec![STEP_BATCH, STEP_IN], 1.0, &mut rng);
    let target = Tensor::randn(vec![STEP_BATCH, STEP_OUT], 1.0, &mut rng);

    let naive = NaiveNet::new(STEP_IN, STEP_HIDDEN, STEP_OUT, &mut rng);
    c.bench_function("train_step_naive_32x32", |bench| {
        bench.iter(|| naive.train_step(black_box(&x), black_box(&target)))
    });

    let net = Mlp::new(
        "bench",
        &[STEP_IN, STEP_HIDDEN, STEP_HIDDEN, STEP_OUT],
        Activation::Relu,
        &mut rng,
    );
    let params = net.parameters();
    let mut graph = Graph::new(); // persistent: arena reuse across steps
    c.bench_function("train_step_tiled_32x32", |bench| {
        bench.iter(|| {
            graph.reset();
            zero_grads(&params);
            let xn = graph.input(x.clone());
            let tn = graph.input(target.clone());
            let y = net.forward(&mut graph, xn);
            let l = loss::mse(&mut graph, y, tn);
            graph.backward(l);
            graph.value(l).item()
        })
    });
}

/// End-to-end fig7-style training run; returns
/// `(env_steps_per_s, grad_updates_per_s)` from telemetry counters over
/// wall-clock time.
fn measure_training_throughput(episodes: usize) -> (f64, f64) {
    let guard = telemetry::scoped(TelemetryConfig::default());
    let env_cfg = EnvConfig {
        max_steps: 24,
        ..EnvConfig::default()
    };
    let mut env = scenario::two_vehicle_merge(env_cfg, 3);
    let skills = Arc::new(SkillLibrary::untrained(
        env_cfg,
        SacConfig {
            hidden: 32,
            ..SacConfig::default()
        },
        0,
    ));
    let cfg = HeroConfig {
        hidden: 32,
        batch_size: 8,
        warmup: 8,
        ..HeroConfig::default()
    };
    let mut team = HeroTeam::new(2, env_cfg.high_dim(), skills, cfg, 1);
    let start = Instant::now();
    train_team(
        &mut team,
        &mut env,
        &TrainOptions {
            episodes,
            update_every: 1,
            seed: 7,
        },
    );
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    let state = telemetry::export_state().expect("scoped sink active");
    drop(guard);
    let env_steps = state.counters.get("env_steps").copied().unwrap_or(0) as f64;
    let grad_updates = state.counters.get("grad_updates").copied().unwrap_or(0) as f64;
    (env_steps / secs, grad_updates / secs)
}

/// Worlds in the batched rollout measurement (one actor's shard at the
/// scale the actor/learner engine targets).
const ROLLOUT_WORLDS: usize = 32;

/// The rollout_throughput phase: raw environment stepping (no learning),
/// scalar loop vs one [`BatchWorld`] sweep over [`ROLLOUT_WORLDS`] worlds.
/// Both sides run the congestion scenario with coasting commands and
/// reset finished episodes in place; a "step" is one world advanced one
/// control period. Returns `(scalar_steps_per_s, batched_steps_per_s)`.
fn measure_rollout_throughput(target_steps: usize) -> (f64, f64) {
    let env_cfg = EnvConfig {
        max_steps: 64,
        ..EnvConfig::default()
    };

    let mut env = scenario::congestion(env_cfg, 5);
    let n = env.num_vehicles();
    let coast = |speeds: Vec<f32>| -> Vec<VehicleCommand> {
        speeds.into_iter().map(VehicleCommand::coast).collect()
    };
    let mut steps = 0usize;
    let start = Instant::now();
    while steps < target_steps {
        if env.is_done() {
            env.reset();
        }
        let cmds = coast((0..n).map(|i| env.vehicle_state(i).speed).collect());
        env.step(&cmds);
        steps += 1;
    }
    let scalar = steps as f64 / start.elapsed().as_secs_f64().max(1e-9);

    let proto = scenario::congestion(env_cfg, 5);
    let mut batch = BatchWorld::replicate(&proto, ROLLOUT_WORLDS);
    let all: Vec<usize> = (0..ROLLOUT_WORLDS).collect();
    let mut steps = 0usize;
    let start = Instant::now();
    while steps < target_steps {
        for &w in &all {
            if batch.is_done(w) {
                batch.reset_world(w);
            }
        }
        let commands: Vec<Vec<VehicleCommand>> = all
            .iter()
            .map(|&w| coast((0..n).map(|i| batch.vehicle_state(w, i).speed).collect()))
            .collect();
        batch.step_worlds(&all, &commands);
        steps += ROLLOUT_WORLDS;
    }
    let batched = steps as f64 / start.elapsed().as_secs_f64().max(1e-9);
    (scalar, batched)
}

// ---------------------------------------------------------------------------
// Driver + JSON emission
// ---------------------------------------------------------------------------

fn result_ns(c: &Criterion, name: &str) -> f64 {
    c.results()
        .iter()
        .filter(|(n, _)| n == name)
        .map(|(_, ns)| *ns)
        .fold(f64::NAN, f64::min)
}

fn main() {
    // `cargo bench` passes `--bench` (and possibly test-harness flags);
    // only `--quick` is ours, everything else is ignored.
    let quick = std::env::args().any(|a| a == "--quick");
    let (warm, measure, episodes) = if quick {
        (Duration::from_millis(20), Duration::from_millis(120), 5)
    } else {
        (Duration::from_millis(200), Duration::from_millis(800), 12)
    };

    let mut c = Criterion::default()
        .warm_up_time(warm)
        .measurement_time(measure);
    // The box this runs on can be noisy; measure each bench three times and
    // report the per-bench minimum (result_ns takes the min over repeats).
    for _ in 0..3 {
        bench_matmul(&mut c);
        bench_kernel_modes(&mut c);
        bench_train_step(&mut c);
    }

    println!("training throughput ({episodes} episodes)...");
    let (env_steps_per_s, grad_updates_per_s) = measure_training_throughput(episodes);
    println!("env_steps/s      {env_steps_per_s:>14.1}");
    println!("grad_updates/s   {grad_updates_per_s:>14.1}");

    let rollout_steps = if quick { 4_096 } else { 32_768 };
    println!("rollout throughput ({rollout_steps} env steps, {ROLLOUT_WORLDS}-world batch)...");
    // Take the best of three runs per side to shrug off scheduler noise.
    let (env_steps_per_sec_scalar, env_steps_per_sec_batched) = (0..3)
        .map(|_| measure_rollout_throughput(rollout_steps))
        .fold((f64::NAN, f64::NAN), |(s, b), (ns, nb)| {
            (s.max(ns), b.max(nb))
        });
    let rollout_batch_speedup = env_steps_per_sec_batched / env_steps_per_sec_scalar;
    println!("scalar env_steps/s  {env_steps_per_sec_scalar:>14.1}");
    println!("batched env_steps/s {env_steps_per_sec_batched:>14.1}");
    println!("batched speedup     {rollout_batch_speedup:>13.2}x");

    let matmul_naive_ns = result_ns(&c, "matmul_naive_128");
    let matmul_tiled_ns = result_ns(&c, "matmul_tiled_128");
    let train_step_naive_ns = result_ns(&c, "train_step_naive_32x32");
    let train_step_tiled_ns = result_ns(&c, "train_step_tiled_32x32");
    let flops = 2.0 * (MM_DIM * MM_DIM * MM_DIM) as f64;
    let matmul_gflops = flops / matmul_tiled_ns; // ns → GFLOP/s directly
    let train_step_speedup = train_step_naive_ns / train_step_tiled_ns;
    println!("matmul GFLOP/s   {matmul_gflops:>14.2}");
    println!("train-step speedup {train_step_speedup:>12.2}x");

    // Kernel-tier comparison at MODE_DIM³. Fast points are 0.0 on a
    // build without the feature — absent capability, not a slow kernel.
    let mode_flops = 2.0 * (MODE_DIM * MODE_DIM * MODE_DIM) as f64;
    let matmul_gflops_strict = mode_flops / result_ns(&c, "matmul_strict_256");
    let fast_curve: Vec<f64> = FAST_THREADS
        .iter()
        .map(|t| {
            let ns = result_ns(&c, &format!("matmul_fast_256_t{t}"));
            if ns.is_nan() {
                0.0
            } else {
                mode_flops / ns
            }
        })
        .collect();
    let matmul_gflops_fast = fast_curve[0]; // headline: single-thread
    let fast_vs_strict_speedup = matmul_gflops_fast / matmul_gflops_strict;
    // The thread count that actually went fastest on this box — recorded
    // so BENCH_history rows say how the fast number was obtained.
    let gemm_threads = FAST_THREADS
        .iter()
        .zip(&fast_curve)
        .max_by(|(_, a), (_, b)| a.total_cmp(b))
        .map_or(1, |(t, g)| if *g > 0.0 { *t } else { 1 });
    let isa = hero_autograd::isa_name();
    println!("strict GFLOP/s ({MODE_DIM}) {matmul_gflops_strict:>10.2}  (isa {isa})");
    if matmul_gflops_fast > 0.0 {
        for (t, g) in FAST_THREADS.iter().zip(&fast_curve) {
            println!("fast GFLOP/s t{t}       {g:>10.2}");
        }
        println!("fast/strict speedup    {fast_vs_strict_speedup:>9.2}x");
    } else {
        println!("fast tier not compiled (rebuild with --features fast-math)");
    }

    let out = std::env::var("HERO_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_train_throughput.json".to_string());
    let json = format!(
        "{{\n  \"bench\": \"train_throughput\",\n  \"quick\": {quick},\n  \
         \"isa\": \"{isa}\",\n  \"gemm_threads\": {gemm_threads},\n  \
         \"matmul_dim\": {MM_DIM},\n  \"matmul_naive_ns\": {matmul_naive_ns:.1},\n  \
         \"matmul_tiled_ns\": {matmul_tiled_ns:.1},\n  \"matmul_gflops\": {matmul_gflops:.3},\n  \
         \"matmul_mode_dim\": {MODE_DIM},\n  \
         \"matmul_gflops_strict\": {matmul_gflops_strict:.3},\n  \
         \"matmul_gflops_fast\": {matmul_gflops_fast:.3},\n  \
         \"matmul_gflops_fast_t1\": {t1:.3},\n  \
         \"matmul_gflops_fast_t2\": {t2:.3},\n  \
         \"matmul_gflops_fast_t4\": {t4:.3},\n  \
         \"fast_vs_strict_speedup\": {fast_vs_strict_speedup:.3},\n  \
         \"train_step_naive_ns\": {train_step_naive_ns:.1},\n  \
         \"train_step_tiled_ns\": {train_step_tiled_ns:.1},\n  \
         \"train_step_speedup\": {train_step_speedup:.3},\n  \
         \"env_steps_per_s\": {env_steps_per_s:.3},\n  \
         \"grad_updates_per_s\": {grad_updates_per_s:.3},\n  \
         \"rollout_worlds\": {ROLLOUT_WORLDS},\n  \
         \"env_steps_per_sec_scalar\": {env_steps_per_sec_scalar:.3},\n  \
         \"env_steps_per_sec_batched\": {env_steps_per_sec_batched:.3},\n  \
         \"rollout_batch_speedup\": {rollout_batch_speedup:.3}\n}}\n",
        t1 = fast_curve[0],
        t2 = fast_curve[1],
        t4 = fast_curve[2],
    );
    std::fs::write(&out, json).expect("write bench JSON");
    println!("wrote {out}");
}

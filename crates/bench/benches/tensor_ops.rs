//! Micro-benchmarks of the autodiff substrate: matmul, conv2d, and a full
//! MLP forward+backward at the paper's network sizes (hidden 32, batch
//! 1024 per Table I).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hero_autograd::nn::{Activation, Mlp, Module};
use hero_autograd::{Graph, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = Tensor::randn(vec![1024, 32], 1.0, &mut rng);
    let b = Tensor::randn(vec![32, 32], 1.0, &mut rng);
    c.bench_function("matmul_1024x32x32", |bench| {
        bench.iter(|| hero_autograd::matmul(std::hint::black_box(&a), std::hint::black_box(&b)))
    });
}

fn bench_mlp_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let net = Mlp::new("bench", &[18, 32, 32, 4], Activation::Relu, &mut rng);
    let x = Tensor::randn(vec![1024, 18], 1.0, &mut rng);
    c.bench_function("mlp_forward_b1024", |bench| {
        bench.iter(|| net.infer(std::hint::black_box(&x)))
    });
}

fn bench_mlp_backward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let net = Mlp::new("bench", &[18, 32, 32, 4], Activation::Relu, &mut rng);
    let x = Tensor::randn(vec![1024, 18], 1.0, &mut rng);
    c.bench_function("mlp_forward_backward_b1024", |bench| {
        bench.iter_batched(
            || x.clone(),
            |x| {
                let mut g = Graph::new();
                let xn = g.input(x);
                let y = net.forward(&mut g, xn);
                let l = g.mean(y);
                g.backward(l);
                net.zero_grad();
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let x = Tensor::randn(vec![32, 1, 12, 12], 1.0, &mut rng);
    let w = Tensor::randn(vec![4, 1, 3, 3], 0.3, &mut rng);
    let b = Tensor::zeros(vec![4]);
    c.bench_function("conv2d_b32_12x12", |bench| {
        bench.iter_batched(
            || (x.clone(), w.clone(), b.clone()),
            |(x, w, b)| {
                let mut g = Graph::new();
                let xn = g.input(x);
                let wn = g.input(w);
                let bn = g.input(b);
                g.conv2d(xn, wn, bn, 2, 1)
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_mlp_forward,
    bench_mlp_backward,
    bench_conv2d
);
criterion_main!(benches);

//! # hero-bench
//!
//! The experiment harness regenerating every table and figure of the HERO
//! paper's evaluation (Sec. V), plus Criterion micro-benchmarks.
//!
//! One binary per experiment (see `DESIGN.md` for the full index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1_hyperparams` | Table I (hyper-parameters) |
//! | `fig7_learning_curves` | Fig. 7(a–c) learning curves |
//! | `fig8_lowlevel_skills` | Fig. 8 skill-training rewards |
//! | `fig10_opponent_loss` | Fig. 10 opponent-model losses |
//! | `fig11_mean_speed` | Fig. 11 mean speeds |
//! | `table2_realworld` | Table II sim-to-real evaluation |
//! | `ablation_opponent_model` | opponent-model ablation |
//! | `ablation_hierarchy` | hierarchy-vs-flat ablation |
//! | `ablation_termination` | async-vs-sync termination ablation |
//!
//! Every binary takes `--episodes N --seed S --out DIR` (and
//! `--paper-scale` for the full Table I budget) and writes CSV series
//! under `target/experiments/`. Passing `--telemetry-out DIR`
//! additionally records span timings, counters, and throughput gauges
//! (see `hero_rl::telemetry`) and writes `telemetry.jsonl` plus CSV and
//! `BENCH_telemetry.json` summaries into `DIR` on exit; passing
//! `--trace-out FILE` records Chrome trace events for every span and
//! writes a Perfetto-loadable `trace.json` to `FILE`; passing
//! `--metrics-addr HOST:PORT` serves the live registry over HTTP for the
//! lifetime of the run (`GET /metrics` Prometheus text format,
//! `GET /snapshot` JSONL — scrape with `hero-inspect watch HOST:PORT`),
//! with the bound address written to `<out>/metrics_addr`.
//!
//! Crash-safe training: `--checkpoint-every N --checkpoint-dir DIR`
//! snapshots the full HERO trainer state every `N` episodes into a
//! rotating set of atomic, CRC-checked checkpoint files, `--resume`
//! continues bit-identically from the newest valid one, and
//! `--fault-plan SPEC` (e.g. `kill@ep:3,truncate@save:1`) injects
//! deterministic crashes, IO errors, checkpoint corruption, and NaN
//! gradients for recovery drills. Injected kills exit with code 137.
//!
//! Distributed rollout: `--actors N` moves environment stepping onto `N`
//! actor threads and `--batch-worlds M` gives each actor `M` world
//! replicas stepped as one struct-of-arrays batch
//! (`hero_core::rollout`). With `M == 1` the run stays bit-identical to
//! the sequential trainer for any `N`; with `M > 1` episodes interleave
//! across `N×M` worlds for throughput (self-reproducible, resumable).
//! HERO only — the flat baselines ignore both flags.
//!
//! Kernel tiers: `--kernel-mode strict` (default) keeps the bitwise
//! determinism contract; `--kernel-mode fast` (requires a
//! `--features fast-math` build) dispatches the packed FMA GEMM tier,
//! with `--gemm-threads N` row-parallelism — run-to-run reproducible but
//! differing from strict at the ULP, so fast runs diff against the
//! fast-math golden with `hero-inspect diff --rtol`. The mode is recorded
//! in telemetry (`kernel/*` counters, fast mode only) and in checkpoint
//! metadata; resuming a checkpoint under the other mode is refused.

#![warn(missing_docs)]

pub mod args;
pub mod harness;

pub use args::ExperimentArgs;
pub use harness::{
    build_method, evaluate_baseline, exit_on_train_error, train_baseline, train_baseline_faulted,
    train_policy, train_policy_checkpointed, train_policy_distributed, BaselineTrainOptions,
    Method, MethodParams, TrainedPolicy,
};

use std::sync::Arc;

use hero_baselines::sac::SacConfig;
use hero_core::skills::{SkillLibrary, SkillTrainingConfig};
use hero_sim::env::EnvConfig;

/// Default skill-training budget when no checkpoint is available
/// (override per run with `--skill-episodes`).
pub const SKILL_BOOTSTRAP_EPISODES: usize = 1_000;

/// Live telemetry session of one experiment run: the installed registry
/// guard plus, when `--metrics-addr` was given, the background metrics
/// exporter serving it. Keep it alive for the whole run — dropping it
/// shuts the exporter down, flushes the emitter outputs, and uninstalls
/// the sink (field order: the exporter thread stops before its registry
/// flushes).
pub struct TelemetrySession {
    _exporter: Option<hero_rl::telemetry::exporter::MetricsExporter>,
    _guard: hero_rl::telemetry::InstallGuard,
}

/// Installs the telemetry subsystem for one experiment run when the user
/// passed `--telemetry-out DIR`, `--trace-out FILE`, and/or
/// `--metrics-addr HOST:PORT`. Keep the returned session alive for the
/// whole run: dropping it flushes `telemetry.jsonl`, `counters.csv`,
/// `spans.csv`, and `BENCH_telemetry.json` into the directory (when
/// `--telemetry-out` was given), writes the Chrome trace to the file
/// (when `--trace-out` was given), shuts down the HTTP exporter (when
/// `--metrics-addr` was given), and uninstalls the sink. Returns `None`
/// (telemetry stays disabled, with near-zero overhead) when all three
/// flags were absent.
///
/// With `--metrics-addr` the resolved address (port `0` becomes the real
/// ephemeral port) is printed to stderr and written to
/// `<out>/metrics_addr` so scrapers and `hero-inspect watch` can discover
/// it.
///
/// # Panics
///
/// Panics when `--metrics-addr` cannot be bound — a monitoring run that
/// silently isn't being monitored is worse than a loud early exit.
pub fn init_telemetry(args: &ExperimentArgs, run_label: &str) -> Option<TelemetrySession> {
    if args.telemetry_out.is_none() && args.trace_out.is_none() && args.metrics_addr.is_none() {
        return None;
    }
    let mut cfg = hero_rl::telemetry::TelemetryConfig {
        run_label: run_label.into(),
        out_dir: args.telemetry_out.clone(),
        ..Default::default()
    };
    if let Some(path) = &args.trace_out {
        cfg = cfg.with_trace(path.clone());
    }
    let guard = hero_rl::telemetry::install(cfg);
    let exporter = args.metrics_addr.as_deref().map(|addr| {
        let exporter =
            hero_rl::telemetry::exporter::serve(Arc::clone(guard.registry()), addr)
                .unwrap_or_else(|e| panic!("cannot bind --metrics-addr {addr}: {e}"));
        let bound = exporter.local_addr();
        eprintln!("metrics exporter listening on http://{bound}/metrics");
        let discovery = args.out.join("metrics_addr");
        if let Some(parent) = discovery.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Err(e) = std::fs::write(&discovery, format!("{bound}\n")) {
            eprintln!("cannot write {}: {e}", discovery.display());
        }
        exporter
    });
    Some(TelemetrySession { _exporter: exporter, _guard: guard })
}

/// Loads the shared low-level skill library from
/// `<out>/skills.ckpt`, or trains it (Fig. 8 / Algorithm 2) and saves the
/// checkpoint for the other experiment binaries to reuse.
pub fn load_or_train_skills(args: &ExperimentArgs, env_cfg: EnvConfig) -> Arc<SkillLibrary> {
    let ckpt = args.out_file("skills.ckpt");
    let defaults = SacConfig::default();
    let sac = SacConfig {
        batch_size: args.batch_size,
        // As in `build_method`: clamp warm-up to one mini-batch so tiny
        // smoke runs exercise the SAC update (and its diagnostics).
        warmup: defaults.warmup.min(args.batch_size),
        ..defaults
    };
    if ckpt.exists() {
        let mut lib = SkillLibrary::untrained(env_cfg, sac, args.seed);
        match lib.load(&ckpt) {
            Ok(()) => {
                eprintln!("loaded skill checkpoint from {}", ckpt.display());
                return Arc::new(lib);
            }
            Err(e) => eprintln!("checkpoint {} unusable ({e}); retraining", ckpt.display()),
        }
    }
    let episodes = args.skill_episodes;
    eprintln!("training low-level skills for {episodes} episodes (one-time bootstrap)");
    let _span = hero_rl::telemetry::span("skill_bootstrap");
    let (lib, _) = SkillLibrary::train(
        env_cfg,
        SkillTrainingConfig {
            vision: false,
            episodes,
            updates_per_episode: 2,
            sac,
        },
        args.seed,
    );
    lib.save(&ckpt).expect("save skill checkpoint");
    Arc::new(lib)
}

/// Prints a labelled evaluation row in the Table II layout.
pub fn print_eval_row(label: &str, stats: &hero_core::trainer::EvalStats) {
    println!(
        "{label:<18} collision_rate={:.3}  success_rate={:.3}  mean_speed={:.4}  mean_reward={:.4}",
        stats.collision_rate, stats.success_rate, stats.mean_speed, stats.mean_reward
    );
}

//! Minimal command-line parsing shared by the experiment binaries. Every
//! binary accepts `--episodes N --eval-episodes N --seed S --out DIR
//! --update-every K --batch-size N --skill-episodes N
//! --telemetry-out DIR --trace-out FILE --paper-scale`.

use std::path::PathBuf;

/// Parsed experiment arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentArgs {
    /// Training episodes per method.
    pub episodes: usize,
    /// Greedy evaluation episodes.
    pub eval_episodes: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out: PathBuf,
    /// Environment steps between gradient updates.
    pub update_every: usize,
    /// Mini-batch size for the learners.
    pub batch_size: usize,
    /// Episodes for the one-time low-level skill bootstrap when no
    /// checkpoint exists (Algorithm 2).
    pub skill_episodes: usize,
    /// When set, install the telemetry subsystem and write
    /// `telemetry.jsonl` / `counters.csv` / `spans.csv` /
    /// `BENCH_telemetry.json` into this directory on exit.
    pub telemetry_out: Option<PathBuf>,
    /// When set, record Chrome trace events for every span and write a
    /// Perfetto-loadable `trace.json` to this file on exit.
    pub trace_out: Option<PathBuf>,
}

impl ExperimentArgs {
    /// Defaults tuned so each binary finishes in minutes on a laptop; use
    /// `--paper-scale` for the full Table I budget (14 000 episodes,
    /// batch 1024).
    pub fn defaults(episodes: usize) -> Self {
        Self {
            episodes,
            eval_episodes: 20,
            seed: 7,
            out: PathBuf::from("target/experiments"),
            update_every: 4,
            batch_size: 128,
            skill_episodes: 1_000,
            telemetry_out: None,
            trace_out: None,
        }
    }

    /// Parses `std::env::args`-style strings after the program name.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse(defaults: Self, args: impl IntoIterator<Item = String>) -> Self {
        let mut out = defaults;
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("flag {name} requires a value"))
            };
            match flag.as_str() {
                "--episodes" => out.episodes = value("--episodes").parse().expect("usize"),
                "--eval-episodes" => {
                    out.eval_episodes = value("--eval-episodes").parse().expect("usize")
                }
                "--seed" => out.seed = value("--seed").parse().expect("u64"),
                "--out" => out.out = PathBuf::from(value("--out")),
                "--update-every" => {
                    out.update_every = value("--update-every").parse().expect("usize")
                }
                "--batch-size" => out.batch_size = value("--batch-size").parse().expect("usize"),
                "--skill-episodes" => {
                    out.skill_episodes = value("--skill-episodes").parse().expect("usize")
                }
                "--telemetry-out" => {
                    out.telemetry_out = Some(PathBuf::from(value("--telemetry-out")))
                }
                "--trace-out" => out.trace_out = Some(PathBuf::from(value("--trace-out"))),
                "--paper-scale" => {
                    out.episodes = 14_000;
                    out.batch_size = 1024;
                    out.update_every = 1;
                }
                other => panic!(
                    "unknown flag {other}; expected --episodes/--eval-episodes/--seed/--out/--update-every/--batch-size/--skill-episodes/--telemetry-out/--trace-out/--paper-scale"
                ),
            }
        }
        out
    }

    /// Parses the current process arguments.
    pub fn from_env(defaults: Self) -> Self {
        Self::parse(defaults, std::env::args().skip(1))
    }

    /// Ensures the output directory exists and returns the path of a file
    /// inside it.
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created.
    pub fn out_file(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out).expect("create output directory");
        self.out.join(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_overrides_defaults() {
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(100),
            strs(&["--episodes", "5", "--seed", "9", "--out", "/tmp/x"]),
        );
        assert_eq!(a.episodes, 5);
        assert_eq!(a.seed, 9);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert_eq!(a.eval_episodes, 20, "untouched default");
        assert_eq!(a.telemetry_out, None, "telemetry stays off by default");
    }

    #[test]
    fn telemetry_and_skill_flags_parse() {
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(100),
            strs(&["--telemetry-out", "/tmp/tel", "--skill-episodes", "3"]),
        );
        assert_eq!(a.telemetry_out, Some(PathBuf::from("/tmp/tel")));
        assert_eq!(a.trace_out, None, "trace capture stays off by default");
        assert_eq!(a.skill_episodes, 3);
    }

    #[test]
    fn trace_out_parses_independently_of_telemetry_out() {
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(100),
            strs(&["--trace-out", "/tmp/tel/trace.json"]),
        );
        assert_eq!(a.trace_out, Some(PathBuf::from("/tmp/tel/trace.json")));
        assert_eq!(a.telemetry_out, None);
    }

    #[test]
    fn paper_scale_sets_table_one_budget() {
        let a = ExperimentArgs::parse(ExperimentArgs::defaults(100), strs(&["--paper-scale"]));
        assert_eq!(a.episodes, 14_000);
        assert_eq!(a.batch_size, 1024);
        assert_eq!(a.update_every, 1);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_rejected() {
        ExperimentArgs::parse(ExperimentArgs::defaults(1), strs(&["--bogus"]));
    }
}

//! Minimal command-line parsing shared by the experiment binaries. Every
//! binary accepts `--episodes N --eval-episodes N --seed S --out DIR
//! --update-every K --batch-size N --skill-episodes N
//! --telemetry-out DIR --trace-out FILE --metrics-addr HOST:PORT
//! --paper-scale --checkpoint-every N --checkpoint-dir DIR
//! --checkpoint-retain K --checkpoint-retry N --resume --fault-plan SPEC
//! --actors N --batch-worlds N --stall-timeout-ms MS --max-respawns N
//! --respawn-backoff-ms MS --kernel-mode strict|fast --gemm-threads N`.

use std::path::PathBuf;

use hero_autograd::KernelMode;
use hero_core::rollout::RolloutOptions;
use hero_core::CheckpointConfig;
use hero_faultplan::{FaultPlan, KillMode};

/// Parsed experiment arguments.
#[derive(Clone, Debug, PartialEq)]
pub struct ExperimentArgs {
    /// Training episodes per method.
    pub episodes: usize,
    /// Greedy evaluation episodes.
    pub eval_episodes: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for CSV files.
    pub out: PathBuf,
    /// Environment steps between gradient updates.
    pub update_every: usize,
    /// Mini-batch size for the learners.
    pub batch_size: usize,
    /// Episodes for the one-time low-level skill bootstrap when no
    /// checkpoint exists (Algorithm 2).
    pub skill_episodes: usize,
    /// When set, install the telemetry subsystem and write
    /// `telemetry.jsonl` / `counters.csv` / `spans.csv` /
    /// `BENCH_telemetry.json` into this directory on exit.
    pub telemetry_out: Option<PathBuf>,
    /// When set, record Chrome trace events for every span and write a
    /// Perfetto-loadable `trace.json` to this file on exit.
    pub trace_out: Option<PathBuf>,
    /// When set, serve the live telemetry registry over HTTP
    /// (`GET /metrics` Prometheus, `GET /snapshot` JSONL) from this
    /// address for the lifetime of the run; port `0` binds an ephemeral
    /// port, written to `<out>/metrics_addr` for scrapers to discover.
    pub metrics_addr: Option<String>,
    /// Save a full trainer checkpoint every this many episodes
    /// (`0` disables checkpointing).
    pub checkpoint_every: usize,
    /// Directory for rotating checkpoint files.
    pub checkpoint_dir: Option<PathBuf>,
    /// How many good checkpoints to retain per training run.
    pub checkpoint_retain: usize,
    /// Resume from the newest valid checkpoint in `--checkpoint-dir`.
    pub resume: bool,
    /// Unparsed fault-injection spec (see [`hero_faultplan::FaultPlan`]),
    /// e.g. `kill@ep:3,truncate@save:1`.
    pub fault_plan: Option<String>,
    /// Rollout actor threads for HERO training (`1` = the plain
    /// sequential loop unless `--batch-worlds` asks for more worlds).
    pub actors: usize,
    /// World replicas per actor; `> 1` switches HERO training to the
    /// batched actor/learner engine.
    pub batch_worlds: usize,
    /// How long the learner waits on an actor reply before declaring it
    /// stalled, in milliseconds.
    pub stall_timeout_ms: u64,
    /// How many times the supervisor respawns a failed actor slot before
    /// retiring it permanently.
    pub max_respawns: usize,
    /// Base of the deterministic exponential respawn backoff in
    /// milliseconds (`0` disables the sleep).
    pub respawn_backoff_ms: u64,
    /// How many times a failed checkpoint save is retried (on top of the
    /// first attempt), with a deterministic exponential backoff counted
    /// under `checkpoint/retries`.
    pub checkpoint_retry: usize,
    /// GEMM kernel tier: `strict` (default, bitwise-deterministic) or
    /// `fast` (packed FMA kernels; requires a `--features fast-math`
    /// build). Recorded in telemetry and checkpoint metadata — resuming a
    /// checkpoint under the other mode is refused.
    pub kernel_mode: KernelMode,
    /// Thread budget for fast-tier GEMMs (ignored in strict mode; never
    /// changes result bytes, only wall-clock).
    pub gemm_threads: usize,
}

impl ExperimentArgs {
    /// Defaults tuned so each binary finishes in minutes on a laptop; use
    /// `--paper-scale` for the full Table I budget (14 000 episodes,
    /// batch 1024).
    pub fn defaults(episodes: usize) -> Self {
        Self {
            episodes,
            eval_episodes: 20,
            seed: 7,
            out: PathBuf::from("target/experiments"),
            update_every: 4,
            batch_size: 128,
            skill_episodes: 1_000,
            telemetry_out: None,
            trace_out: None,
            metrics_addr: None,
            checkpoint_every: 0,
            checkpoint_dir: None,
            checkpoint_retain: 3,
            resume: false,
            fault_plan: None,
            actors: 1,
            batch_worlds: 1,
            stall_timeout_ms: 30_000,
            max_respawns: RolloutOptions::default().max_respawns,
            respawn_backoff_ms: RolloutOptions::default().respawn_backoff_ms,
            checkpoint_retry: hero_core::checkpoint::DEFAULT_SAVE_ATTEMPTS - 1,
            kernel_mode: KernelMode::Strict,
            gemm_threads: 1,
        }
    }

    /// Parses `std::env::args`-style strings after the program name.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse(defaults: Self, args: impl IntoIterator<Item = String>) -> Self {
        let mut out = defaults;
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("flag {name} requires a value"))
            };
            match flag.as_str() {
                "--episodes" => out.episodes = value("--episodes").parse().expect("usize"),
                "--eval-episodes" => {
                    out.eval_episodes = value("--eval-episodes").parse().expect("usize")
                }
                "--seed" => out.seed = value("--seed").parse().expect("u64"),
                "--out" => out.out = PathBuf::from(value("--out")),
                "--update-every" => {
                    out.update_every = value("--update-every").parse().expect("usize")
                }
                "--batch-size" => out.batch_size = value("--batch-size").parse().expect("usize"),
                "--skill-episodes" => {
                    out.skill_episodes = value("--skill-episodes").parse().expect("usize")
                }
                "--telemetry-out" => {
                    out.telemetry_out = Some(PathBuf::from(value("--telemetry-out")))
                }
                "--trace-out" => out.trace_out = Some(PathBuf::from(value("--trace-out"))),
                "--metrics-addr" => out.metrics_addr = Some(value("--metrics-addr")),
                "--checkpoint-every" => {
                    out.checkpoint_every = value("--checkpoint-every").parse().expect("usize")
                }
                "--checkpoint-dir" => {
                    out.checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir")))
                }
                "--checkpoint-retain" => {
                    out.checkpoint_retain = value("--checkpoint-retain").parse().expect("usize")
                }
                "--resume" => out.resume = true,
                "--fault-plan" => out.fault_plan = Some(value("--fault-plan")),
                "--actors" => out.actors = value("--actors").parse().expect("usize"),
                "--batch-worlds" => {
                    out.batch_worlds = value("--batch-worlds").parse().expect("usize")
                }
                "--stall-timeout-ms" => {
                    out.stall_timeout_ms = value("--stall-timeout-ms").parse().expect("u64")
                }
                "--max-respawns" => {
                    out.max_respawns = value("--max-respawns").parse().expect("usize")
                }
                "--respawn-backoff-ms" => {
                    out.respawn_backoff_ms = value("--respawn-backoff-ms").parse().expect("u64")
                }
                "--checkpoint-retry" => {
                    out.checkpoint_retry = value("--checkpoint-retry").parse().expect("usize")
                }
                "--kernel-mode" => {
                    let raw = value("--kernel-mode");
                    out.kernel_mode = raw
                        .parse()
                        .unwrap_or_else(|e| panic!("--kernel-mode {raw}: {e}"));
                }
                "--gemm-threads" => {
                    out.gemm_threads = value("--gemm-threads").parse().expect("usize")
                }
                "--paper-scale" => {
                    out.episodes = 14_000;
                    out.batch_size = 1024;
                    out.update_every = 1;
                }
                other => panic!(
                    "unknown flag {other}; expected --episodes/--eval-episodes/--seed/--out/--update-every/--batch-size/--skill-episodes/--telemetry-out/--trace-out/--metrics-addr/--checkpoint-every/--checkpoint-dir/--checkpoint-retain/--resume/--fault-plan/--actors/--batch-worlds/--stall-timeout-ms/--max-respawns/--respawn-backoff-ms/--checkpoint-retry/--kernel-mode/--gemm-threads/--paper-scale"
                ),
            }
        }
        out
    }

    /// Parses the current process arguments.
    pub fn from_env(defaults: Self) -> Self {
        Self::parse(defaults, std::env::args().skip(1))
    }

    /// Builds the [`CheckpointConfig`] for one training run. `scope`
    /// isolates runs that share a binary (multi-method figures checkpoint
    /// each method under `<checkpoint-dir>/<scope>`). Kills from the
    /// fault plan terminate the whole process with exit code 137 so CI
    /// can distinguish an injected crash from a real failure.
    ///
    /// # Panics
    ///
    /// Panics with the parse error when `--fault-plan` is malformed.
    pub fn checkpoint_config(&self, scope: &str) -> CheckpointConfig {
        let fault_plan = match &self.fault_plan {
            Some(spec) => FaultPlan::parse(spec)
                .unwrap_or_else(|e| panic!("invalid --fault-plan {spec:?}: {e}")),
            None => FaultPlan::none(),
        };
        CheckpointConfig {
            every: self.checkpoint_every,
            dir: self.checkpoint_dir.as_ref().map(|d| d.join(scope)),
            resume: self.resume,
            retain: self.checkpoint_retain,
            fault_plan,
            kill_mode: KillMode::Exit,
            save_attempts: self.checkpoint_retry + 1,
            ..CheckpointConfig::default()
        }
    }

    /// Builds the [`RolloutOptions`] for HERO training from `--actors` /
    /// `--batch-worlds` and the supervision knobs (`--stall-timeout-ms`,
    /// `--max-respawns`, `--respawn-backoff-ms`).
    pub fn rollout_options(&self) -> RolloutOptions {
        RolloutOptions {
            actors: self.actors.max(1),
            batch_worlds: self.batch_worlds.max(1),
            stall_timeout: std::time::Duration::from_millis(self.stall_timeout_ms.max(1)),
            max_respawns: self.max_respawns,
            respawn_backoff_ms: self.respawn_backoff_ms,
            ..RolloutOptions::default()
        }
    }

    /// Applies `--kernel-mode` / `--gemm-threads` to the process-global
    /// kernel dispatch (call once per binary, after
    /// [`crate::init_telemetry`] so the mode is visible in the run's
    /// telemetry). In fast mode, emits `kernel/fast_math` and
    /// `kernel/gemm_threads` counters; strict mode emits nothing so
    /// strict goldens are unaffected.
    ///
    /// # Panics
    ///
    /// Panics when `--kernel-mode fast` is requested in a build compiled
    /// without the `fast-math` cargo feature — a run that silently fell
    /// back to strict would corrupt the bench trajectory.
    pub fn apply_kernel_mode(&self) {
        hero_autograd::set_gemm_threads(self.gemm_threads);
        if let Err(e) = hero_autograd::set_kernel_mode(self.kernel_mode) {
            panic!("--kernel-mode {}: {e}", self.kernel_mode);
        }
        if self.kernel_mode == KernelMode::Fast {
            hero_rl::telemetry::counter_add("kernel/fast_math", 1);
            hero_rl::telemetry::counter_add("kernel/gemm_threads", self.gemm_threads.max(1) as u64);
        }
    }

    /// Ensures the output directory exists and returns the path of a file
    /// inside it.
    ///
    /// # Panics
    ///
    /// Panics when the directory cannot be created.
    pub fn out_file(&self, name: &str) -> PathBuf {
        std::fs::create_dir_all(&self.out).expect("create output directory");
        self.out.join(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_overrides_defaults() {
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(100),
            strs(&["--episodes", "5", "--seed", "9", "--out", "/tmp/x"]),
        );
        assert_eq!(a.episodes, 5);
        assert_eq!(a.seed, 9);
        assert_eq!(a.out, PathBuf::from("/tmp/x"));
        assert_eq!(a.eval_episodes, 20, "untouched default");
        assert_eq!(a.telemetry_out, None, "telemetry stays off by default");
    }

    #[test]
    fn telemetry_and_skill_flags_parse() {
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(100),
            strs(&["--telemetry-out", "/tmp/tel", "--skill-episodes", "3"]),
        );
        assert_eq!(a.telemetry_out, Some(PathBuf::from("/tmp/tel")));
        assert_eq!(a.trace_out, None, "trace capture stays off by default");
        assert_eq!(a.skill_episodes, 3);
    }

    #[test]
    fn trace_out_parses_independently_of_telemetry_out() {
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(100),
            strs(&["--trace-out", "/tmp/tel/trace.json"]),
        );
        assert_eq!(a.trace_out, Some(PathBuf::from("/tmp/tel/trace.json")));
        assert_eq!(a.telemetry_out, None);
    }

    #[test]
    fn metrics_addr_parses_independently_of_other_telemetry_flags() {
        let d = ExperimentArgs::defaults(100);
        assert_eq!(d.metrics_addr, None, "exporter stays off by default");
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(100),
            strs(&["--metrics-addr", "127.0.0.1:0"]),
        );
        assert_eq!(a.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(a.telemetry_out, None);
        assert_eq!(a.trace_out, None);
    }

    #[test]
    fn paper_scale_sets_table_one_budget() {
        let a = ExperimentArgs::parse(ExperimentArgs::defaults(100), strs(&["--paper-scale"]));
        assert_eq!(a.episodes, 14_000);
        assert_eq!(a.batch_size, 1024);
        assert_eq!(a.update_every, 1);
    }

    #[test]
    fn rollout_flags_parse_and_default_to_sequential() {
        let d = ExperimentArgs::defaults(10);
        assert_eq!(d.actors, 1);
        assert_eq!(d.batch_worlds, 1);
        assert!(!d.rollout_options().is_distributed());
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(10),
            strs(&["--actors", "3", "--batch-worlds", "4"]),
        );
        let ro = a.rollout_options();
        assert_eq!(ro.actors, 3);
        assert_eq!(ro.batch_worlds, 4);
        assert!(ro.is_distributed());
    }

    #[test]
    fn supervision_flags_parse_and_reach_rollout_options() {
        let d = ExperimentArgs::defaults(10);
        assert_eq!(d.stall_timeout_ms, 30_000);
        assert_eq!(d.max_respawns, RolloutOptions::default().max_respawns);
        assert_eq!(d.respawn_backoff_ms, RolloutOptions::default().respawn_backoff_ms);
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(10),
            strs(&[
                "--stall-timeout-ms",
                "250",
                "--max-respawns",
                "5",
                "--respawn-backoff-ms",
                "0",
            ]),
        );
        let ro = a.rollout_options();
        assert_eq!(ro.stall_timeout, std::time::Duration::from_millis(250));
        assert_eq!(ro.max_respawns, 5);
        assert_eq!(ro.respawn_backoff_ms, 0);
        // A zero timeout would spin the learner; it is clamped to 1 ms.
        let z = ExperimentArgs::parse(
            ExperimentArgs::defaults(10),
            strs(&["--stall-timeout-ms", "0"]),
        );
        assert_eq!(z.rollout_options().stall_timeout, std::time::Duration::from_millis(1));
    }

    #[test]
    fn checkpoint_retry_flag_sets_save_attempts() {
        let d = ExperimentArgs::defaults(10);
        assert_eq!(
            d.checkpoint_config("HERO").save_attempts,
            hero_core::checkpoint::DEFAULT_SAVE_ATTEMPTS,
            "the default retry budget matches the store's"
        );
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(10),
            strs(&["--checkpoint-retry", "4"]),
        );
        assert_eq!(a.checkpoint_retry, 4);
        assert_eq!(a.checkpoint_config("HERO").save_attempts, 5, "N retries = N + 1 attempts");
        let none = ExperimentArgs::parse(
            ExperimentArgs::defaults(10),
            strs(&["--checkpoint-retry", "0"]),
        );
        assert_eq!(none.checkpoint_config("HERO").save_attempts, 1, "0 = single attempt");
    }

    #[test]
    fn kernel_mode_flags_parse_and_default_to_strict() {
        let d = ExperimentArgs::defaults(10);
        assert_eq!(d.kernel_mode, KernelMode::Strict);
        assert_eq!(d.gemm_threads, 1);
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(10),
            strs(&["--kernel-mode", "fast", "--gemm-threads", "4"]),
        );
        assert_eq!(a.kernel_mode, KernelMode::Fast);
        assert_eq!(a.gemm_threads, 4);
        let s = ExperimentArgs::parse(
            ExperimentArgs::defaults(10),
            strs(&["--kernel-mode", "strict"]),
        );
        assert_eq!(s.kernel_mode, KernelMode::Strict);
    }

    #[test]
    #[should_panic(expected = "unknown kernel mode")]
    fn bogus_kernel_mode_rejected() {
        ExperimentArgs::parse(
            ExperimentArgs::defaults(1),
            strs(&["--kernel-mode", "loose"]),
        );
    }

    #[cfg(not(feature = "fast-math"))]
    #[test]
    #[should_panic(expected = "fast-math kernels are not compiled")]
    fn fast_mode_without_feature_fails_loudly() {
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(1),
            strs(&["--kernel-mode", "fast"]),
        );
        a.apply_kernel_mode();
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_rejected() {
        ExperimentArgs::parse(ExperimentArgs::defaults(1), strs(&["--bogus"]));
    }

    #[test]
    fn checkpoint_flags_parse_and_scope_the_directory() {
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(10),
            strs(&[
                "--checkpoint-every",
                "2",
                "--checkpoint-dir",
                "/tmp/ckpts",
                "--checkpoint-retain",
                "5",
                "--resume",
                "--fault-plan",
                "kill@ep:3,truncate@save:1",
            ]),
        );
        assert_eq!(a.checkpoint_every, 2);
        assert_eq!(a.checkpoint_dir, Some(PathBuf::from("/tmp/ckpts")));
        assert!(a.resume);
        let cfg = a.checkpoint_config("HERO");
        assert_eq!(cfg.every, 2);
        assert_eq!(cfg.retain, 5);
        assert_eq!(cfg.dir, Some(PathBuf::from("/tmp/ckpts/HERO")));
        assert!(cfg.resume);
        assert!(cfg.fault_plan.should_kill(3));
        assert!(!cfg.fault_plan.should_kill(2));
    }

    #[test]
    fn checkpointing_stays_off_by_default() {
        let a = ExperimentArgs::defaults(10);
        let cfg = a.checkpoint_config("HERO");
        assert_eq!(cfg.every, 0);
        assert_eq!(cfg.dir, None);
        assert!(!cfg.resume);
        assert!(cfg.fault_plan.is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid --fault-plan")]
    fn malformed_fault_plan_rejected() {
        let a = ExperimentArgs::parse(
            ExperimentArgs::defaults(1),
            strs(&["--fault-plan", "explode@never"]),
        );
        a.checkpoint_config("HERO");
    }
}

//! Table II — "real-world" evaluation: every method is trained in the
//! plain simulator, then its frozen greedy policy runs 20 episodes on the
//! sim-to-real testbed proxy (sensor noise, actuation latency/noise,
//! per-episode gain, heading drift) with random initial positions.
//! Reported metrics match the paper: collision rate, lane-merge success
//! rate, mean speed.

use hero_bench::{
    build_method, load_or_train_skills, print_eval_row, exit_on_train_error, train_policy_distributed, ExperimentArgs,
    Method, MethodParams,
};
use hero_core::config::HeroConfig;
use hero_rl::metrics::Recorder;
use hero_sim::env::EnvConfig;
use hero_sim::scenario;
use hero_sim::sim2real::{SimToRealConfig, SimToRealEnv};

fn main() {
    let args = ExperimentArgs::from_env(ExperimentArgs::defaults(600));
    let _telemetry = hero_bench::init_telemetry(&args, "table2");
    args.apply_kernel_mode();
    let env_cfg = EnvConfig::default();
    let skills = load_or_train_skills(&args, env_cfg);
    let hero_cfg = HeroConfig::default();

    let mut rec = Recorder::new();
    println!(
        "Table II: performance on the real-world testbed proxy ({} episodes per method)",
        args.eval_episodes
    );
    for method in Method::ALL {
        let mut sim = scenario::congestion(env_cfg, args.seed);
        let mut policy = build_method(
            method,
            MethodParams {
                n_agents: 3,
                obs_dim: env_cfg.high_dim(),
                batch_size: args.batch_size,
                seed: args.seed,
            },
            Some((skills.clone(), hero_cfg)),
        );
        eprintln!("table2: training {} in simulation...", method.name());
        let _ = exit_on_train_error(train_policy_distributed(
            &mut policy,
            &mut sim,
            args.episodes,
            args.update_every,
            args.seed,
            &args.checkpoint_config(method.name()),
            &args.rollout_options(),
        ));
        // Deploy: same scenario behind the domain gap.
        let mut testbed = SimToRealEnv::new(
            env_cfg,
            scenario::congestion_spawns(),
            SimToRealConfig::default(),
            args.seed ^ 0xBED,
        );
        let stats = policy.evaluate(&mut testbed, args.eval_episodes, args.seed ^ 0xBED);
        print_eval_row(method.name(), &stats);
        rec.push("collision_rate", stats.collision_rate);
        rec.push("success_rate", stats.success_rate);
        rec.push("mean_speed", stats.mean_speed);
    }
    let path = args.out_file("table2_realworld.csv");
    rec.write_csv(&path).expect("write csv");
    println!("rows written to {} (row order: HERO, DQN, COMA, MADDPG, MAAC)", path.display());
}

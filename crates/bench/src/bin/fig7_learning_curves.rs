//! Fig. 7(a–c) — learning curves of HERO vs Independent DQN, COMA,
//! MADDPG, and MAAC in the four-vehicle congestion scenario (Fig. 9
//! layout): mean episode reward, collision rate, and lane-change success
//! rate over training.
//!
//! Emits one CSV with columns `<metric>/<method>` per training episode
//! and prints the final-window comparison the figure's right edge shows.

use hero_bench::{
    build_method, load_or_train_skills, exit_on_train_error, train_policy_distributed, ExperimentArgs, Method,
    MethodParams,
};
use hero_core::config::HeroConfig;
use hero_rl::metrics::Recorder;
use hero_sim::env::EnvConfig;
use hero_sim::scenario;

fn main() {
    let args = ExperimentArgs::from_env(ExperimentArgs::defaults(600));
    let _telemetry = hero_bench::init_telemetry(&args, "fig7");
    args.apply_kernel_mode();
    let env_cfg = EnvConfig::default();
    let skills = load_or_train_skills(&args, env_cfg);
    let hero_cfg = HeroConfig::default();

    let mut combined = Recorder::new();
    println!(
        "Fig. 7: learning curves over {} episodes in the congestion scenario",
        args.episodes
    );
    println!(
        "{:<8} {:>14} {:>16} {:>14}",
        "method", "final reward", "final collision", "final success"
    );
    for method in Method::ALL {
        let mut env = scenario::congestion(env_cfg, args.seed);
        let mut policy = build_method(
            method,
            MethodParams {
                n_agents: 3,
                obs_dim: env_cfg.high_dim(),
                batch_size: args.batch_size,
                seed: args.seed,
            },
            Some((skills.clone(), hero_cfg)),
        );
        eprintln!("fig7: training {}...", method.name());
        let rec = exit_on_train_error(train_policy_distributed(
            &mut policy,
            &mut env,
            args.episodes,
            args.update_every,
            args.seed,
            &args.checkpoint_config(method.name()),
            &args.rollout_options(),
        ));
        for metric in ["reward", "collision", "success", "mean_speed"] {
            if let Some(series) = rec.smoothed(metric, 100) {
                for v in series {
                    combined.push(&format!("{metric}/{}", method.name()), v);
                }
            }
        }
        let window = (args.episodes / 5).max(1);
        println!(
            "{:<8} {:>14.4} {:>16.3} {:>14.3}",
            method.name(),
            rec.tail_mean("reward", window).unwrap_or(f32::NAN),
            rec.tail_mean("collision", window).unwrap_or(f32::NAN),
            rec.tail_mean("success", window).unwrap_or(f32::NAN),
        );
    }
    let path = args.out_file("fig7_learning_curves.csv");
    combined.write_csv(&path).expect("write csv");
    println!("smoothed series written to {}", path.display());
}

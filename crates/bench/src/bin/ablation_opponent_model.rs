//! Ablation — HERO with vs without the opponent model. The paper's
//! Sec. III-C argues the opponent model stabilizes training against
//! non-stationarity; this ablation trains both variants in the congestion
//! scenario and compares learning curves and final greedy metrics.

use hero_bench::{
    build_method, load_or_train_skills, print_eval_row, exit_on_train_error, train_policy_distributed, ExperimentArgs,
    Method, MethodParams,
};
use hero_core::config::HeroConfig;
use hero_rl::metrics::Recorder;
use hero_sim::env::EnvConfig;
use hero_sim::scenario;

fn main() {
    let args = ExperimentArgs::from_env(ExperimentArgs::defaults(600));
    let _telemetry = hero_bench::init_telemetry(&args, "abl_opponent");
    args.apply_kernel_mode();
    let env_cfg = EnvConfig::default();
    let skills = load_or_train_skills(&args, env_cfg);

    let variants = [
        ("HERO", HeroConfig::default()),
        (
            "HERO-no-opponent",
            HeroConfig {
                use_opponent_model: false,
                ..HeroConfig::default()
            },
        ),
    ];
    let mut combined = Recorder::new();
    println!("Ablation: opponent model on/off ({} episodes)", args.episodes);
    for (label, cfg) in variants {
        let mut env = scenario::congestion(env_cfg, args.seed);
        let mut policy = build_method(
            Method::Hero,
            MethodParams {
                n_agents: 3,
                obs_dim: env_cfg.high_dim(),
                batch_size: args.batch_size,
                seed: args.seed,
            },
            Some((skills.clone(), cfg)),
        );
        eprintln!("ablation: training {label}...");
        let rec = exit_on_train_error(train_policy_distributed(
            &mut policy,
            &mut env,
            args.episodes,
            args.update_every,
            args.seed,
            &args.checkpoint_config(label),
            &args.rollout_options(),
        ));
        for metric in ["reward", "collision", "success"] {
            if let Some(series) = rec.smoothed(metric, 100) {
                for v in series {
                    combined.push(&format!("{metric}/{label}"), v);
                }
            }
        }
        let stats = policy.evaluate(&mut env, args.eval_episodes, args.seed ^ 0xAB1);
        print_eval_row(label, &stats);
    }
    let path = args.out_file("ablation_opponent_model.csv");
    combined.write_csv(&path).expect("write csv");
    println!("series written to {}", path.display());
}

//! Fig. 10 — the opponent-model prediction loss from vehicle 2's
//! perspective while HERO trains in the congestion scenario. The paper
//! shows the model of vehicle 1 converging quickly while vehicle 3's
//! model converges much later, reflecting how strongly each opponent's
//! behaviour couples to vehicle 2's observations.

use hero_bench::{
    build_method, load_or_train_skills, exit_on_train_error, train_policy_distributed, ExperimentArgs, Method,
    MethodParams,
};
use hero_core::config::HeroConfig;
use hero_rl::metrics::{summarize, Recorder};
use hero_sim::env::EnvConfig;
use hero_sim::scenario;

fn main() {
    let args = ExperimentArgs::from_env(ExperimentArgs::defaults(600));
    let _telemetry = hero_bench::init_telemetry(&args, "fig10");
    args.apply_kernel_mode();
    let env_cfg = EnvConfig::default();
    let skills = load_or_train_skills(&args, env_cfg);

    let mut env = scenario::congestion(env_cfg, args.seed);
    let mut policy = build_method(
        Method::Hero,
        MethodParams {
            n_agents: 3,
            obs_dim: env_cfg.high_dim(),
            batch_size: args.batch_size,
            seed: args.seed,
        },
        Some((skills, HeroConfig::default())),
    );
    eprintln!("fig10: training HERO for {} episodes...", args.episodes);
    let _ = exit_on_train_error(train_policy_distributed(
        &mut policy,
        &mut env,
        args.episodes,
        args.update_every,
        args.seed,
        &args.checkpoint_config("HERO"),
        &args.rollout_options(),
    ));

    let hero_bench::TrainedPolicy::Hero(team) = &policy else {
        unreachable!("built HERO above");
    };
    // Vehicle 2's perspective = learner index 1; its opponents in team
    // order are vehicle 1 (learner 0) and vehicle 3 (learner 2).
    let traces = team.agents()[1].opponent_loss_traces();
    let mut rec = Recorder::new();
    let labels = ["vehicle1", "vehicle3"];
    println!("Fig. 10: opponent-model NLL loss from vehicle 2's perspective");
    for (label, trace) in labels.iter().zip(traces) {
        for &v in trace {
            rec.push(&format!("opponent_loss/{label}"), v);
        }
        if trace.is_empty() {
            println!("{label:<10} no updates ran (increase --episodes)");
            continue;
        }
        let early = summarize(&trace[..trace.len().min(50)]).expect("data");
        let late = summarize(&trace[trace.len().saturating_sub(50)..]).expect("data");
        println!(
            "{label:<10} first-50 mean loss {:>8.4}   last-50 mean loss {:>8.4}",
            early.mean, late.mean
        );
    }
    let path = args.out_file("fig10_opponent_loss.csv");
    rec.write_csv(&path).expect("write csv");
    println!("loss traces written to {}", path.display());
}

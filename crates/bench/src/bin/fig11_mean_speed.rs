//! Fig. 11 — mean vehicle speed achieved by each method after training in
//! the simulated congestion scenario (the paper reports ≈0.08 for HERO,
//! the highest, and ≈0.048 for MAAC, the lowest).

use hero_bench::{
    build_method, load_or_train_skills, print_eval_row, exit_on_train_error, train_policy_distributed, ExperimentArgs,
    Method, MethodParams,
};
use hero_core::config::HeroConfig;
use hero_rl::metrics::Recorder;
use hero_sim::env::EnvConfig;
use hero_sim::scenario;

fn main() {
    let args = ExperimentArgs::from_env(ExperimentArgs::defaults(600));
    let _telemetry = hero_bench::init_telemetry(&args, "fig11");
    args.apply_kernel_mode();
    let env_cfg = EnvConfig::default();
    let skills = load_or_train_skills(&args, env_cfg);
    let hero_cfg = HeroConfig::default();

    let mut rec = Recorder::new();
    println!(
        "Fig. 11: mean speed after {} training episodes ({} greedy eval episodes)",
        args.episodes, args.eval_episodes
    );
    for method in Method::ALL {
        let mut env = scenario::congestion(env_cfg, args.seed);
        let mut policy = build_method(
            method,
            MethodParams {
                n_agents: 3,
                obs_dim: env_cfg.high_dim(),
                batch_size: args.batch_size,
                seed: args.seed,
            },
            Some((skills.clone(), hero_cfg)),
        );
        eprintln!("fig11: training {}...", method.name());
        let _ = exit_on_train_error(train_policy_distributed(
            &mut policy,
            &mut env,
            args.episodes,
            args.update_every,
            args.seed,
            &args.checkpoint_config(method.name()),
            &args.rollout_options(),
        ));
        let stats = policy.evaluate(&mut env, args.eval_episodes, args.seed ^ 0x51ED);
        print_eval_row(method.name(), &stats);
        rec.push("mean_speed", stats.mean_speed);
    }
    let path = args.out_file("fig11_mean_speed.csv");
    rec.write_csv(&path).expect("write csv");
    println!("bar values written to {}", path.display());
}

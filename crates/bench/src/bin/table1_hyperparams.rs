//! Table I — training hyper-parameters. The reproduction's defaults *are*
//! the paper's values; this binary prints the table and fails loudly if
//! any default drifts.

use hero_bench::ExperimentArgs;
use hero_core::config::HeroConfig;

fn main() {
    let args = ExperimentArgs::from_env(ExperimentArgs::defaults(1));
    let _telemetry = hero_bench::init_telemetry(&args, "table1");
    args.apply_kernel_mode();
    let c = HeroConfig::default();
    println!("Table I: Hyperparameters for Training (paper vs this reproduction)");
    println!("{:<32} {:>10} {:>12}", "Hyperparameter", "Paper", "Ours");
    let rows: Vec<(&str, String, String)> = vec![
        ("Training episode", "14,000".into(), c.training_episodes.to_string()),
        ("Episode length", "30".into(), c.episode_length.to_string()),
        ("Buffer capacity", "100,000".into(), c.buffer_capacity.to_string()),
        ("Batch size", "1024".into(), c.batch_size.to_string()),
        ("Learning rate", "0.01".into(), c.lr.to_string()),
        ("Discount factor gamma", "0.95".into(), c.gamma.to_string()),
        ("Dimension of the hidden layer", "32".into(), c.hidden.to_string()),
        ("Target network update rate", "0.01".into(), c.tau.to_string()),
    ];
    for (name, paper, ours) in &rows {
        println!("{name:<32} {paper:>10} {ours:>12}");
    }
    assert_eq!(c.training_episodes, 14_000);
    assert_eq!(c.episode_length, 30);
    assert_eq!(c.buffer_capacity, 100_000);
    assert_eq!(c.batch_size, 1024);
    assert_eq!(c.lr, 0.01);
    assert_eq!(c.gamma, 0.95);
    assert_eq!(c.hidden, 32);
    assert_eq!(c.tau, 0.01);
    println!("\nAll defaults match the paper's Table I.");
}

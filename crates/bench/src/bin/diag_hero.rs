//! Policy inspector: trains HERO, then narrates greedy episodes and
//! classifies collision causes (wall vs vehicle-vehicle) — handy when
//! tuning scenarios or debugging learned behavior.

use hero_bench::{exit_on_train_error, load_or_train_skills, ExperimentArgs};
use hero_core::config::HeroConfig;
use hero_core::trainer::{HeroTeam, TrainOptions};
use hero_sim::env::EnvConfig;
use hero_sim::scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = ExperimentArgs::from_env(ExperimentArgs::defaults(100));
    let _telemetry = hero_bench::init_telemetry(&args, "diag");
    args.apply_kernel_mode();
    let env_cfg = EnvConfig::default();
    let skills = load_or_train_skills(&args, env_cfg);
    let _ = &skills;
    let cfg = HeroConfig {
        batch_size: args.batch_size,
        ..HeroConfig::default()
    };
    let mut env = scenario::congestion(env_cfg, args.seed);
    let mut team = HeroTeam::new(3, env_cfg.high_dim(), skills.clone(), cfg, args.seed);
    let _ = exit_on_train_error(hero_core::rollout::train_team_actor_learner(
        &mut team,
        &mut env,
        &TrainOptions {
            episodes: args.episodes,
            update_every: 4,
            seed: args.seed,
        },
        &args.checkpoint_config("HERO"),
        &args.rollout_options(),
    ));

    // Greedy probes with narration.
    let mut rng = StdRng::seed_from_u64(123);
    let mut wall = 0;
    let mut v2v = 0;
    let mut none = 0;
    for ep in 0..10 {
        let mut obs = env.reset();
        team.begin_episode();
        let mut log: Vec<String> = Vec::new();
        while !env.is_done() {
            let cmds = team.decide(&env, &obs, &mut rng, false);
            let opts: Vec<String> = team
                .agents()
                .iter()
                .map(|a| a.current_option().map(|o| format!("{o}")).unwrap_or_default())
                .collect();
            let out = env.step(&cmds);
            team.record(&env, &obs, &out.rewards, &out.observations, out.done);
            log.push(format!(
                "opts=[{}] d=[{:.2},{:.2},{:.2}] col={:?}",
                opts.join(","),
                env.vehicle_state(0).d,
                env.vehicle_state(1).d,
                env.vehicle_state(2).d,
                out.collisions
            ));
            obs = out.observations;
        }
        let track_w = env_cfg.track.width();
        let mut kind = "none";
        for i in 0..env.num_vehicles() {
            if env.has_collided(i) {
                let d = env.vehicle_state(i).d;
                if d < 0.12 || d > track_w - 0.12 {
                    kind = "wall";
                } else if kind == "none" {
                    kind = "v2v";
                }
            }
        }
        match kind {
            "wall" => wall += 1,
            "v2v" => v2v += 1,
            _ => none += 1,
        }
        if ep < 3 {
            println!("--- episode {ep} ({kind}) ---");
            for l in &log {
                println!("  {l}");
            }
        }
    }
    println!("\n10 greedy episodes: wall={wall} v2v={v2v} clean={none}");
}

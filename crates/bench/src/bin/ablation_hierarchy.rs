//! Ablation — hierarchy vs flat end-to-end control (the paper's core
//! learning-complexity claim, Sec. I). The flat variant gives each agent
//! an independent SAC policy mapping the high-level observation directly
//! to continuous `(linear, angular)` commands — no options, no skills —
//! and trains it on the same team reward.

use hero_baselines::sac::{SacAgent, SacConfig};
use hero_bench::{
    build_method, load_or_train_skills, print_eval_row, exit_on_train_error, train_policy_distributed, ExperimentArgs,
    Method, MethodParams,
};
use hero_core::config::HeroConfig;
use hero_core::trainer::EvalStats;
use hero_rl::metrics::Recorder;
use hero_rl::transition::ContinuousTransition;
use hero_sim::env::{CooperativeWorld, EnvConfig};
use hero_sim::scenario;
use hero_sim::vehicle::VehicleCommand;
use rand::rngs::StdRng;
use rand::SeedableRng;

const LINEAR_RANGE: (f32, f32) = (0.0, 0.2);
const ANGULAR_RANGE: (f32, f32) = (-0.25, 0.25);

fn denorm(a: &[f32]) -> VehicleCommand {
    let lin = LINEAR_RANGE.0 + (a[0] + 1.0) / 2.0 * (LINEAR_RANGE.1 - LINEAR_RANGE.0);
    let ang = ANGULAR_RANGE.0 + (a[1] + 1.0) / 2.0 * (ANGULAR_RANGE.1 - ANGULAR_RANGE.0);
    VehicleCommand::new(lin, ang)
}

fn run_flat<W: CooperativeWorld>(
    env: &mut W,
    episodes: usize,
    update_every: usize,
    batch_size: usize,
    seed: u64,
    explore: bool,
    agents: &mut [SacAgent],
) -> (Recorder, EvalStats) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rec = Recorder::new();
    let mut collisions = 0usize;
    let mut merges = 0usize;
    let mut candidates = 0usize;
    let mut speed_sum = 0.0;
    let mut reward_sum = 0.0;
    let mut total_steps = 0usize;
    let mut step_counter = 0usize;
    let _ = batch_size;
    for _ in 0..episodes {
        let mut obs = env.reset();
        let mut ep_reward = 0.0;
        let mut ep_speed = 0.0;
        let mut steps = 0usize;
        while !env.is_done() {
            let learners = env.learner_indices();
            let mut commands = vec![VehicleCommand::default(); env.num_vehicles()];
            let mut actions = Vec::with_capacity(learners.len());
            for (k, &v) in learners.iter().enumerate() {
                let a = agents[k].act(&obs[v].high_vec(), &mut rng, explore);
                commands[v] = denorm(&a);
                actions.push(a);
            }
            let out = env.step(&commands);
            for (k, &v) in learners.iter().enumerate() {
                agents[k].observe(ContinuousTransition {
                    obs: obs[v].high_vec(),
                    action: actions[k].clone(),
                    reward: out.rewards[v],
                    next_obs: out.observations[v].high_vec(),
                    done: out.done,
                });
            }
            ep_reward += learners.iter().map(|&v| out.rewards[v]).sum::<f32>()
                / learners.len() as f32;
            ep_speed += out.mean_speed;
            steps += 1;
            step_counter += 1;
            if explore && step_counter % update_every == 0 {
                for a in agents.iter_mut() {
                    a.update(&mut rng);
                }
            }
            obs = out.observations;
        }
        let learners = env.learner_indices();
        rec.push("reward", ep_reward / steps.max(1) as f32);
        rec.push(
            "collision",
            if learners.iter().any(|&v| env.has_collided(v)) {
                1.0
            } else {
                0.0
            },
        );
        rec.push("mean_speed", ep_speed / steps.max(1) as f32);
        if learners.iter().any(|&v| env.has_collided(v)) {
            collisions += 1;
        }
        for &v in &learners {
            if env.needs_merge(v) {
                candidates += 1;
                if env.has_merged(v) {
                    merges += 1;
                }
            }
        }
        reward_sum += ep_reward;
        speed_sum += ep_speed;
        total_steps += steps;
    }
    let stats = EvalStats {
        collision_rate: collisions as f32 / episodes.max(1) as f32,
        success_rate: if candidates > 0 {
            merges as f32 / candidates as f32
        } else {
            1.0
        },
        mean_speed: speed_sum / total_steps.max(1) as f32,
        mean_reward: reward_sum / total_steps.max(1) as f32,
    };
    (rec, stats)
}

fn main() {
    let args = ExperimentArgs::from_env(ExperimentArgs::defaults(600));
    let _telemetry = hero_bench::init_telemetry(&args, "abl_hierarchy");
    args.apply_kernel_mode();
    let env_cfg = EnvConfig::default();
    let mut combined = Recorder::new();
    println!(
        "Ablation: hierarchical HERO vs flat end-to-end continuous SAC ({} episodes)",
        args.episodes
    );

    // HERO (hierarchical).
    {
        let skills = load_or_train_skills(&args, env_cfg);
        let mut env = scenario::congestion(env_cfg, args.seed);
        let mut policy = build_method(
            Method::Hero,
            MethodParams {
                n_agents: 3,
                obs_dim: env_cfg.high_dim(),
                batch_size: args.batch_size,
                seed: args.seed,
            },
            Some((skills, HeroConfig::default())),
        );
        eprintln!("ablation: training HERO...");
        let rec = exit_on_train_error(train_policy_distributed(
            &mut policy,
            &mut env,
            args.episodes,
            args.update_every,
            args.seed,
            &args.checkpoint_config("HERO"),
            &args.rollout_options(),
        ));
        for metric in ["reward", "collision"] {
            if let Some(series) = rec.smoothed(metric, 100) {
                for v in series {
                    combined.push(&format!("{metric}/HERO"), v);
                }
            }
        }
        let stats = policy.evaluate(&mut env, args.eval_episodes, args.seed ^ 0xAB3);
        print_eval_row("HERO", &stats);
    }

    // Flat end-to-end SAC.
    {
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut agents: Vec<SacAgent> = (0..3)
            .map(|_| {
                SacAgent::new(
                    env_cfg.high_dim(),
                    2,
                    SacConfig {
                        batch_size: args.batch_size,
                        ..SacConfig::default()
                    },
                    &mut rng,
                )
            })
            .collect();
        let mut env = scenario::congestion(env_cfg, args.seed);
        eprintln!("ablation: training flat SAC...");
        let (rec, _) = run_flat(
            &mut env,
            args.episodes,
            args.update_every,
            args.batch_size,
            args.seed,
            true,
            &mut agents,
        );
        for metric in ["reward", "collision"] {
            if let Some(series) = rec.smoothed(metric, 100) {
                for v in series {
                    combined.push(&format!("{metric}/FlatSAC"), v);
                }
            }
        }
        let (_, stats) = run_flat(
            &mut env,
            args.eval_episodes,
            args.update_every,
            args.batch_size,
            args.seed ^ 0xAB3,
            false,
            &mut agents,
        );
        print_eval_row("FlatSAC", &stats);
    }

    let path = args.out_file("ablation_hierarchy.csv");
    combined.write_csv(&path).expect("write csv");
    println!("series written to {}", path.display());
}

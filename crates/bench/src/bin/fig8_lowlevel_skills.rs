//! Fig. 8 — episode reward while learning the low-level skills (lane
//! tracking and lane change) with soft actor–critic in parallel
//! single-vehicle environments.
//!
//! Reproduces the figure's shape: both curves converge; the lane-change
//! curve stays low for longer (exploration of the maneuver under the
//! maximum-entropy objective) before climbing to the success plateau.

use hero_baselines::sac::SacConfig;
use hero_bench::ExperimentArgs;
use hero_core::skills::{SkillLibrary, SkillTrainingConfig};
use hero_rl::metrics::summarize;
use hero_sim::env::EnvConfig;

fn main() {
    let args = ExperimentArgs::from_env(ExperimentArgs::defaults(1_500));
    let _telemetry = hero_bench::init_telemetry(&args, "fig8");
    args.apply_kernel_mode();
    let cfg = SkillTrainingConfig {
        vision: false,
        episodes: args.episodes,
        updates_per_episode: 2,
        sac: SacConfig {
            batch_size: args.batch_size,
            ..SacConfig::default()
        },
    };
    eprintln!(
        "fig8: training both skills for {} episodes (seed {})",
        args.episodes, args.seed
    );
    let (skills, rec) = SkillLibrary::train(EnvConfig::default(), cfg, args.seed);

    let path = args.out_file("fig8_lowlevel_skills.csv");
    rec.write_csv(&path).expect("write csv");
    let ckpt = args.out_file("skills.ckpt");
    skills.save(&ckpt).expect("save skill checkpoint");

    println!("Fig. 8: episode reward of learning low-level skills (window-100 means)");
    for name in ["skill/driving-in-lane", "skill/lane-change"] {
        let raw = rec.series(name).expect("series recorded");
        let early = summarize(&raw[..raw.len().min(100)]).expect("data");
        let late_start = raw.len().saturating_sub(100);
        let late = summarize(&raw[late_start..]).expect("data");
        println!(
            "{name:<24} first-100 mean {:>8.3}   last-100 mean {:>8.3}",
            early.mean, late.mean
        );
    }
    if let Some(success) = rec.tail_mean("skill/lane-change-success", 100) {
        println!("lane-change success rate (last 100 episodes): {success:.3}");
    }
    println!("series written to {}", path.display());
    println!("skill checkpoint written to {}", ckpt.display());
}

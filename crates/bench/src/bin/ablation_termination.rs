//! Ablation — asynchronous vs synchronous option termination
//! (Sec. III-B). Synchronous termination forces every agent to re-select
//! whenever any agent's option ends; the paper argues it is infeasible
//! for distributed systems, and this ablation additionally shows what it
//! costs (or buys) in learning terms.

use hero_bench::{
    build_method, load_or_train_skills, print_eval_row, exit_on_train_error, train_policy_distributed, ExperimentArgs,
    Method, MethodParams,
};
use hero_core::config::{HeroConfig, TerminationMode};
use hero_rl::metrics::Recorder;
use hero_sim::env::EnvConfig;
use hero_sim::scenario;

fn main() {
    let args = ExperimentArgs::from_env(ExperimentArgs::defaults(600));
    let _telemetry = hero_bench::init_telemetry(&args, "abl_termination");
    args.apply_kernel_mode();
    let env_cfg = EnvConfig::default();
    let skills = load_or_train_skills(&args, env_cfg);

    let variants = [
        ("HERO-async", TerminationMode::Asynchronous),
        ("HERO-sync", TerminationMode::Synchronous),
    ];
    let mut combined = Recorder::new();
    println!(
        "Ablation: asynchronous vs synchronous option termination ({} episodes)",
        args.episodes
    );
    for (label, termination) in variants {
        let cfg = HeroConfig {
            termination,
            ..HeroConfig::default()
        };
        let mut env = scenario::congestion(env_cfg, args.seed);
        let mut policy = build_method(
            Method::Hero,
            MethodParams {
                n_agents: 3,
                obs_dim: env_cfg.high_dim(),
                batch_size: args.batch_size,
                seed: args.seed,
            },
            Some((skills.clone(), cfg)),
        );
        eprintln!("ablation: training {label}...");
        let rec = exit_on_train_error(train_policy_distributed(
            &mut policy,
            &mut env,
            args.episodes,
            args.update_every,
            args.seed,
            &args.checkpoint_config(label),
            &args.rollout_options(),
        ));
        for metric in ["reward", "collision", "success"] {
            if let Some(series) = rec.smoothed(metric, 100) {
                for v in series {
                    combined.push(&format!("{metric}/{label}"), v);
                }
            }
        }
        let stats = policy.evaluate(&mut env, args.eval_episodes, args.seed ^ 0xAB2);
        print_eval_row(label, &stats);
    }
    let path = args.out_file("ablation_termination.csv");
    combined.write_csv(&path).expect("write csv");
    println!("series written to {}", path.display());
}

//! The shared experiment harness: a training/evaluation loop for the flat
//! baselines (which pick one discrete option per step, executed by the
//! fixed [`ScriptedExecutor`]) and a [`Method`] registry so every figure
//! binary trains the same five algorithms through one code path.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use hero_baselines::coma::{Coma, ComaConfig};
use hero_baselines::common::MultiAgentAlgorithm;
use hero_baselines::dqn::{DqnConfig, IndependentDqn};
use hero_baselines::maac::{Maac, MaacConfig};
use hero_baselines::maddpg::{Maddpg, MaddpgConfig};
use hero_core::config::HeroConfig;
use hero_core::rollout::{train_team_actor_learner, RolloutOptions};
use hero_core::skills::SkillLibrary;
use hero_core::trainer::{
    evaluate_team, train_team_checkpointed, CheckpointConfig, EvalStats, HeroTeam, TrainError,
    TrainOptions,
};
use hero_faultplan::KillMode;
use hero_rl::metrics::Recorder;
use hero_rl::telemetry;
use hero_rl::transition::JointTransition;
use hero_sim::env::CooperativeWorld;
use hero_sim::options::{DrivingOption, ScriptedExecutor};
use hero_sim::vehicle::VehicleCommand;

/// Training knobs for the flat baselines.
#[derive(Clone, Copy, Debug)]
pub struct BaselineTrainOptions {
    /// Episodes to run.
    pub episodes: usize,
    /// Environment steps between gradient updates.
    pub update_every: usize,
    /// Seed for exploration randomness.
    pub seed: u64,
}

/// Trains a flat baseline in `env`: every step each agent picks one
/// discrete option executed by the scripted low-level controller — the
/// "end-to-end" protocol the paper contrasts HERO against.
pub fn train_baseline<W, A>(algo: &mut A, env: &mut W, opts: &BaselineTrainOptions) -> Recorder
where
    W: CooperativeWorld,
    A: MultiAgentAlgorithm + ?Sized,
{
    train_baseline_faulted(algo, env, opts, &CheckpointConfig::default())
}

/// [`train_baseline`] honoring the kill faults of a [`CheckpointConfig`]'s
/// fault plan, so the flat baselines participate in crash-injection CI.
///
/// Flat baselines do **not** support checkpoint save/resume — the
/// [`MultiAgentAlgorithm`] trait exposes no parameter or buffer state, so
/// a resumed run would silently restart learning from scratch. When the
/// config asks for checkpointing or resume this logs a notice and trains
/// from episode zero; only HERO (and the low-level SAC skills) offer
/// bit-identical resume.
pub fn train_baseline_faulted<W, A>(
    algo: &mut A,
    env: &mut W,
    opts: &BaselineTrainOptions,
    ckpt: &CheckpointConfig,
) -> Recorder
where
    W: CooperativeWorld,
    A: MultiAgentAlgorithm + ?Sized,
{
    if ckpt.every > 0 || ckpt.resume {
        telemetry::progress(
            "flat baselines do not support checkpoint save/resume; training from scratch",
        );
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut rec = Recorder::new();
    let executor = ScriptedExecutor::new();
    let mut step_counter = 0usize;
    for episode in 0..opts.episodes {
        if ckpt.fault_plan.should_kill(episode) {
            telemetry::counter_add("checkpoint/fault_kill", 1);
            let _ = telemetry::flush();
            match ckpt.kill_mode {
                KillMode::Exit => std::process::exit(137),
                KillMode::Return => return rec,
            }
        }
        let mut obs = env.reset();
        let mut ep_reward = 0.0;
        let mut ep_speed = 0.0;
        let mut steps = 0usize;
        while !env.is_done() {
            let (out, rewards) = {
                let _rollout = telemetry::span("rollout");
                let learners = env.learner_indices();
                let high: Vec<Vec<f32>> = learners.iter().map(|&v| obs[v].high_vec()).collect();
                let actions = algo.act(&high, &mut rng, true);
                let mut commands = vec![VehicleCommand::default(); env.num_vehicles()];
                for (k, &v) in learners.iter().enumerate() {
                    let option = DrivingOption::from_index(actions[k]);
                    let state = env.vehicle_state(v);
                    commands[v] = executor.command(option, &state, &env.config().track);
                }
                let out = env.step(&commands);
                let next_high: Vec<Vec<f32>> =
                    learners.iter().map(|&v| out.observations[v].high_vec()).collect();
                let rewards: Vec<f32> = learners.iter().map(|&v| out.rewards[v]).collect();
                algo.observe(JointTransition {
                    obs: high,
                    actions,
                    rewards: rewards.clone(),
                    next_obs: next_high,
                    done: out.done,
                });
                (out, rewards)
            };
            ep_reward += rewards.iter().sum::<f32>() / rewards.len() as f32;
            ep_speed += out.mean_speed;
            steps += 1;
            step_counter += 1;
            if step_counter % opts.update_every == 0 {
                let _update = telemetry::span("update");
                if let Some(stats) = algo.update(&mut rng) {
                    telemetry::counter_add("grad_updates", 1);
                    telemetry::observe("critic_loss", stats.critic_loss as f64);
                    rec.push("critic_loss", stats.critic_loss);
                }
            }
            obs = out.observations;
        }
        telemetry::counter_add("episodes", 1);
        telemetry::progress(&format!("ep {}", episode + 1));
        push_episode_metrics(&mut rec, env, ep_reward, ep_speed, steps);
    }
    rec
}

/// Greedy evaluation of a flat baseline, mirroring
/// [`hero_core::trainer::evaluate_team`].
pub fn evaluate_baseline<W, A>(algo: &mut A, env: &mut W, episodes: usize, seed: u64) -> EvalStats
where
    W: CooperativeWorld,
    A: MultiAgentAlgorithm + ?Sized,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let executor = ScriptedExecutor::new();
    let mut collisions = 0usize;
    let mut merges = 0usize;
    let mut candidates = 0usize;
    let mut speed_sum = 0.0;
    let mut reward_sum = 0.0;
    let mut steps = 0usize;
    for _ in 0..episodes {
        let mut obs = env.reset();
        while !env.is_done() {
            let learners = env.learner_indices();
            let high: Vec<Vec<f32>> = learners.iter().map(|&v| obs[v].high_vec()).collect();
            let actions = algo.act(&high, &mut rng, false);
            let mut commands = vec![VehicleCommand::default(); env.num_vehicles()];
            for (k, &v) in learners.iter().enumerate() {
                let option = DrivingOption::from_index(actions[k]);
                let state = env.vehicle_state(v);
                commands[v] = executor.command(option, &state, &env.config().track);
            }
            let out = env.step(&commands);
            reward_sum += learners.iter().map(|&v| out.rewards[v]).sum::<f32>()
                / learners.len() as f32;
            speed_sum += out.mean_speed;
            steps += 1;
            obs = out.observations;
        }
        let learners = env.learner_indices();
        if learners.iter().any(|&v| env.has_collided(v)) {
            collisions += 1;
        }
        for &v in &learners {
            if env.needs_merge(v) {
                candidates += 1;
                if env.has_merged(v) {
                    merges += 1;
                }
            }
        }
    }
    EvalStats {
        collision_rate: collisions as f32 / episodes.max(1) as f32,
        success_rate: if candidates > 0 {
            merges as f32 / candidates as f32
        } else {
            1.0
        },
        mean_speed: speed_sum / steps.max(1) as f32,
        mean_reward: reward_sum / steps.max(1) as f32,
    }
}

fn push_episode_metrics<W: CooperativeWorld>(
    rec: &mut Recorder,
    env: &W,
    ep_reward: f32,
    ep_speed: f32,
    steps: usize,
) {
    let learners = env.learner_indices();
    rec.push("reward", ep_reward / steps.max(1) as f32);
    rec.push(
        "collision",
        if learners.iter().any(|&v| env.has_collided(v)) {
            1.0
        } else {
            0.0
        },
    );
    let candidates: Vec<usize> = learners
        .iter()
        .copied()
        .filter(|&v| env.needs_merge(v))
        .collect();
    if !candidates.is_empty() {
        let merged = candidates.iter().filter(|&&v| env.has_merged(v)).count();
        rec.push("success", merged as f32 / candidates.len() as f32);
    }
    rec.push("mean_speed", ep_speed / steps.max(1) as f32);
}

/// The five methods of the paper's comparison (Sec. V-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// HERO (ours).
    Hero,
    /// Independent Deep Q-learning.
    Dqn,
    /// Counterfactual multi-agent policy gradients.
    Coma,
    /// Multi-agent DDPG.
    Maddpg,
    /// Multi-actor-attention-critic.
    Maac,
}

impl Method {
    /// All methods, HERO first.
    pub const ALL: [Method; 5] = [
        Method::Hero,
        Method::Dqn,
        Method::Coma,
        Method::Maddpg,
        Method::Maac,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Method::Hero => "HERO",
            Method::Dqn => "DQN",
            Method::Coma => "COMA",
            Method::Maddpg => "MADDPG",
            Method::Maac => "MAAC",
        }
    }
}

/// A policy trained by the harness, ready for evaluation in any world
/// (plain simulation or the sim-to-real testbed proxy).
pub enum TrainedPolicy {
    /// A HERO team.
    Hero(Box<HeroTeam>),
    /// Any flat baseline.
    Baseline(Box<dyn MultiAgentAlgorithm>),
}

impl TrainedPolicy {
    /// Greedy evaluation in `env`.
    pub fn evaluate<W: CooperativeWorld>(
        &mut self,
        env: &mut W,
        episodes: usize,
        seed: u64,
    ) -> EvalStats {
        match self {
            TrainedPolicy::Hero(team) => evaluate_team(team, env, episodes, seed),
            TrainedPolicy::Baseline(algo) => {
                evaluate_baseline(algo.as_mut(), env, episodes, seed)
            }
        }
    }
}

/// Shared sizing parameters when constructing a method for a scenario.
#[derive(Clone, Copy, Debug)]
pub struct MethodParams {
    /// Number of learning agents.
    pub n_agents: usize,
    /// High-level observation width.
    pub obs_dim: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Construction seed.
    pub seed: u64,
}

/// Builds a method's learner. HERO additionally needs a trained (or
/// deliberately untrained, for ablations) skill library.
pub fn build_method(
    method: Method,
    params: MethodParams,
    hero_parts: Option<(Arc<SkillLibrary>, HeroConfig)>,
) -> TrainedPolicy {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let n_actions = DrivingOption::COUNT;
    match method {
        Method::Hero => {
            let (skills, cfg) = hero_parts.expect("HERO requires a skill library");
            // Warm-up never exceeds one mini-batch: smoke-scale runs
            // (`--batch-size 8 --episodes 2`) must reach the instrumented
            // update path, and at paper scale the default warm-up is
            // already below the batch size so nothing changes.
            let cfg = HeroConfig {
                batch_size: params.batch_size,
                warmup: cfg.warmup.min(params.batch_size),
                ..cfg
            };
            TrainedPolicy::Hero(Box::new(HeroTeam::new(
                params.n_agents,
                params.obs_dim,
                skills,
                cfg,
                params.seed,
            )))
        }
        Method::Dqn => TrainedPolicy::Baseline(Box::new(IndependentDqn::new(
            params.n_agents,
            params.obs_dim,
            n_actions,
            DqnConfig {
                batch_size: params.batch_size,
                ..DqnConfig::default()
            },
            &mut rng,
        ))),
        Method::Coma => TrainedPolicy::Baseline(Box::new(Coma::new(
            params.n_agents,
            params.obs_dim,
            n_actions,
            ComaConfig::default(),
            &mut rng,
        ))),
        Method::Maddpg => TrainedPolicy::Baseline(Box::new(Maddpg::new(
            params.n_agents,
            params.obs_dim,
            n_actions,
            MaddpgConfig {
                batch_size: params.batch_size,
                ..MaddpgConfig::default()
            },
            &mut rng,
        ))),
        Method::Maac => TrainedPolicy::Baseline(Box::new(Maac::new(
            params.n_agents,
            params.obs_dim,
            n_actions,
            MaacConfig {
                batch_size: params.batch_size,
                ..MaacConfig::default()
            },
            &mut rng,
        ))),
    }
}

/// Trains a [`TrainedPolicy`] in `env`, returning its learning curves.
pub fn train_policy<W: CooperativeWorld>(
    policy: &mut TrainedPolicy,
    env: &mut W,
    episodes: usize,
    update_every: usize,
    seed: u64,
) -> Recorder {
    train_policy_checkpointed(
        policy,
        env,
        episodes,
        update_every,
        seed,
        &CheckpointConfig::default(),
    )
    .expect("default checkpoint config cannot fail")
}

/// Unwraps a training result for a binary's main path: a typed
/// [`TrainError`] (resume refusal, fleet lost) flushes telemetry, prints
/// the message, and exits nonzero — no panic backtrace, no silent
/// partial run.
pub fn exit_on_train_error<T>(result: Result<T, TrainError>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            let _ = telemetry::flush();
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// [`train_policy`] with crash safety: HERO gets full checkpoint/resume
/// and fault injection through
/// [`train_team_checkpointed`]; the flat baselines honor kill faults only
/// (see [`train_baseline_faulted`] for why resume is HERO-only).
///
/// # Errors
///
/// Propagates [`TrainError`] from the HERO trainer (a refused cross-mode
/// resume); the baselines cannot fail typed.
pub fn train_policy_checkpointed<W: CooperativeWorld>(
    policy: &mut TrainedPolicy,
    env: &mut W,
    episodes: usize,
    update_every: usize,
    seed: u64,
    ckpt: &CheckpointConfig,
) -> Result<Recorder, TrainError> {
    match policy {
        TrainedPolicy::Hero(team) => Ok(train_team_checkpointed(
            team,
            env,
            &TrainOptions {
                episodes,
                update_every,
                seed,
            },
            ckpt,
        )?
        .recorder),
        TrainedPolicy::Baseline(algo) => Ok(train_baseline_faulted(
            algo.as_mut(),
            env,
            &BaselineTrainOptions {
                episodes,
                update_every,
                seed,
            },
            ckpt,
        )),
    }
}

/// [`train_policy_checkpointed`] routed through the actor/learner rollout
/// engine ([`train_team_actor_learner`]) when `rollout` asks for more than
/// one actor or world. Only HERO trains distributed; the flat baselines
/// log a notice and train sequentially (their update loop is already the
/// bottleneck, and they hold no per-world cursor state to shard).
///
/// Requires a concrete [`hero_sim::env::LaneChangeEnv`] because actor
/// threads rebuild world replicas from its config/spawns/seed.
///
/// # Errors
///
/// Propagates [`TrainError`] from the engine: a refused cross-mode
/// resume, or a lost actor fleet after the respawn budget is exhausted.
#[allow(clippy::too_many_arguments)]
pub fn train_policy_distributed(
    policy: &mut TrainedPolicy,
    env: &mut hero_sim::env::LaneChangeEnv,
    episodes: usize,
    update_every: usize,
    seed: u64,
    ckpt: &CheckpointConfig,
    rollout: &RolloutOptions,
) -> Result<Recorder, TrainError> {
    match policy {
        TrainedPolicy::Hero(team) if rollout.is_distributed() => Ok(train_team_actor_learner(
            team,
            env,
            &TrainOptions {
                episodes,
                update_every,
                seed,
            },
            ckpt,
            rollout,
        )?
        .recorder),
        TrainedPolicy::Baseline(_) if rollout.is_distributed() => {
            telemetry::progress(
                "flat baselines train sequentially; ignoring --actors/--batch-worlds",
            );
            train_policy_checkpointed(policy, env, episodes, update_every, seed, ckpt)
        }
        _ => train_policy_checkpointed(policy, env, episodes, update_every, seed, ckpt),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hero_baselines::sac::SacConfig;
    use hero_sim::env::EnvConfig;
    use hero_sim::scenario;

    fn tiny_env() -> (EnvConfig, hero_sim::env::LaneChangeEnv) {
        let cfg = EnvConfig {
            max_steps: 5,
            ..EnvConfig::default()
        };
        (cfg, scenario::two_vehicle_merge(cfg, 3))
    }

    #[test]
    fn baseline_loop_records_series() {
        let (cfg, mut env) = tiny_env();
        let mut rng = StdRng::seed_from_u64(0);
        let mut algo = IndependentDqn::new(
            2,
            cfg.high_dim(),
            DrivingOption::COUNT,
            DqnConfig {
                hidden: 8,
                batch_size: 8,
                warmup: 8,
                ..DqnConfig::default()
            },
            &mut rng,
        );
        let rec = train_baseline(
            &mut algo,
            &mut env,
            &BaselineTrainOptions {
                episodes: 3,
                update_every: 2,
                seed: 1,
            },
        );
        assert_eq!(rec.series("reward").unwrap().len(), 3);
        assert_eq!(rec.series("collision").unwrap().len(), 3);
    }

    #[test]
    fn every_method_builds_and_trains_one_episode() {
        let (cfg, _) = tiny_env();
        let skills = Arc::new(SkillLibrary::untrained(
            cfg,
            SacConfig {
                hidden: 8,
                ..SacConfig::default()
            },
            0,
        ));
        let hero_cfg = HeroConfig {
            hidden: 8,
            warmup: 8,
            ..HeroConfig::default()
        };
        for method in Method::ALL {
            let mut env = scenario::two_vehicle_merge(cfg, 5);
            let mut policy = build_method(
                method,
                MethodParams {
                    n_agents: 2,
                    obs_dim: cfg.high_dim(),
                    batch_size: 8,
                    seed: 2,
                },
                Some((skills.clone(), hero_cfg)),
            );
            let rec = train_policy(&mut policy, &mut env, 2, 2, 3);
            assert_eq!(
                rec.series("reward").unwrap().len(),
                2,
                "{} failed to record",
                method.name()
            );
            let stats = policy.evaluate(&mut env, 2, 4);
            assert!((0.0..=1.0).contains(&stats.collision_rate), "{}", method.name());
        }
    }

    #[test]
    fn method_names_match_paper() {
        let names: Vec<&str> = Method::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["HERO", "DQN", "COMA", "MADDPG", "MAAC"]);
    }
}
